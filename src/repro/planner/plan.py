"""Typed plan trees: per-node cardinality and cost annotations.

A plan is a binary tree of joins over relation leaves.  Every node
carries the estimator's cardinality for the relation set it produces
and the accumulated cost under the classic sum-of-intermediates model
(leaf scans are free; each join node adds its own output cardinality).

:func:`render_plan` is the one rendering routine — the CLI's plan
printer and ``JoinPlan.__str__`` both call it, so there is no cosmetic
untested twin.  :func:`evaluate_plan` re-prices a fixed tree shape
under a different estimator, which is how plan-quality *regret* is
measured: enumerate under a cheap policy, re-cost the winner under
exact statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from .estimators import CardinalityEstimator
    from .graph import JoinGraph

__all__ = ["PlanNode", "render_plan", "evaluate_plan"]


@dataclass(frozen=True)
class PlanNode:
    """One node of a join tree: a base relation or a binary join.

    Attributes
    ----------
    relations:
        The relation names this subtree produces, in the graph's
        insertion order (deterministic, comparison-friendly).
    cardinality:
        Estimated output size of this subtree.
    cost:
        Accumulated cost: sum of join-output cardinalities in the
        subtree (leaves cost nothing).
    left, right:
        Child subtrees (``None`` for leaves).
    cross_product:
        True on a join node whose two sides share no join edge.
    """

    relations: tuple[str, ...]
    cardinality: float
    cost: float
    left: Optional["PlanNode"] = None
    right: Optional["PlanNode"] = None
    cross_product: bool = False

    @property
    def is_leaf(self) -> bool:
        """Whether this node scans a base relation."""
        return self.left is None

    @property
    def name(self) -> str:
        """The base relation name (leaves only)."""
        if not self.is_leaf:
            raise ValueError(f"join node over {self.relations} has no name")
        return self.relations[0]

    def order(self) -> tuple[str, ...]:
        """Relation names in left-to-right leaf order.

        For a left-deep tree this is exactly the classic join *order*;
        for bushy trees it is the leaf sequence of the tree.
        """
        if self.is_leaf:
            return self.relations
        assert self.right is not None
        return self.left.order() + self.right.order()

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 1)."""
        if self.is_leaf:
            return 1
        assert self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def structure(self) -> object:
        """A nested-tuple shape fingerprint (for bit-identity checks)."""
        if self.is_leaf:
            return self.name
        assert self.right is not None
        return (self.left.structure(), self.right.structure())

    def __str__(self) -> str:
        return render_plan(self)


def _label(node: PlanNode) -> str:
    if node.is_leaf:
        return f"{node.name}  [card {node.cardinality:,.6g}]"
    op = "×" if node.cross_product else "⋈"
    return (
        f"{op} {{{', '.join(node.relations)}}}  "
        f"[card {node.cardinality:,.6g}, cost {node.cost:,.6g}]"
    )


def render_plan(node: PlanNode) -> str:
    """An ASCII tree of the plan with per-node cardinality and cost.

    ::

        ⋈ {A, B, C}  [card 1,200, cost 1,450]
        ├── ⋈ {A, B}  [card 250, cost 250]
        │   ├── A  [card 1,000]
        │   └── B  [card 500]
        └── C  [card 50]
    """
    lines: list[str] = []

    def walk(n: PlanNode, prefix: str, tail: str) -> None:
        lines.append(prefix + _label(n))
        if n.is_leaf:
            return
        assert n.right is not None
        walk(n.left, tail + "├── ", tail + "│   ")
        walk(n.right, tail + "└── ", tail + "    ")

    walk(node, "", "")
    return "\n".join(lines)


def evaluate_plan(
    node: PlanNode,
    graph: "JoinGraph",
    estimator: "CardinalityEstimator",
) -> PlanNode:
    """Re-price a fixed tree shape under a different estimator.

    The structure (and therefore the join order) is kept; cardinality
    and cost annotations are recomputed bottom-up with the given
    estimator's pairwise selectivities.  Cross products are priced as
    cartesian growth regardless of how the tree was found — the shape
    is already decided, so this never raises
    :class:`~repro.planner.graph.CrossProductError`.
    """
    from .estimators import pairwise_selectivity  # local: avoid cycle

    def walk(n: PlanNode) -> PlanNode:
        if n.is_leaf:
            return PlanNode(
                relations=n.relations,
                cardinality=float(graph.size(n.name)),
                cost=0.0,
            )
        assert n.right is not None
        left = walk(n.left)
        right = walk(n.right)
        selectivity = 1.0
        for a in left.relations:
            for b in right.relations:
                if graph.has_edge(a, b):
                    selectivity *= pairwise_selectivity(graph, estimator, a, b)
        card = left.cardinality * right.cardinality * selectivity
        return PlanNode(
            relations=tuple(
                graph.mask_names(graph.subset_mask(left.relations + right.relations))
            ),
            cardinality=card,
            cost=left.cost + right.cost + card,
            left=left,
            right=right,
            cross_product=n.cross_product,
        )

    return walk(node)
