"""Plan enumeration: the greedy heuristic and DPsize-style dynamic programming.

Two enumerators over a :class:`~repro.planner.graph.JoinGraph`, both
producing :class:`~repro.planner.plan.PlanNode` trees annotated with
the chosen estimator's cardinalities:

* :func:`enumerate_greedy` — the original left-deep heuristic, made
  graph-aware: seed with the cheapest joinable pair, then repeatedly
  append the relation minimising the next intermediate.  O(n^2)
  estimator calls, no optimality guarantee.
* :func:`enumerate_dp` — exact dynamic programming over connected
  subgraphs (the classic DPsize/DPsub family): ``best[S]`` is the
  cheapest tree producing relation set ``S``, built by splitting ``S``
  into two connected, edge-joined halves.  ``mode="left-deep"``
  restricts the right split to single relations (n 2^n states);
  ``mode="bushy"`` searches all binary trees (3^n splits, still
  sub-second at n = 12 thanks to bitmask sets).

Cost model: sum of intermediate-result cardinalities, with multi-way
cardinalities from the independence heuristic — the product of
pairwise selectivities over every join edge crossed by the split.
Because a set's cardinality is split-independent, the DP's subproblem
ordering is well-founded.

Determinism: relations and submask splits are always iterated in the
graph's insertion order with strict-less comparisons, so ties break
identically on every run — repeated enumerations return bit-identical
plans (asserted by ``benchmarks/bench_engine.py``).

Cross products (splits with no connecting edge) are rejected with
:class:`~repro.planner.graph.CrossProductError` unless
``allow_cross_products=True``; allowing them is occasionally optimal
(the classic star-schema trick of cross-joining tiny dimensions before
touching the fact table — which is exactly how the DP beats the greedy
heuristic in the benchmark).
"""

from __future__ import annotations

from typing import Callable

from .estimators import CardinalityEstimator, checked_estimate, pairwise_selectivity
from .graph import CrossProductError, JoinGraph
from .plan import PlanNode

__all__ = [
    "enumerate_greedy",
    "enumerate_dp",
    "plan_join",
    "ENUMERATORS",
]


def _leaf(graph: JoinGraph, name: str) -> PlanNode:
    return PlanNode(
        relations=(name,), cardinality=float(graph.size(name)), cost=0.0
    )


def _require_joinable_graph(graph: JoinGraph) -> list[str]:
    names = graph.relations
    if len(names) < 2:
        raise ValueError(
            f"plan enumeration needs at least two relations, got {names}"
        )
    return names


def enumerate_greedy(
    graph: JoinGraph,
    estimator: CardinalityEstimator,
    allow_cross_products: bool = False,
) -> PlanNode:
    """Greedy left-deep join ordering from pairwise estimates.

    Seeds with the joinable pair of smallest estimated join size, then
    repeatedly appends the joinable relation minimising the estimated
    size of the next intermediate.  With ``allow_cross_products=True``
    unconnected pairs compete too, costed as cartesian products.

    Raises
    ------
    CrossProductError
        If the graph (restricted to joinable steps) cannot absorb every
        relation without a cross product.
    ValueError
        Fewer than two relations, or a non-finite estimate.
    """
    names = _require_joinable_graph(graph)

    best_pair: tuple[str, str] | None = None
    best_size = None
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if graph.has_edge(a, b):
                est = checked_estimate(estimator.join_estimate(a, b), a, b)
            elif allow_cross_products:
                est = float(graph.size(a)) * float(graph.size(b))
            else:
                continue
            if best_size is None or est < best_size:
                best_size = est
                best_pair = (a, b)
    if best_pair is None:
        raise CrossProductError(names[:1], names[1:])

    order = [best_pair[0], best_pair[1]]
    tree = PlanNode(
        relations=tuple(graph.mask_names(graph.subset_mask(order))),
        cardinality=best_size,
        cost=best_size,
        left=_leaf(graph, best_pair[0]),
        right=_leaf(graph, best_pair[1]),
        cross_product=not graph.has_edge(*best_pair),
    )
    remaining = [n for n in names if n not in order]
    intermediate = best_size
    cost = intermediate

    while remaining:
        best_next = None
        best_next_size = None
        best_next_cross = False
        for cand in remaining:
            connected = any(graph.has_edge(j, cand) for j in order)
            if not connected and not allow_cross_products:
                continue
            sel = 1.0
            for joined in order:
                if graph.has_edge(joined, cand):
                    sel *= pairwise_selectivity(graph, estimator, joined, cand)
            next_size = intermediate * graph.size(cand) * sel
            if best_next_size is None or next_size < best_next_size:
                best_next_size = next_size
                best_next = cand
                best_next_cross = not connected
        if best_next is None:
            raise CrossProductError(order, remaining)
        order.append(best_next)
        remaining.remove(best_next)
        intermediate = best_next_size
        cost += intermediate
        tree = PlanNode(
            relations=tuple(graph.mask_names(graph.subset_mask(order))),
            cardinality=intermediate,
            cost=cost,
            left=tree,
            right=_leaf(graph, best_next),
            cross_product=best_next_cross,
        )
    return tree


def _edge_selectivities(
    graph: JoinGraph, estimator: CardinalityEstimator, names: list[str]
) -> dict[tuple[int, int], float]:
    """Selectivity per join edge, one estimator call each."""
    sel: dict[tuple[int, int], float] = {}
    for i, a in enumerate(names):
        for j in range(i + 1, len(names)):
            if graph.has_edge(a, names[j]):
                sel[i, j] = pairwise_selectivity(graph, estimator, a, names[j])
    return sel


def _subset_cardinalities(
    n: int,
    sizes: list[float],
    sel: dict[tuple[int, int], float],
) -> list[float]:
    """Independence-heuristic cardinality of every relation subset.

    ``card[S] = prod sizes * prod sel(edge)`` over edges inside ``S``,
    built incrementally by peeling the lowest bit — O(n 2^n) total.
    """
    card = [1.0] * (1 << n)
    for mask in range(1, 1 << n):
        low = (mask & -mask).bit_length() - 1
        rest = mask & (mask - 1)
        value = card[rest] * sizes[low]
        r = rest
        while r:
            j = (r & -r).bit_length() - 1
            factor = sel.get((low, j))
            if factor is not None:
                value *= factor
            r &= r - 1
        card[mask] = value
    return card


def _disconnected_error(graph: JoinGraph) -> CrossProductError:
    """Name the components that no edge-only plan can bridge."""
    names = graph.relations
    component = [names[0]]
    grown = True
    while grown:
        grown = False
        for name in names:
            if name not in component and any(
                graph.has_edge(name, c) for c in component
            ):
                component.append(name)
                grown = True
    rest = [n for n in names if n not in component]
    return CrossProductError(component, rest)


def enumerate_dp(
    graph: JoinGraph,
    estimator: CardinalityEstimator,
    mode: str = "bushy",
    allow_cross_products: bool = False,
) -> PlanNode:
    """Exact DP over connected subgraphs; left-deep or bushy trees.

    Returns the provably cheapest plan under the estimator's
    cardinalities and the sum-of-intermediates cost model, within the
    chosen shape class.  Deterministic: ties keep the first candidate
    in subset-enumeration order.

    Raises
    ------
    CrossProductError
        Disconnected graph with ``allow_cross_products=False``.
    ValueError
        Fewer than two relations, unknown ``mode``, or a non-finite
        estimate.
    """
    if mode not in ("bushy", "left-deep"):
        raise ValueError(
            f"unknown DP mode {mode!r}: expected 'bushy' or 'left-deep'"
        )
    names = _require_joinable_graph(graph)
    n = len(names)
    sizes = [float(graph.size(name)) for name in names]
    sel = _edge_selectivities(graph, estimator, names)
    card = _subset_cardinalities(n, sizes, sel)

    # Union of adjacency masks over each subset, for O(1) "is there an
    # edge between L and R" tests.
    adj = [graph.adjacency_mask(i) for i in range(n)]
    reach = [0] * (1 << n)
    for mask in range(1, 1 << n):
        low = (mask & -mask).bit_length() - 1
        reach[mask] = reach[mask & (mask - 1)] | adj[low]

    cost = [float("inf")] * (1 << n)
    plans: list[PlanNode | None] = [None] * (1 << n)
    for i, name in enumerate(names):
        cost[1 << i] = 0.0
        plans[1 << i] = _leaf(graph, name)

    def consider(s: int, left: int, right: int) -> None:
        lp, rp = plans[left], plans[right]
        if lp is None or rp is None:
            return
        connected = bool(reach[left] & right)
        if not connected and not allow_cross_products:
            return
        total = cost[left] + cost[right] + card[s]
        if total < cost[s]:
            cost[s] = total
            plans[s] = PlanNode(
                relations=tuple(graph.mask_names(s)),
                cardinality=card[s],
                cost=total,
                left=lp,
                right=rp,
                cross_product=not connected,
            )

    for s in range(1, 1 << n):
        if s & (s - 1) == 0:  # singleton: already a leaf
            continue
        if mode == "left-deep":
            # Right child is always a base relation, tried in
            # insertion order.
            r = s
            while r:
                bit = r & -r
                consider(s, s ^ bit, bit)
                r ^= bit
        else:
            # Canonical bushy splits: the left half owns the lowest
            # bit, so each unordered split is tried exactly once.
            low = s & -s
            sub = (s - 1) & s
            while sub:
                if sub & low:
                    consider(s, sub, s ^ sub)
                sub = (sub - 1) & s

    full = (1 << n) - 1
    result = plans[full]
    if result is None:
        raise _disconnected_error(graph)
    return result


ENUMERATORS: dict[str, Callable[..., PlanNode]] = {
    "greedy": enumerate_greedy,
    "dp-leftdeep": lambda graph, estimator, allow_cross_products=False:
        enumerate_dp(
            graph, estimator, mode="left-deep",
            allow_cross_products=allow_cross_products,
        ),
    "dp-bushy": lambda graph, estimator, allow_cross_products=False:
        enumerate_dp(
            graph, estimator, mode="bushy",
            allow_cross_products=allow_cross_products,
        ),
}


def plan_join(
    graph: JoinGraph,
    estimator: CardinalityEstimator,
    enumerator: str = "dp-bushy",
    allow_cross_products: bool = False,
) -> PlanNode:
    """Enumerate one plan by enumerator name.

    ``enumerator`` is one of ``greedy``, ``dp-leftdeep``, ``dp-bushy``
    (see :data:`ENUMERATORS`).
    """
    try:
        run = ENUMERATORS[enumerator]
    except KeyError:
        known = ", ".join(sorted(ENUMERATORS))
        raise KeyError(
            f"unknown enumerator {enumerator!r} (choose from: {known})"
        ) from None
    return run(graph, estimator, allow_cross_products=allow_cross_products)
