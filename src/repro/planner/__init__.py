"""Pluggable query planning over sketch-backed cardinality estimates.

The paper's whole motivation — "query optimizers rely on fast,
high-quality estimates of join sizes in order to select between
various join plans" — made operational, in the architecture the
PostBOUND line of work argues for: plan enumeration decoupled from a
pluggable cardinality-estimation policy, with pessimistic (error-bound
inflated) estimation as a first-class policy.

* :class:`JoinGraph` — relations, exact cardinalities, equi-join
  edges; factory shapes :meth:`~JoinGraph.chain`,
  :meth:`~JoinGraph.star`, :meth:`~JoinGraph.clique`;
* :class:`PlanNode` / :func:`render_plan` / :func:`evaluate_plan` —
  typed join trees with per-node cardinality and cost annotations,
  one tested renderer, re-pricing under a different policy;
* :class:`CardinalityEstimator` backends — :class:`ExactCardinalities`
  (materialized relations), :class:`SketchCardinalities` (tug-of-war
  signatures), :class:`BoundAwareCardinalities` (sketch estimate plus
  the paper's Lemma 4.4 standard error);
* :func:`enumerate_greedy` / :func:`enumerate_dp` /
  :func:`plan_join` — the greedy left-deep heuristic and DPsize-style
  exact enumeration (left-deep and bushy) with deterministic
  tie-breaking and typed :class:`CrossProductError` rejection.

The legacy ``choose_join_order`` / ``plan_cost`` API in
:mod:`repro.relational.optimizer` is a thin adapter over this package.
"""

from .estimators import (
    BoundAwareCardinalities,
    CardinalityEstimator,
    ErrorBoundedCatalog,
    ExactCardinalities,
    SketchCardinalities,
    checked_estimate,
    pairwise_selectivity,
)
from .enumerators import (
    ENUMERATORS,
    enumerate_dp,
    enumerate_greedy,
    plan_join,
)
from .graph import CrossProductError, JoinGraph, UnknownGraphRelationError
from .plan import PlanNode, evaluate_plan, render_plan

__all__ = [
    "JoinGraph",
    "UnknownGraphRelationError",
    "CrossProductError",
    "PlanNode",
    "render_plan",
    "evaluate_plan",
    "CardinalityEstimator",
    "ErrorBoundedCatalog",
    "ExactCardinalities",
    "SketchCardinalities",
    "BoundAwareCardinalities",
    "checked_estimate",
    "pairwise_selectivity",
    "enumerate_greedy",
    "enumerate_dp",
    "plan_join",
    "ENUMERATORS",
]
