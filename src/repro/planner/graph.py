"""The join-graph model: relations, cardinalities, equi-join edges.

The paper restricts attention to equality joins (footnote 2), and the
original optimizer demo went one step further: it silently assumed
*every* relation pair was joinable — a flat size map with an all-pairs
estimate oracle.  Real schemas are sparse: a star schema joins each
dimension to the fact table and nothing else, and a plan that pairs two
dimensions is a cross product, usually a mistake.  Following the
PostBOUND architecture (plan enumeration decoupled from the estimation
policy), :class:`JoinGraph` makes the join structure explicit: named
relations with exact cardinalities as vertices, equi-join edges between
the pairs a query actually joins.

Internally each relation gets a bit position (insertion order, which
also fixes every enumerator's deterministic tie-breaking order), so the
enumeration layer can manipulate relation *sets* as integer bitmasks —
subset connectivity, neighbourhoods, and complement splits are single
bitwise operations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "JoinGraph",
    "UnknownGraphRelationError",
    "CrossProductError",
]


class UnknownGraphRelationError(LookupError):
    """A graph operation named a relation that was never added.

    Deliberately *not* a ``KeyError`` (the same policy as the catalogs'
    ``UnknownRelationError``): the message names the relation, lists
    what the graph does contain, and says how to add it.
    """

    def __init__(self, name: str, known: Iterable[str]):
        self.name = name
        self.known = sorted(known)
        listed = ", ".join(self.known) or "<none>"
        super().__init__(
            f"relation {name!r} is not in this join graph (relations: "
            f"{listed}); call add_relation({name!r}, size) first"
        )


class CrossProductError(ValueError):
    """A plan step would join two relation sets with no connecting edge.

    Cross products are rejected by default — they are almost always a
    query-authoring mistake, and silently costing one as a cartesian
    blow-up buries the mistake inside a huge cost number.  Callers that
    genuinely want cross products (e.g. the classic small-dimensions
    trick in star schemas) pass ``allow_cross_products=True``.
    """

    def __init__(self, left: Sequence[str], right: Sequence[str]):
        self.left = tuple(left)
        self.right = tuple(right)
        super().__init__(
            f"joining {{{', '.join(sorted(self.left))}}} with "
            f"{{{', '.join(sorted(self.right))}}} is a cross product (no "
            "join edge connects the two sides); add the missing edge to "
            "the JoinGraph or pass allow_cross_products=True"
        )


class JoinGraph:
    """Relations with cardinalities plus the equi-join edges between them.

    Relations keep their insertion order; every enumerator iterates in
    that order, which is what makes repeated runs produce bit-identical
    plans (deterministic tie-breaking: the first minimum in insertion
    order wins).

    Parameters
    ----------
    sizes:
        Optional mapping of initial relations to cardinalities.
    edges:
        Optional iterable of ``(left, right)`` name pairs.
    """

    def __init__(
        self,
        sizes: Mapping[str, int] | None = None,
        edges: Iterable[tuple[str, str]] | None = None,
    ):
        self._index: dict[str, int] = {}
        self._sizes: list[int] = []
        self._adjacency: list[int] = []  # bitmask of neighbours per relation
        if sizes is not None:
            for name, size in sizes.items():
                self.add_relation(name, size)
        if edges is not None:
            for left, right in edges:
                self.add_edge(left, right)

    # -- construction ------------------------------------------------------
    def add_relation(self, name: str, size: int) -> None:
        """Add a named relation with exact cardinality ``|R|``."""
        name = str(name)
        if not name:
            raise ValueError("relation name must be non-empty")
        if name in self._index:
            raise KeyError(f"relation {name!r} already in the join graph")
        if int(size) < 0:
            raise ValueError(f"relation {name!r} has negative size {size}")
        self._index[name] = len(self._sizes)
        self._sizes.append(int(size))
        self._adjacency.append(0)

    def add_edge(self, left: str, right: str) -> None:
        """Declare ``left`` and ``right`` joinable (an equi-join edge)."""
        i, j = self.index(left), self.index(right)
        if i == j:
            raise ValueError(
                f"self-edge {left!r} -- {right!r}: a relation cannot join "
                "itself in the join graph (self-joins are a rename away)"
            )
        self._adjacency[i] |= 1 << j
        self._adjacency[j] |= 1 << i

    # -- factory shapes ----------------------------------------------------
    @classmethod
    def chain(cls, sizes: Mapping[str, int]) -> "JoinGraph":
        """A chain query: consecutive relations joined in given order."""
        graph = cls(sizes)
        names = list(sizes)
        for a, b in zip(names, names[1:]):
            graph.add_edge(a, b)
        return graph

    @classmethod
    def star(cls, fact: str, fact_size: int, dims: Mapping[str, int]) -> "JoinGraph":
        """A star query: one fact table joined to every dimension."""
        graph = cls({fact: fact_size, **{d: s for d, s in dims.items()}})
        for dim in dims:
            graph.add_edge(fact, dim)
        return graph

    @classmethod
    def clique(cls, sizes: Mapping[str, int]) -> "JoinGraph":
        """A clique query: every relation pair joinable (the old
        optimizer's implicit all-pairs assumption, made explicit)."""
        graph = cls(sizes)
        names = list(sizes)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                graph.add_edge(a, b)
        return graph

    # -- lookups -----------------------------------------------------------
    def index(self, name: str) -> int:
        """The bit position of one relation."""
        idx = self._index.get(str(name))
        if idx is None:
            raise UnknownGraphRelationError(str(name), self._index)
        return idx

    def size(self, name: str) -> int:
        """Exact cardinality of one relation."""
        return self._sizes[self.index(name)]

    def has_edge(self, left: str, right: str) -> bool:
        """Whether an equi-join edge connects the two relations."""
        return bool(self._adjacency[self.index(left)] >> self.index(right) & 1)

    def neighbors(self, name: str) -> list[str]:
        """Relations sharing an edge with ``name`` (insertion order)."""
        mask = self._adjacency[self.index(name)]
        return [n for n, i in self._index.items() if mask >> i & 1]

    @property
    def relations(self) -> list[str]:
        """Relation names in insertion (= tie-breaking) order."""
        return list(self._index)

    @property
    def sizes(self) -> dict[str, int]:
        """Name -> exact cardinality, in insertion order."""
        return {name: self._sizes[i] for name, i in self._index.items()}

    @property
    def edges(self) -> list[tuple[str, str]]:
        """Edges as name pairs, each once, in insertion order."""
        names = self.relations
        return [
            (names[i], names[j])
            for i in range(len(names))
            for j in range(i + 1, len(names))
            if self._adjacency[i] >> j & 1
        ]

    # -- bitmask internals (used by the enumerators) -----------------------
    def adjacency_mask(self, index: int) -> int:
        """Neighbour bitmask of the relation at one bit position."""
        return self._adjacency[index]

    def subset_mask(self, names: Iterable[str]) -> int:
        """The bitmask of a set of relation names."""
        mask = 0
        for name in names:
            mask |= 1 << self.index(name)
        return mask

    def mask_names(self, mask: int) -> list[str]:
        """The relation names of a bitmask, in insertion order."""
        return [name for name, i in self._index.items() if mask >> i & 1]

    def is_connected(self, names: Iterable[str] | None = None) -> bool:
        """Whether the (sub)graph over ``names`` is connected.

        ``None`` means the whole graph.  Empty and singleton sets count
        as connected.
        """
        mask = (
            (1 << len(self._sizes)) - 1
            if names is None
            else self.subset_mask(names)
        )
        if mask == 0:
            return True
        start = mask & -mask  # lowest set bit
        reached = start
        frontier = start
        while frontier:
            grown = reached
            i = 0
            rest = frontier
            while rest:
                if rest & 1:
                    grown |= self._adjacency[i] & mask
                rest >>= 1
                i += 1
            frontier = grown & ~reached
            reached = grown
        return reached == mask

    def __contains__(self, name: str) -> bool:
        return str(name) in self._index

    def __len__(self) -> int:
        return len(self._sizes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JoinGraph(relations={len(self)}, edges={len(self.edges)})"
        )
