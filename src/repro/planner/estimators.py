"""Pluggable cardinality-estimation policies for the planner.

The planner never looks at data: every enumerator consumes a
:class:`CardinalityEstimator` — anything answering pairwise
``join_estimate(left, right)`` — and builds multi-way cardinalities
with the standard independence heuristic (product of pairwise
selectivities over the join edges crossed), exactly what real
optimizers do with pairwise statistics.  Three policies ship:

* :class:`ExactCardinalities` — true pairwise join sizes from
  materialized :class:`~repro.relational.relation.Relation` objects
  (the ground-truth oracle plans are judged against);
* :class:`SketchCardinalities` — tug-of-war estimates from a
  :class:`~repro.relational.catalog.SignatureCatalog`, a
  :class:`~repro.relational.windowed.WindowedSignatureCatalog` window
  view, or any other ``join_estimate`` provider, clamped to >= 0;
* :class:`BoundAwareCardinalities` — the sketch estimate inflated by
  the paper's Lemma 4.4 standard error (``sqrt(2 SJ(F) SJ(G) / k)``),
  PostBOUND-style pessimistic planning: overestimating an intermediate
  wastes a little work, underestimating one picks catastrophic plans,
  so the planner costs each join at estimate + z * error bound.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..relational.relation import Relation
    from .graph import JoinGraph

__all__ = [
    "CardinalityEstimator",
    "ErrorBoundedCatalog",
    "ExactCardinalities",
    "SketchCardinalities",
    "BoundAwareCardinalities",
    "checked_estimate",
    "pairwise_selectivity",
]


@runtime_checkable
class CardinalityEstimator(Protocol):
    """Anything that can estimate pairwise join sizes by relation name."""

    def join_estimate(self, left: str, right: str) -> float:
        """Estimated ``|left join right|`` for two relations."""
        ...


@runtime_checkable
class ErrorBoundedCatalog(Protocol):
    """An estimating catalog that can also bound its own error."""

    def join_estimate(self, left: str, right: str) -> float:
        """Estimated ``|left join right|`` for two relations."""
        ...

    def join_error_bound(self, left: str, right: str) -> float:
        """Standard error of :meth:`join_estimate` (Lemma 4.4)."""
        ...


def checked_estimate(estimate: float, left: str, right: str) -> float:
    """A pairwise estimate clamped to >= 0, rejecting NaN/inf.

    A degenerate (non-finite) estimate would silently poison every
    comparison an enumerator makes — NaN compares false against
    everything — so it is rejected here with the offending pair named
    rather than surfacing later as a nonsensical plan.
    """
    est = float(estimate)
    if not math.isfinite(est):
        raise ValueError(
            f"catalog returned a non-finite join estimate for "
            f"({left!r}, {right!r}): {est!r}"
        )
    return max(0.0, est)


def pairwise_selectivity(
    graph: "JoinGraph",
    estimator: CardinalityEstimator,
    left: str,
    right: str,
) -> float:
    """Estimated join selectivity ``|L join R| / (|L| |R|)``, >= 0."""
    denom = graph.size(left) * graph.size(right)
    if denom == 0:
        return 0.0
    return checked_estimate(estimator.join_estimate(left, right), left, right) / denom


class ExactCardinalities:
    """True pairwise join sizes from materialized relations.

    ``join_estimate`` is bit-for-bit the exact join size — the integer
    ``Relation.join_size`` cast to float — so plans enumerated under
    this policy are the ground truth other policies' regret is measured
    against.  ``join_error_bound`` is identically zero, so the exact
    policy is also a valid (degenerate) bound-aware backend.

    Answers are memoized (a full hash join per pair is the expensive
    part of exact costing, and enumeration plus regret re-pricing asks
    for each pair several times); construct a fresh instance after
    mutating the underlying relations.
    """

    def __init__(self, relations: Mapping[str, "Relation"]):
        self._relations = dict(relations)
        self._joins: dict[tuple[str, str], float] = {}
        self._self_joins: dict[str, float] = {}

    def join_estimate(self, left: str, right: str) -> float:
        """Exact ``|left join right|`` (bit-for-bit, as a float)."""
        key = (left, right) if left <= right else (right, left)
        value = self._joins.get(key)
        if value is None:
            value = float(self._rel(left).join_size(self._rel(right)))
            self._joins[key] = value
        return value

    def self_join_estimate(self, name: str) -> float:
        """Exact SJ(name)."""
        value = self._self_joins.get(name)
        if value is None:
            value = float(self._rel(name).self_join_size())
            self._self_joins[name] = value
        return value

    def join_error_bound(self, left: str, right: str) -> float:
        """Exact statistics have no estimation error."""
        self._rel(left), self._rel(right)
        return 0.0

    def _rel(self, name: str) -> "Relation":
        rel = self._relations.get(str(name))
        if rel is None:
            from ..relational.catalog import UnknownRelationError

            raise UnknownRelationError(str(name), self._relations)
        return rel


class SketchCardinalities:
    """Sketch-backed estimates, clamped to the physical range >= 0.

    Wraps any ``join_estimate`` provider — a
    :class:`~repro.relational.catalog.SignatureCatalog`, a
    :class:`~repro.service.service.CatalogService` window view, a
    :class:`~repro.relational.catalog.SampleCatalog` — and clamps the
    raw inner-product estimate (which can dip below zero on nearly
    disjoint relations) to zero, rejecting non-finite values.
    """

    def __init__(self, catalog: CardinalityEstimator):
        self._catalog = catalog

    def join_estimate(self, left: str, right: str) -> float:
        """The wrapped catalog's estimate, clamped to >= 0."""
        return checked_estimate(
            self._catalog.join_estimate(left, right), left, right
        )


class BoundAwareCardinalities:
    """Pessimistic policy: sketch estimate plus z times the error bound.

    ``join_estimate`` returns ``max(0, estimate) + confidence * bound``
    where ``bound`` is the catalog's Lemma 4.4 standard error — so the
    bound-aware figure always dominates the plain sketch figure, which
    in turn is always >= 0.  With ``confidence`` standard errors added,
    an intermediate is underestimated only in the distribution tail;
    the planner therefore avoids plans whose cheapness rests on a
    possibly-lucky estimate (the UES/PostBOUND pessimistic-planning
    argument).
    """

    def __init__(self, catalog: ErrorBoundedCatalog, confidence: float = 1.0):
        bound = getattr(catalog, "join_error_bound", None)
        if not callable(bound):
            raise TypeError(
                "bound-aware estimation needs a catalog with "
                "join_error_bound(left, right) (e.g. SignatureCatalog or a "
                f"CatalogService window view); {type(catalog).__name__} "
                "has none"
            )
        if not math.isfinite(float(confidence)) or float(confidence) < 0:
            raise ValueError(
                f"confidence must be a finite non-negative multiplier, "
                f"got {confidence!r}"
            )
        self._catalog = catalog
        self.confidence = float(confidence)

    def join_estimate(self, left: str, right: str) -> float:
        """Clamped estimate plus ``confidence`` standard errors."""
        base = checked_estimate(
            self._catalog.join_estimate(left, right), left, right
        )
        bound = checked_estimate(
            self._catalog.join_error_bound(left, right), left, right
        )
        return base + self.confidence * bound
