"""The canonical-sequence reduction of Section 2.1.

The paper reduces tracking under deletions to tracking insertions only:
scan the operation sequence left to right; each ``delete(v)`` is
replaced by a nil and, in addition, the *nearest insert(v) to its left*
that has not already been nil-ed is replaced by a nil.  The surviving
insertions — the canonical sequence A — carry exactly the multiset that
remains, and a correct deletion-handling tracker must behave as if it
had processed A.

This module implements that reduction.  The test suite uses it to
validate both AMS trackers: sample-count's eviction rule must leave the
tracker in a state equivalent (in distribution over its own coins) to
having run on the canonical sequence, and tug-of-war's counters must be
*bit-identical* to the canonical run (linearity makes this exact).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List

from .operations import Delete, Insert, Operation, Query

__all__ = ["canonical_sequence", "remaining_multiset"]


def canonical_sequence(operations: Iterable[Operation]) -> List[int]:
    """Reduce an insert/delete sequence to its canonical insertion list.

    Returns the values of the surviving insertions in stream order
    (the sequence the paper calls A: A-hat with nil positions dropped).
    Query operations are ignored.

    Raises
    ------
    ValueError
        If some delete has no matching earlier undeleted insert — such
        a sequence is not a valid multiset history.
    """
    values: List[int] = []
    # For each value, stack of indices into `values` of its undeleted
    # insertions; a delete nils the most recent one (top of stack).
    alive: dict[int, List[int]] = {}
    nil: set[int] = set()
    for k, op in enumerate(operations):
        if isinstance(op, Insert):
            stack = alive.setdefault(op.value, [])
            stack.append(len(values))
            values.append(op.value)
        elif isinstance(op, Delete):
            stack = alive.get(op.value)
            if not stack:
                raise ValueError(
                    f"operation {k}: delete({op.value}) has no matching insert"
                )
            nil.add(stack.pop())
        elif isinstance(op, Query):
            continue
        else:
            raise TypeError(f"not an operation: {op!r}")
    return [v for idx, v in enumerate(values) if idx not in nil]


def remaining_multiset(operations: Iterable[Operation]) -> Counter:
    """The multiset left after a sequence (== histogram of the canonical)."""
    counts: Counter = Counter()
    for k, op in enumerate(operations):
        if isinstance(op, Insert):
            counts[op.value] += 1
        elif isinstance(op, Delete):
            if counts[op.value] <= 0:
                raise ValueError(
                    f"operation {k}: delete({op.value}) has no matching insert"
                )
            counts[op.value] -= 1
        elif not isinstance(op, Query):
            raise TypeError(f"not an operation: {op!r}")
    return Counter({v: c for v, c in counts.items() if c > 0})
