"""Typed update operations and operation sequences.

The tracking problem (Section 2) is defined over a sequence of
operations on a multiset R, initially empty:

* ``insert(v)`` — insert a value v from the domain into R,
* ``delete(v)`` — delete an occurrence of v from R,
* ``query``    — produce an estimate of SJ(R).

This module gives those operations concrete types, a container with
validation and workload statistics (e.g. the Theorem 2.1 precondition
that deletions are outnumbered 4:1), generators of mixed workloads, and
a :func:`replay` driver that feeds a sequence to any tracker exposing
``insert`` / ``delete`` / ``estimate``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Protocol, Sequence, Union

import numpy as np

__all__ = [
    "Insert",
    "Delete",
    "Query",
    "Operation",
    "OperationSequence",
    "Tracker",
    "replay",
    "mixed_workload",
    "insertions_only",
]


@dataclass(frozen=True)
class Insert:
    """insert(v): add one occurrence of ``value`` to the multiset."""

    value: int


@dataclass(frozen=True)
class Delete:
    """delete(v): remove one occurrence of ``value`` from the multiset."""

    value: int


@dataclass(frozen=True)
class Query:
    """query: ask the tracker for its current SJ(R) estimate."""


Operation = Union[Insert, Delete, Query]


class Tracker(Protocol):
    """Anything that can consume an operation stream.

    All three self-join trackers (tug-of-war, sample-count,
    naive-sampling) and the exact :class:`~repro.core.frequency.FrequencyVector`
    satisfy this protocol.
    """

    def insert(self, value: int) -> None:
        """Process insert(v)."""
        ...

    def delete(self, value: int) -> None:
        """Process delete(v)."""
        ...


class OperationSequence:
    """A validated sequence of insert/delete/query operations.

    Validation enforces the multiset semantics: a prefix never deletes
    a value with no remaining occurrences.  The workload statistics
    exposed here are the quantities the paper's theorems condition on.
    """

    def __init__(self, operations: Iterable[Operation] = ()):
        self._ops: List[Operation] = []
        self._live: Counter = Counter()
        self._inserts = 0
        self._deletes = 0
        self._max_delete_fraction = 0.0
        for op in operations:
            self.append(op)

    def append(self, op: Operation) -> None:
        """Append one operation, validating multiset semantics."""
        if isinstance(op, Insert):
            self._live[op.value] += 1
            self._inserts += 1
        elif isinstance(op, Delete):
            if self._live[op.value] <= 0:
                raise ValueError(
                    f"operation {len(self._ops)}: delete({op.value}) with no "
                    "remaining occurrence"
                )
            self._live[op.value] -= 1
            self._deletes += 1
        elif not isinstance(op, Query):
            raise TypeError(f"not an operation: {op!r}")
        self._ops.append(op)
        updates = self._inserts + self._deletes
        if updates:
            fraction = self._deletes / updates
            if fraction > self._max_delete_fraction:
                self._max_delete_fraction = fraction

    # -- workload statistics -------------------------------------------
    @property
    def insert_count(self) -> int:
        """Total insert operations."""
        return self._inserts

    @property
    def delete_count(self) -> int:
        """Total delete operations."""
        return self._deletes

    @property
    def max_delete_fraction(self) -> float:
        """Max over prefixes of deletes / updates.

        The sample-count analysis (Section 2.1) requires this to stay
        at or below 1/5 for the Chernoff survival argument; Theorem 2.1
        states the 4:1 insert:delete form of the same condition.
        """
        return self._max_delete_fraction

    def satisfies_theorem_2_1_ratio(self) -> bool:
        """Whether inserts exceed deletes by at least a factor of 4."""
        return self._inserts >= 4 * self._deletes

    def remaining_multiset(self) -> Counter:
        """The multiset R left after applying every operation."""
        return Counter({v: c for v, c in self._live.items() if c > 0})

    # -- container protocol ---------------------------------------------
    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index):
        return self._ops[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OperationSequence(len={len(self._ops)}, inserts={self._inserts}, "
            f"deletes={self._deletes})"
        )


def replay(sequence: Iterable[Operation], tracker) -> List[float]:
    """Drive a tracker with an operation sequence, batched.

    Returns the list of estimates produced at the Query operations, in
    order.  The tracker must expose ``insert``/``delete`` and either
    ``estimate`` or ``self_join_size`` (so the exact FrequencyVector
    can be replayed for ground truth).

    Since the engine refactor this routes through
    :func:`repro.engine.ingest.replay_batched`: updates between queries
    are coalesced into signed histograms (linear sketches) or
    vectorised insert runs (order-sensitive samplers), producing the
    same estimates as a per-element loop at a fraction of the cost.
    """
    from ..engine.ingest import replay_batched  # local: engine imports this module

    return replay_batched(sequence, tracker)


def insertions_only(values: Iterable[int] | np.ndarray) -> OperationSequence:
    """Wrap a plain value stream as an insertion-only operation sequence."""
    seq = OperationSequence()
    for v in np.asarray(values).tolist():
        seq.append(Insert(int(v)))
    return seq


def mixed_workload(
    values: Sequence[int] | np.ndarray,
    delete_fraction: float = 0.2,
    rng: np.random.Generator | int | None = None,
    query_every: int | None = None,
) -> OperationSequence:
    """Interleave deletions into a value stream.

    Produces a valid operation sequence where roughly
    ``delete_fraction`` of all updates are deletions of values
    currently live, the regime of the paper's deletion analysis
    (``delete_fraction <= 0.2`` keeps the Theorem 2.1 precondition
    satisfiable; larger values are permitted for stress tests).

    Parameters
    ----------
    values:
        The base insertion stream (consumed in order).
    delete_fraction:
        Target fraction of updates that are deletions (of a uniformly
        random live value), in [0, 0.5).
    rng:
        Generator or seed.
    query_every:
        If given, a Query is appended after every this-many updates.
    """
    if not 0.0 <= delete_fraction < 0.5:
        raise ValueError(f"delete_fraction must be in [0, 0.5), got {delete_fraction}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    arr = np.asarray(values, dtype=np.int64)
    seq = OperationSequence()
    live: list[int] = []  # multiset of live values, with repetition
    updates = 0
    idx = 0
    total = arr.size

    def maybe_query() -> None:
        if query_every and updates and updates % query_every == 0:
            seq.append(Query())

    while idx < total:
        do_delete = live and gen.random() < delete_fraction
        if do_delete:
            j = int(gen.integers(0, len(live)))
            v = live[j]
            live[j] = live[-1]
            live.pop()
            seq.append(Delete(v))
        else:
            v = int(arr[idx])
            idx += 1
            live.append(v)
            seq.append(Insert(v))
        updates += 1
        maybe_query()
    seq.append(Query())
    return seq
