"""Reservoir sampling with the skipping technique of [Vit85].

Sample-count's O(1)-amortised update bound rests on treating each of
its s sample slots as an independent size-1 reservoir and, instead of
flipping a coin per insertion, drawing the *next position at which the
reservoir accepts* directly from the skip distribution.  This module
provides:

* :class:`SingleReservoir` — a size-1 reservoir exposing both the
  coin-flip and the skipping interface.  The skipping law for a
  reservoir currently holding position m is ``P(next > x) = m / x``
  (survive positions m+1..x), inverted as ``ceil(m / u)`` for u uniform
  on (0, 1].
* :class:`ReservoirSample` — a classic size-k uniform
  without-replacement reservoir (Algorithm R with an Algorithm-L style
  geometric skip once the reservoir is full), used by the
  naive-sampling tracker.

Both are deterministic given their seed, which the tests exploit.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.kernels import (
    RESERVOIR_SEQ_FACTOR,
    counter_key,
    counter_u01_one,
    counter_u64_one,
    reservoir_chain,
    reservoir_gap_one,
)

__all__ = [
    "SingleReservoir",
    "ReservoirSample",
    "skip_length",
    "DEFAULT_SAMPLER_RNG",
]

#: RNG schemes a reservoir can draw from.  ``counter`` (the default
#: for new instances) keys every draw by stream position, which is
#: what lets bulk offers run through the compiled kernels; ``pcg64``
#: is the legacy stateful-generator scheme, kept so old snapshots
#: load and continue draw for draw.
RESERVOIR_SCHEMES = ("counter", "pcg64")

#: The scheme new sampler instances draw from — what the CLI banners
#: and service info/stats payloads report as ``sampler_rng``.
DEFAULT_SAMPLER_RNG = RESERVOIR_SCHEMES[0]


def _fresh_seed() -> int:
    """An entropy-derived 64-bit seed for unseeded counter reservoirs."""
    return int(np.random.SeedSequence().entropy) & ((1 << 64) - 1)


def skip_length(current: int, u: float) -> int:
    """Next accepting position for a size-1 reservoir at position ``current``.

    Given u uniform on (0, 1], returns M with ``P(M > x) = current / x``
    for integers x >= current — the exact law of "replace position
    current by n+1 with probability 1/(n+1), by n+2 with probability
    (1 - 1/(n+1)) / (n+2), ...".  Clamped to ``current + 1`` (the event
    M == current has probability zero).
    """
    if current < 1:
        raise ValueError(f"current position must be >= 1, got {current}")
    if not 0.0 < u <= 1.0:
        raise ValueError(f"u must be in (0, 1], got {u}")
    return max(current + 1, math.ceil(current / u))


class SingleReservoir:
    """A size-1 uniform reservoir over a stream of unknown length.

    After ``offer``-ing n items, :attr:`item` is a uniformly random one
    of them.  :meth:`next_accept_position` exposes the skipping draw so
    callers (sample-count) can schedule replacements ahead of time
    instead of offering every element.
    """

    __slots__ = ("_rng", "_count", "_item")

    def __init__(self, seed: int | None = None):
        self._rng = np.random.default_rng(seed)
        self._count = 0
        self._item = None

    def offer(self, item) -> bool:
        """Offer one stream element; returns True if it was accepted."""
        self._count += 1
        if self._count == 1 or self._rng.random() < 1.0 / self._count:
            self._item = item
            return True
        return False

    def next_accept_position(self) -> int:
        """Draw the next (1-based) position this reservoir will accept.

        Only meaningful once at least one element has been offered.
        The internal count advances to the returned position minus one,
        so the caller is expected to offer exactly that element next
        (via :meth:`accept_scheduled`).
        """
        if self._count == 0:
            raise ValueError("reservoir is empty; offer an element first")
        nxt = skip_length(self._count, 1.0 - float(self._rng.random()))
        self._count = nxt - 1
        return nxt

    def accept_scheduled(self, item) -> None:
        """Install the element at the position promised by the skip draw."""
        self._count += 1
        self._item = item

    @property
    def item(self):
        """The current sample (None before any offer)."""
        return self._item

    @property
    def seen(self) -> int:
        """Number of stream positions accounted for so far."""
        return self._count


class ReservoirSample:
    """A size-k uniform without-replacement reservoir (Algorithm R + skips).

    The first k offers fill the reservoir; afterwards element n
    replaces a uniformly random slot with probability k/n.  Once full,
    a skip counter (drawn from the exact acceptance law via sequential
    search on the product form) batches the rejected offers so the
    amortised per-offer cost is O(k/n) random draws — the [Vit85]
    optimisation naive-sampling relies on for cheap tracking.
    """

    __slots__ = ("k", "scheme", "seed", "_key", "_rng", "_items", "_offered", "_skip")

    def __init__(
        self, k: int, seed: int | None = None, scheme: str = "counter"
    ):
        if k < 1:
            raise ValueError(f"reservoir size k must be >= 1, got {k}")
        if scheme not in RESERVOIR_SCHEMES:
            raise ValueError(
                f"unknown RNG scheme {scheme!r}; choose from {RESERVOIR_SCHEMES}"
            )
        self.k = int(k)
        self.scheme = scheme
        if scheme == "counter":
            self.seed = _fresh_seed() if seed is None else int(seed)
            self._key = counter_key(self.seed)
            self._rng = None
        else:
            self.seed = None
            self._key = None
            self._rng = np.random.default_rng(seed)
        self._items: List = []
        self._offered = 0
        self._skip = 0  # offers to reject before the next acceptance

    def _lgamma_gap(self, n: int, u: float) -> int:
        """Skip inversion by bisection on the log-gamma closed form.

        Used once the stream dwarfs the sequential window (reachable
        through :meth:`offer_repeated` histogram entries with huge
        counts), where the sequential product would iterate once per
        skipped position.  libm's ``lgamma`` is not bit-stable across
        toolchains, so this branch stays in driver Python under both
        schemes — the regime switch is a pure function of (n, k), so
        every backend agrees on which branch a position takes.
        """
        # log P(G > g) = lgamma-form of the survival product (monotone in g).
        log_u = math.log(u) if u > 0.0 else -800.0
        base = math.lgamma(n + 1) - math.lgamma(n + 1 - self.k)

        def log_survive(g: int) -> float:
            return math.lgamma(n + g + 1 - self.k) - math.lgamma(n + g + 1) + base

        hi = 1
        while log_survive(hi) > log_u:
            hi *= 2
        lo = hi // 2
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if log_survive(mid) <= log_u:
                hi = mid
            else:
                lo = mid
        return hi - 1  # smallest m with P(G > m) <= u, minus one

    def _draw_skip(self) -> int:
        """Number of offers to skip before the next acceptance.

        Uses the distribution of Vitter's Algorithm X: starting at
        stream position n (just accepted), the gap G satisfies
        ``P(G > g) = prod_{j=1..g} (n + j - k) / (n + j)``, inverted
        against a single uniform draw.

        Two regimes, one uniform consumed either way: while the
        expected gap ``n / k`` is modest, a search on the float
        product (for the counter scheme, the shared kernel-exact
        sequential search; for legacy pcg64, the seed implementation's
        arithmetic, preserved so old snapshots continue draw for
        draw); beyond the sequential window, the lgamma bisection.
        """
        n = self._offered
        if self.scheme == "counter":
            u = counter_u01_one(self._key, n, 1)
            if n <= RESERVOIR_SEQ_FACTOR * self.k:
                return reservoir_gap_one(self.k, n, u)
            return self._lgamma_gap(n, u)
        u = float(self._rng.random())
        if n <= RESERVOIR_SEQ_FACTOR * self.k:
            gap = 0
            survive = 1.0
            while True:
                nxt = survive * (n + gap + 1 - self.k) / (n + gap + 1)
                if nxt <= u:
                    return gap
                survive = nxt
                gap += 1
        return self._lgamma_gap(n, u)

    def _draw_slot(self) -> int:
        """The reservoir slot replaced by the acceptance at ``offered``."""
        if self.scheme == "counter":
            return counter_u64_one(self._key, self._offered, 0) % self.k
        return int(self._rng.integers(0, self.k))

    def offer(self, item) -> bool:
        """Offer one stream element; returns True if it entered the sample."""
        if len(self._items) < self.k:
            self._items.append(item)
            self._offered += 1
            if len(self._items) == self.k:
                self._skip = self._draw_skip()
            return True
        if self._skip > 0:
            self._skip -= 1
            self._offered += 1
            return False
        # Accept: replace a uniform slot, then draw the next gap.
        self._offered += 1
        slot = self._draw_slot()
        self._items[slot] = item
        self._skip = self._draw_skip()
        return True

    def extend(self, items: Iterable) -> None:
        """Offer every element of an iterable."""
        for item in items:
            self.offer(item)

    def offer_many(self, items: Iterable) -> None:
        """Offer a whole batch, jumping between acceptances.

        Instead of one :meth:`offer` call per element, the skip counter
        is consumed in arithmetic jumps: work (and random draws) happen
        only at the O(k log(n/k)) accepted positions, so a
        million-element batch costs a handful of Python operations per
        acceptance.  Random draws occur at exactly the positions the
        per-element loop would make them, so the resulting reservoir is
        bit-identical to calling :meth:`offer` in a loop.
        """
        seq = items if isinstance(items, list) else list(items)
        i = 0
        n = len(seq)
        # Fill phase: the first k offers are always accepted.
        while i < n and len(self._items) < self.k:
            self._items.append(seq[i])
            self._offered += 1
            i += 1
            if len(self._items) == self.k:
                self._skip = self._draw_skip()
        # Steady state: jump straight to the next accepting position.
        while i < n:
            remaining = n - i
            if self._skip >= remaining:
                self._skip -= remaining
                self._offered += remaining
                return
            i += self._skip
            self._offered += self._skip
            self._offered += 1
            slot = self._draw_slot()
            self._items[slot] = seq[i]
            self._skip = self._draw_skip()
            i += 1

    def offer_array(self, values: np.ndarray) -> None:
        """Offer a whole int64 array through the compiled chain kernel.

        Counter scheme only (legacy pcg64 reservoirs fall back to the
        Python jump loop of :meth:`offer_many`): the full-reservoir
        stretch dispatches to :func:`repro.kernels.reservoir_chain`,
        which returns every accepted (offset, slot) pair in one
        compiled pass.  Batches crossing the sequential window are
        split at the boundary; beyond it the driver jumps between
        acceptances with lgamma-drawn gaps.  Draw-for-draw identical
        to offering every element through :meth:`offer`.
        """
        arr = np.ascontiguousarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"values must be one-dimensional, got shape {arr.shape}")
        if self.scheme != "counter":
            self.offer_many(arr.tolist())
            return
        i = 0
        n = arr.size
        # Fill phase: the first k offers are always accepted.
        while i < n and len(self._items) < self.k:
            self._items.append(int(arr[i]))
            self._offered += 1
            i += 1
            if len(self._items) == self.k:
                self._skip = self._draw_skip()
        window_end = RESERVOIR_SEQ_FACTOR * self.k
        while i < n:
            window = window_end - self._offered
            remaining = n - i
            if window > 0:
                span = min(window, remaining)
                accepts, slots, skip = reservoir_chain(
                    self._key, self.k, self._offered, self._skip, span
                )
                for off, slot in zip(accepts.tolist(), slots.tolist()):
                    self._items[slot] = int(arr[i + off])
                self._offered += span
                self._skip = skip
                i += span
                continue
            # Beyond the sequential window: arithmetic jumps, lgamma gaps.
            if self._skip >= remaining:
                self._skip -= remaining
                self._offered += remaining
                return
            i += self._skip
            self._offered += self._skip
            self._offered += 1
            slot = self._draw_slot()
            self._items[slot] = int(arr[i])
            self._skip = self._draw_skip()
            i += 1

    @property
    def items(self) -> List:
        """The current sample contents (length min(k, offered))."""
        return list(self._items)

    @property
    def offered(self) -> int:
        """Total number of elements offered so far."""
        return self._offered

    def offer_repeated(self, item, count: int) -> None:
        """Offer ``count`` copies of one item without materialising them.

        Identical (draw for draw) to calling :meth:`offer` ``count``
        times with the same item, but costs only the O(k log(n/k))
        accepted positions — a billion-copy histogram entry folds in
        without a billion-element expansion.
        """
        count = int(count)
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        while count and len(self._items) < self.k:
            self._items.append(item)
            self._offered += 1
            count -= 1
            if len(self._items) == self.k:
                self._skip = self._draw_skip()
        while count:
            if self._skip >= count:
                self._skip -= count
                self._offered += count
                return
            count -= self._skip + 1
            self._offered += self._skip + 1
            slot = self._draw_slot()
            self._items[slot] = item
            self._skip = self._draw_skip()

    def to_dict(self) -> dict:
        """Serialise the reservoir (items, counters, RNG cursor).

        Counter-scheme payloads carry the seed — the whole RNG cursor,
        since draws are keyed by the (offered, skip) position already
        stored.  Legacy pcg64 payloads keep carrying the full
        generator state, exactly as before this scheme existed.
        """
        payload = {
            "k": self.k,
            "items": list(self._items),
            "offered": self._offered,
            "skip": self._skip,
            "scheme": self.scheme,
        }
        if self.scheme == "counter":
            payload["seed"] = self.seed
        else:
            payload["rng"] = self._rng.bit_generator.state
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ReservoirSample":
        """Reconstruct a reservoir from :meth:`to_dict` output.

        The RNG cursor is restored too, so continued streaming matches
        the original bit for bit.  Payloads written before the counter
        scheme existed have no ``scheme`` field but do carry a pcg64
        ``rng`` state; they load onto the legacy path and continue
        exactly.
        """
        scheme = payload.get("scheme")
        if scheme is None:
            scheme = "pcg64" if "rng" in payload else "counter"
        if scheme == "counter":
            reservoir = cls(
                int(payload["k"]), seed=int(payload["seed"]), scheme="counter"
            )
        else:
            reservoir = cls(int(payload["k"]), scheme="pcg64")
            rng = np.random.default_rng()
            rng.bit_generator.state = payload["rng"]
            reservoir._rng = rng
        reservoir._items = list(payload["items"])
        reservoir._offered = int(payload["offered"])
        reservoir._skip = int(payload["skip"])
        return reservoir

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReservoirSample(k={self.k}, offered={self._offered})"
