"""Update-stream substrate: operations, canonical sequences, reservoirs.

The tracking problem of the paper is defined over a sequence of
``insert(v)`` / ``delete(v)`` / ``query`` operations on a multiset R,
initially empty.  This package provides:

* :mod:`repro.streams.operations` — typed operations, operation
  sequences, generators of mixed insert/delete workloads, and a driver
  that replays a sequence against any tracker;
* :mod:`repro.streams.canonical` — the canonical-sequence reduction of
  Section 2.1 (deletion reverses the most recent undeleted insertion of
  the same value), used to validate deletion handling;
* :mod:`repro.streams.reservoir` — uniform reservoir sampling with the
  skipping technique of [Vit85], the engine behind sample-count's O(1)
  amortised position maintenance and naive-sampling's streaming sample.
"""

from .canonical import canonical_sequence, remaining_multiset
from .operations import (
    Delete,
    Insert,
    Operation,
    OperationSequence,
    Query,
    replay,
)
from .reservoir import ReservoirSample, SingleReservoir

__all__ = [
    "Insert",
    "Delete",
    "Query",
    "Operation",
    "OperationSequence",
    "replay",
    "canonical_sequence",
    "remaining_multiset",
    "ReservoirSample",
    "SingleReservoir",
]
