"""The keyed estimation service: per-(key, window) cached queries.

:class:`KeyedSketchService` is :class:`~repro.service.service.
SketchService` lifted over a :class:`~repro.store.keyed.
KeyedSketchStore` fleet.  The concurrency story is identical — one
writer-preferring :class:`~repro.service.concurrency.ReadWriteLock`
guards the whole fleet, queries coalesce through one
:class:`~repro.service.concurrency.SingleFlightCache` — but every
cache entry and every dirty interval now carries the key as its tag:

* a cached window is keyed ``(key, t0, t1, align)`` and records the
  bucket-span range ``(key, b0, b1)`` it was merged from;
* an ingest for ``key`` invalidates only intervals tagged with that
  key, so one tenant's writes never evict another tenant's hot
  windows — cache isolation mirroring the store's structural
  cross-key isolation.

Query methods take ``key`` as a keyword-only argument and refuse to
run without one.  The wire surface passes ``key=`` through only when a
request names one, so both mismatches fail with a ``TypeError``
(already in the surface's handled-error table) instead of silently
answering from the wrong stream: a keyed request against a
single-stream service trips the unexpected-keyword ``TypeError``, and
a key-less request against this service trips :func:`_require_key`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..engine.protocol import Sketch
from ..store.keyed import KeyedSketchStore, validate_key
from .concurrency import ReadWriteLock, SingleFlightCache
from .service import WindowEstimate, _WindowEntry, _copy_sketch, dirty_intervals

__all__ = ["KeyedSketchService"]

#: A bucket interval meaning "every window of this key".
_EVERYWHERE = (-(1 << 62), 1 << 62)


def _require_key(key: str | None) -> str:
    """The key of a keyed operation, refused with a useful TypeError.

    ``TypeError`` (not ``ValueError``) so a key-less request against a
    keyed fleet fails the same way — with a message naming the fix —
    whether it hits this service directly or the cluster front end.
    """
    if key is None:
        raise TypeError("this service serves a keyed fleet; pass key='...'")
    return validate_key(key)


class KeyedSketchService:
    """Thread-safe, cached windowed estimates over a keyed fleet.

    Parameters
    ----------
    store:
        The :class:`~repro.store.keyed.KeyedSketchStore` to serve.
        The service owns it from here on: all access must go through
        the service, or the cache and isolation guarantees are void.
    cache_entries:
        Capacity of the merged-window LRU cache (shared by all keys).

    Examples
    --------
    >>> from repro.store import KeyedSketchStore, SketchSpec
    >>> fleet = KeyedSketchStore(
    ...     SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 1}),
    ...     bucket_width=10,
    ... )
    >>> service = KeyedSketchService(fleet)
    >>> service.ingest([3, 27], [5, 5], key="a")
    >>> service.estimate(0, 30, key="a") == service.estimate(0, 30, key="a")
    True
    """

    def __init__(self, store: KeyedSketchStore, cache_entries: int = 256):
        if not isinstance(store, KeyedSketchStore):
            raise TypeError(
                f"store must be a KeyedSketchStore, got {type(store).__name__}"
            )
        self._store = store
        self._rw = ReadWriteLock()
        self._cache = SingleFlightCache(cache_entries)

    # ------------------------------------------------------------------
    # Mutations (exclusive; invalidate only the touched key's windows)
    # ------------------------------------------------------------------
    def ingest(
        self,
        timestamps: np.ndarray | Iterable[int],
        values: np.ndarray | Iterable[int],
        counts: np.ndarray | Iterable[int] | None = None,
        max_workers: int | None = None,
        *,
        key: str | None = None,
    ) -> None:
        """Apply one key's timestamped batch atomically.

        Only cached windows *of that key* intersecting the covering
        spans of the touched buckets are invalidated; other keys'
        entries stay hot.  As in the single-stream service, a rejected
        batch may be partially applied — invalidation still runs.
        """
        key = _require_key(key)
        ts = np.asarray(timestamps, dtype=np.int64)
        touched: np.ndarray = (
            np.unique((ts - self._store.origin) // self._store.bucket_width)
            if ts.ndim == 1 and ts.size
            else np.empty(0, dtype=np.int64)
        )
        with self._rw.write():
            per_key = self._store.store_for(key)
            before = [] if per_key is None else per_key.bucket_spans
            try:
                self._store.ingest(
                    key, ts, values, counts=counts, max_workers=max_workers
                )
            finally:
                per_key = self._store.store_for(key)
                if per_key is not None:
                    self._cache.invalidate(
                        key, dirty_intervals(per_key, before, touched.tolist())
                    )

    def compact(self, before: int | None = None, key: str | None = None) -> int:
        """Fold old spans (one key, or every key); drops affected windows."""
        with self._rw.write():
            keys = [validate_key(key)] if key is not None else self._store.keys
            spans_before = {
                k: s.bucket_spans
                for k in keys
                if (s := self._store.store_for(k)) is not None
            }
            try:
                return self._store.compact(before=before, key=key)
            finally:
                for k, spans in spans_before.items():
                    per_key = self._store.store_for(k)
                    if per_key is not None:
                        self._cache.invalidate(
                            k, dirty_intervals(per_key, spans, ())
                        )

    def evict(self, before: int, key: str | None = None) -> int:
        """Forget old spans (one key, or every key); drops their windows."""
        with self._rw.write():
            keys = [validate_key(key)] if key is not None else self._store.keys
            spans_before = {
                k: s.bucket_spans
                for k in keys
                if (s := self._store.store_for(k)) is not None
            }
            try:
                return self._store.evict(before, key=key)
            finally:
                for k, spans in spans_before.items():
                    per_key = self._store.store_for(k)
                    if per_key is not None:
                        self._cache.invalidate(
                            k, dirty_intervals(per_key, spans, ())
                        )

    # ------------------------------------------------------------------
    # Queries (shared; coalesced and cached per (key, window))
    # ------------------------------------------------------------------
    def query(
        self, t0: int, t1: int, align: str = "strict", *, key: str | None = None
    ) -> Sketch:
        """The merged sketch of one key's window, as an independent copy."""
        return _copy_sketch(self._entry(key, t0, t1, align).sketch)

    def estimate(
        self, t0: int, t1: int, align: str = "strict", *, key: str | None = None
    ) -> float:
        """Self-join estimate over one key's window (cached)."""
        return self._entry(key, t0, t1, align).estimate

    def estimate_window(
        self,
        t0: int,
        t1: int,
        align: str = "strict",
        *,
        key: str | None = None,
    ) -> WindowEstimate:
        """The estimate together with the window it actually covers."""
        entry = self._entry(key, t0, t1, align)
        return WindowEstimate(entry.estimate, entry.lo, entry.hi)

    def sketch_window(
        self,
        t0: int,
        t1: int,
        align: str = "strict",
        *,
        key: str | None = None,
    ) -> tuple[Sketch, int, int]:
        """A detached merged sketch plus its resolved window, atomically."""
        entry = self._entry(key, t0, t1, align)
        return _copy_sketch(entry.sketch), entry.lo, entry.hi

    def window_bounds(
        self,
        t0: int,
        t1: int,
        align: str = "strict",
        *,
        key: str | None = None,
    ) -> tuple[int, int]:
        """The timestamp window a query for ``key`` would actually cover."""
        key = _require_key(key)
        with self._rw.read():
            return self._store.window_bounds(key, t0, t1, align=align)

    def _entry(self, key: str, t0: int, t1: int, align: str) -> _WindowEntry:
        key = _require_key(key)
        cache_key = (key, int(t0), int(t1), str(align))

        def compute() -> tuple[_WindowEntry, list]:
            with self._rw.read():
                lo, hi = self._store.window_bounds(key, t0, t1, align=align)
                sketch = self._store.query(key, lo, hi, align="strict")
            b0 = (lo - self._store.origin) // self._store.bucket_width
            b1 = (hi - self._store.origin) // self._store.bucket_width
            entry = _WindowEntry(sketch, float(sketch.estimate()), lo, hi)
            return entry, [(key, b0, b1)]

        return self._cache.get(cache_key, compute)

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def spec(self):
        """The fleet's shared :class:`~repro.store.spec.SketchSpec`."""
        return self._store.spec

    @property
    def bucket_width(self) -> int:
        return self._store.bucket_width

    @property
    def origin(self) -> int:
        return self._store.origin

    @property
    def keys(self) -> list[str]:
        """Every materialised key (consistent snapshot)."""
        with self._rw.read():
            return self._store.keys

    @property
    def key_count(self) -> int:
        with self._rw.read():
            return self._store.key_count

    @property
    def spans(self) -> list[tuple[int, int]]:
        """Distinct timestamp span ranges across every key, sorted."""
        with self._rw.read():
            out = set()
            for k in self._store.keys:
                store = self._store.store_for(k)
                if store is not None:
                    out.update(tuple(span) for span in store.spans)
            return sorted(out)

    @property
    def span_count(self) -> int:
        with self._rw.read():
            return self._store.span_count

    @property
    def coverage(self) -> tuple[int, int] | None:
        with self._rw.read():
            return self._store.coverage

    @property
    def memory_words(self) -> int:
        with self._rw.read():
            return self._store.memory_words

    def info(self) -> dict:
        """A consistent one-shot summary of the served fleet.

        Same shape as :meth:`SketchService.info` plus ``keyed: True``
        and the key inventory, so wire clients (and the cluster's
        keyed-capability probe) can tell a fleet from a single-stream
        store without a second round trip.
        """
        with self._rw.read():
            coverage = self._store.coverage
            spans = set()
            for k in self._store.keys:
                store = self._store.store_for(k)
                if store is not None:
                    spans.update(tuple(span) for span in store.spans)
            from ..kernels import active_backend
            from ..streams.reservoir import DEFAULT_SAMPLER_RNG

            return {
                "kind": self._store.spec.kind,
                "spec": self._store.spec.to_dict(),
                "bucket_width": self._store.bucket_width,
                "origin": self._store.origin,
                "keyed": True,
                "keys": self._store.keys,
                "key_count": self._store.key_count,
                "max_keys": self._store.max_keys,
                "spans": [list(span) for span in sorted(spans)],
                "coverage": None if coverage is None else list(coverage),
                "memory_words": self._store.memory_words,
                "kernel_backend": active_backend(),
                "sampler_rng": DEFAULT_SAMPLER_RNG,
            }

    def snapshot(self, key: str | None = None) -> dict:
        """A consistent checkpoint: one key's store, or the whole fleet."""
        with self._rw.read():
            if key is None:
                return self._store.to_dict()
            return self._store.snapshot(validate_key(key))

    def restore(self, snapshot, key: str | None = None) -> None:
        """Swap in a :meth:`snapshot` checkpoint (one key or whole fleet).

        With ``key`` the payload must be one per-key windowed-store
        snapshot matching the fleet template; without, it must be a
        whole-fleet ``"keyed-store"`` payload whose template matches
        this service's.  Either way the affected keys' cached windows
        are dropped wholesale: every answer may have changed.
        """
        if key is not None:
            key = validate_key(key)
            with self._rw.write():
                try:
                    self._store.restore(key, snapshot)
                finally:
                    self._cache.invalidate(key, [_EVERYWHERE])
            return
        fleet = KeyedSketchStore.from_dict(snapshot)
        with self._rw.write():
            current = self._store
            for field in ("bucket_width", "origin"):
                if getattr(fleet, field) != getattr(current, field):
                    raise ValueError(
                        f"restore snapshot disagrees on {field}: "
                        f"{getattr(fleet, field)!r} != "
                        f"{getattr(current, field)!r}"
                    )
            if fleet.spec.to_dict() != current.spec.to_dict():
                raise ValueError(
                    f"restore snapshot disagrees on spec: "
                    f"{fleet.spec.to_dict()!r} != {current.spec.to_dict()!r}"
                )
            dirty = set(current.keys) | set(fleet.keys)
            self._store = fleet
            for k in dirty:
                self._cache.invalidate(k, [_EVERYWHERE])

    def stats(self, key: str | None = None) -> dict:
        """Cache statistics plus per-key net logical item counts.

        With ``key`` the item inventory is restricted to that key (an
        unseen key reports 0 items) — the wire ``stats`` op's keyed
        form, so one tenant's load is observable without shipping the
        whole fleet's inventory.
        """
        with self._rw.read():
            items = self._store.items_by_key()
        if key is not None:
            key = validate_key(key)
            items = {key: items.get(key, 0)}
        from ..kernels import active_backend
        from ..streams.reservoir import DEFAULT_SAMPLER_RNG

        stats = dict(self._cache.stats)
        stats["keyed"] = True
        stats["key_count"] = len(items)
        stats["items"] = sum(items.values())
        stats["items_by_key"] = {k: items[k] for k in sorted(items)}
        stats["kernel_backend"] = active_backend()
        stats["sampler_rng"] = DEFAULT_SAMPLER_RNG
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KeyedSketchService({self._store!r}, cache={self._cache.stats})"
        )
