"""Event-loop serving front end: pipelined connections on one thread.

The threaded server (:mod:`repro.service.server`) spends one OS
thread per connection and serves one request per round trip.  This
front end multiplexes every connection onto a single asyncio event
loop and **pipelines** within each connection: a decode task parses
requests off the socket into a bounded queue while a responder task
executes them — so the decode of request *k+1* overlaps the execution
of request *k*, and a client may queue many requests before reading
any response.  Responses still come back strictly in request order
(execution is serial per connection), which is what makes pipelining
safe to use blindly.

Handlers run in the loop's default thread-pool executor so a long
estimate never stalls the loop; all dispatch goes through the shared
service surface (:mod:`repro.service.surface`) — this module, like
the threaded one, contributes transport only.

Flow control, both directions:

* inbound, the decode queue is bounded (a client that pipelines
  faster than the service executes is paused at the TCP window, not
  buffered without limit), and binary frames above ``max_frame_bytes``
  are refused and drained without allocation;
* outbound, the responder awaits ``drain()`` after every write, so a
  client that stops reading pauses its own connection instead of
  growing the server's write buffer.

Protocol negotiation is byte-compatible with the threaded server:
the first byte of a connection selects binary frames (``0xAB``) or
line-JSON (anything else), and ``protocol="json"``/``"binary"``
restricts the port to one of them.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading

from . import wire
from .server import DEFAULT_READ_TIMEOUT, PROTOCOLS
from .surface import handle_frame, handle_request, validate_service

__all__ = ["EventLoopServer", "PIPELINE_DEPTH"]

#: Requests a single connection may have decoded-but-unexecuted; past
#: this the decode task stops reading and TCP backpressure reaches the
#: client.
PIPELINE_DEPTH = 32

#: Bytes drained per read when discarding an oversized frame's payload.
_DRAIN_CHUNK = 1 << 20

#: "No limit" bound for the first header parse: the real size check
#: happens after, so an oversized frame can be drained and answered
#: instead of desynchronizing the stream.
_HEADER_ONLY_LIMIT = (1 << 32) + wire.HEADER_SIZE


def _error_frame(opcode: int, message: str) -> bytes:
    return wire.pack_frame(
        opcode,
        wire.encode_compact({"ok": False, "error": message}),
        flags=wire.FLAG_RESPONSE | wire.FLAG_ERROR,
    )


def _json_line(response: dict) -> bytes:
    return (json.dumps(response) + "\n").encode("utf-8")


class EventLoopServer:
    """Asyncio front end over one estimation service.

    Mirrors :class:`~repro.service.server.SketchServiceServer`'s
    surface — ``server_address`` after construction, blocking
    ``serve_forever()``, thread-safe ``shutdown()``, idempotent
    ``server_close()`` — so the CLI can swap front ends without
    changing its lifecycle code.  The listening socket is bound
    synchronously in ``__init__`` (port 0 works), the loop starts in
    ``serve_forever``.
    """

    def __init__(
        self,
        service,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_requests: int | None = None,
        read_timeout: float | None = DEFAULT_READ_TIMEOUT,
        protocol: str = "auto",
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
    ):
        validate_service(service)
        self.service = service
        self.max_requests = None if max_requests is None else int(max_requests)
        if read_timeout is not None and float(read_timeout) <= 0:
            raise ValueError(
                f"read_timeout must be positive or None, got {read_timeout}"
            )
        self.read_timeout = None if read_timeout is None else float(read_timeout)
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"protocol must be one of {PROTOCOLS}, got {protocol!r}"
            )
        self.protocol = protocol
        if int(max_frame_bytes) < wire.HEADER_SIZE:
            raise ValueError(
                f"max_frame_bytes must be at least {wire.HEADER_SIZE}, "
                f"got {max_frame_bytes}"
            )
        self.max_frame_bytes = int(max_frame_bytes)
        # Bind now so server_address is known before the loop exists.
        self._sock = socket.create_server(
            tuple(address), reuse_port=False, backlog=128
        )
        self.server_address = self._sock.getsockname()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._loop_ready = threading.Event()
        self._served = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle (mirrors socketserver's split of concerns)
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` is called."""
        asyncio.run(self._main())

    def shutdown(self) -> None:
        """Stop ``serve_forever`` from any thread (safe before start)."""
        self._loop_ready.wait(timeout=5.0)
        loop = self._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._signal_stop)

    def server_close(self) -> None:
        """Release the listening socket (idempotent).

        While the loop is running it owns the socket and closes it as
        ``serve_forever`` unwinds; closing the fd out from under a live
        loop would poison its selector, so this only closes directly
        when the loop never started or has already finished.
        """
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is not None and not loop.is_closed():
            return
        with contextlib.suppress(OSError):
            self._sock.close()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._loop_ready.set()
        # The stream limit bounds readline() in JSON mode, so it doubles
        # as the max-line guard; binary reads use readexactly and are
        # bounded by the explicit frame-size check instead.
        server = await asyncio.start_server(
            self._handle_connection,
            sock=self._sock,
            limit=max(self.max_frame_bytes, 1 << 16),
        )
        async with server:
            await self._stop.wait()

    def _signal_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    def _count_request(self) -> bool:
        """Loop-thread only: record one response, True when budget spent."""
        if self.max_requests is None:
            return False
        self._served += 1
        return self._served >= self.max_requests

    def _finish_one(self, stopping: bool) -> bool:
        if self._count_request() or stopping:
            self._signal_stop()
            return True
        return False

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _read(self, awaitable):
        if self.read_timeout is None:
            return await awaitable
        return await asyncio.wait_for(awaitable, self.read_timeout)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                first = await self._read(reader.readexactly(1))
            except (
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                TimeoutError,
                OSError,
            ):
                return
            binary = first == wire.MAGIC[:1]
            if binary and self.protocol == "json":
                writer.write(_error_frame(
                    wire.OP_HELLO,
                    "this port serves the line-JSON protocol only",
                ))
                await writer.drain()
                return
            if not binary and self.protocol == "binary":
                writer.write(_json_line({
                    "ok": False,
                    "error": "this port serves the binary protocol only",
                }))
                await writer.drain()
                return
            if binary:
                await self._serve_binary(reader, writer, first)
            else:
                await self._serve_json(reader, writer, first)
        except (asyncio.TimeoutError, TimeoutError, ConnectionError, OSError):
            # Stalled or torn connection: drop it, keep the loop.
            # asyncio.TimeoutError is spelled out because wait_for
            # raises it on 3.10, where it is not yet the builtin.
            pass
        except asyncio.CancelledError:
            # Loop teardown cancelled a live connection: finish the
            # task cleanly (re-raising would only produce shutdown
            # noise from the streams done-callback).
            pass
        finally:
            with contextlib.suppress(
                asyncio.CancelledError, OSError, ConnectionError
            ):
                writer.close()
                await writer.wait_closed()

    async def _pipeline(self, decode, respond) -> None:
        """Run decode/respond as the two halves of one pipelined
        connection; whichever half finishes first retires the other."""
        decode_task = asyncio.create_task(decode())
        try:
            await respond()
        finally:
            decode_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await decode_task

    # -- line-JSON ------------------------------------------------------
    async def _serve_json(self, reader, writer, first: bytes) -> None:
        queue: asyncio.Queue = asyncio.Queue(maxsize=PIPELINE_DEPTH)

        async def decode() -> None:
            prefix = first
            try:
                while True:
                    try:
                        line = prefix + await self._read(reader.readline())
                    except ValueError:
                        # Line longer than the stream limit.
                        await queue.put((
                            "fatal",
                            f"request line exceeds the "
                            f"{max(self.max_frame_bytes, 1 << 16)}-byte limit",
                        ))
                        return
                    prefix = b""
                    if not line:
                        return  # orderly EOF
                    stripped = line.strip()
                    if stripped:
                        await queue.put(("line", stripped))
                    if not line.endswith(b"\n"):
                        return  # EOF mid-line: serve what arrived whole
            except (
                asyncio.TimeoutError, TimeoutError, ConnectionError, OSError
            ):
                pass
            finally:
                await queue.put(None)

        async def respond() -> None:
            loop = asyncio.get_running_loop()
            while True:
                item = await queue.get()
                if item is None:
                    return
                kind, data = item
                if kind == "fatal":
                    writer.write(_json_line({"ok": False, "error": data}))
                    await writer.drain()
                    return
                response = await loop.run_in_executor(
                    None, handle_request, self.service, data
                )
                writer.write(_json_line(response))
                await writer.drain()
                stopping = bool(
                    response.get("ok") and response.get("op") == "shutdown"
                )
                if self._finish_one(stopping):
                    return

        await self._pipeline(decode, respond)

    # -- binary frames --------------------------------------------------
    async def _serve_binary(self, reader, writer, first: bytes) -> None:
        queue: asyncio.Queue = asyncio.Queue(maxsize=PIPELINE_DEPTH)

        async def decode() -> None:
            prefix = first
            try:
                while True:
                    try:
                        header = prefix + await self._read(
                            reader.readexactly(wire.HEADER_SIZE - len(prefix))
                        )
                    except asyncio.IncompleteReadError as exc:
                        if exc.partial or prefix:
                            await queue.put((
                                "fatal",
                                wire.OP_HELLO,
                                f"truncated frame header: got "
                                f"{len(prefix) + len(exc.partial)} of "
                                f"{wire.HEADER_SIZE} bytes",
                            ))
                        return  # bare EOF at a frame boundary is orderly
                    prefix = b""
                    try:
                        version, opcode, flags, length = wire.unpack_header(
                            header, _HEADER_ONLY_LIMIT
                        )
                    except wire.WireError as exc:
                        # Bad magic: the stream is unsynchronized.
                        await queue.put(("fatal", wire.OP_HELLO, str(exc)))
                        return
                    if length > self.max_frame_bytes:
                        # Refuse without allocating, drain so the
                        # connection stays frame-aligned and survives.
                        await self._drain_payload(reader, length)
                        await queue.put((
                            "refused",
                            opcode,
                            f"frame payload of {length} bytes exceeds "
                            f"the {self.max_frame_bytes}-byte limit",
                        ))
                        continue
                    try:
                        payload = (
                            await self._read(reader.readexactly(length))
                            if length
                            else b""
                        )
                    except asyncio.IncompleteReadError as exc:
                        await queue.put((
                            "fatal",
                            opcode,
                            f"truncated frame payload: got "
                            f"{len(exc.partial)} of {length} bytes",
                        ))
                        return
                    await queue.put(
                        ("frame", version, opcode, flags, payload)
                    )
            except (
                asyncio.TimeoutError, TimeoutError, ConnectionError, OSError
            ):
                pass
            finally:
                await queue.put(None)

        async def respond() -> None:
            loop = asyncio.get_running_loop()
            while True:
                item = await queue.get()
                if item is None:
                    return
                if item[0] == "frame":
                    _, version, opcode, flags, payload = item
                    response, stopping = await loop.run_in_executor(
                        None,
                        handle_frame,
                        self.service,
                        version,
                        opcode,
                        flags,
                        payload,
                    )
                    writer.write(response)
                    await writer.drain()
                    if self._finish_one(stopping):
                        return
                else:
                    kind, opcode, message = item
                    writer.write(_error_frame(opcode, message))
                    await writer.drain()
                    if kind == "fatal" or self._finish_one(False):
                        return

        await self._pipeline(decode, respond)

    async def _drain_payload(self, reader, length: int) -> None:
        remaining = length
        while remaining:
            chunk = await self._read(
                reader.read(min(remaining, _DRAIN_CHUNK))
            )
            if not chunk:
                raise ConnectionError(
                    "connection closed while draining an oversized frame"
                )
            remaining -= len(chunk)
