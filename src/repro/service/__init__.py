"""Concurrent estimation serving: the system face of the reproduction.

The paper motivates sketches with query optimizers that need *fast,
high-quality join-size estimates at query time*.  This package is the
layer that actually serves those estimates under concurrent load:

* :class:`~repro.service.service.SketchService` — a thread-safe front
  on one :class:`~repro.store.windowed.WindowedSketchStore`:
  reader–writer snapshot isolation (queries never observe a
  half-applied ingest batch), an LRU merged-window cache keyed by
  ``(t0, t1, align)`` invalidated precisely per dirty bucket span, and
  single-flight coalescing of concurrent identical queries.
* :class:`~repro.service.service.CatalogService` — the same contract
  over a :class:`~repro.relational.windowed.WindowedSignatureCatalog`:
  cached windowed join / self-join estimates, invalidated per relation,
  with :meth:`~repro.service.service.CatalogService.at_window` adapting
  any window to the optimizer's catalog protocol.
* :mod:`~repro.service.surface` — the transport-independent op table
  (op name ⇄ opcode ⇄ handler ⇄ idempotency) every server dispatches
  through, so each operation is defined exactly once.
* :mod:`~repro.service.wire` — the length-prefixed binary protocol:
  struct-packed frame headers, zero-copy packed ingest batches,
  compact control payloads, HELLO version negotiation.
* :class:`~repro.service.server.SketchServiceServer` — threaded TCP
  serving both line-JSON and binary frames on one port (first-byte
  sniffing), errors surfaced as one-line ``{"ok": false, ...}``
  responses or error frames.
* :class:`~repro.service.aserver.EventLoopServer` — the asyncio front
  end (the ``repro serve`` default): pipelined connections, bounded
  read-ahead, write backpressure, same two protocols.
"""

from .aserver import EventLoopServer
from .concurrency import ReadWriteLock, SingleFlightCache
from .keyed import KeyedSketchService
from .server import DEFAULT_READ_TIMEOUT, PROTOCOLS, SketchServiceServer
from .service import CatalogService, SketchService, WindowEstimate, dirty_intervals
from .surface import OPS, handle_frame, handle_request, validate_service
from .wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameFormatError,
    FrameTooLargeError,
    ProtocolVersionError,
    WireError,
)

__all__ = [
    "SketchService",
    "KeyedSketchService",
    "CatalogService",
    "WindowEstimate",
    "SketchServiceServer",
    "EventLoopServer",
    "handle_request",
    "handle_frame",
    "validate_service",
    "OPS",
    "PROTOCOLS",
    "DEFAULT_READ_TIMEOUT",
    "DEFAULT_MAX_FRAME_BYTES",
    "WireError",
    "FrameFormatError",
    "FrameTooLargeError",
    "ProtocolVersionError",
    "ReadWriteLock",
    "SingleFlightCache",
    "dirty_intervals",
]
