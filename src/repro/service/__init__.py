"""Concurrent estimation serving: the system face of the reproduction.

The paper motivates sketches with query optimizers that need *fast,
high-quality join-size estimates at query time*.  This package is the
layer that actually serves those estimates under concurrent load:

* :class:`~repro.service.service.SketchService` — a thread-safe front
  on one :class:`~repro.store.windowed.WindowedSketchStore`:
  reader–writer snapshot isolation (queries never observe a
  half-applied ingest batch), an LRU merged-window cache keyed by
  ``(t0, t1, align)`` invalidated precisely per dirty bucket span, and
  single-flight coalescing of concurrent identical queries.
* :class:`~repro.service.service.CatalogService` — the same contract
  over a :class:`~repro.relational.windowed.WindowedSignatureCatalog`:
  cached windowed join / self-join estimates, invalidated per relation,
  with :meth:`~repro.service.service.CatalogService.at_window` adapting
  any window to the optimizer's catalog protocol.
* :class:`~repro.service.server.SketchServiceServer` — line-delimited
  JSON over TCP (the ``repro serve`` CLI command), errors surfaced as
  one-line ``{"ok": false, "error": ...}`` responses.
"""

from .concurrency import ReadWriteLock, SingleFlightCache
from .server import SketchServiceServer, handle_request
from .service import CatalogService, SketchService, WindowEstimate, dirty_intervals

__all__ = [
    "SketchService",
    "CatalogService",
    "WindowEstimate",
    "SketchServiceServer",
    "handle_request",
    "ReadWriteLock",
    "SingleFlightCache",
    "dirty_intervals",
]
