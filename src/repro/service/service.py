"""The concurrent estimation service: cached merged-window queries.

The paper's pitch is that optimizers need *fast, high-quality join-size
estimates at query time*.  :mod:`repro.store` gave us continuously
maintained windowed sketches; this module puts a query-serving front on
them so many threads can estimate while ingestion keeps running:

* **Snapshot isolation.**  Every public operation runs under a
  writer-preferring :class:`~repro.service.concurrency.ReadWriteLock`:
  queries share the read side, mutations (ingest / compact / evict)
  hold the write side alone.  A query therefore never observes a
  half-applied ingest batch — it sees the store either before or after
  each whole mutation, which is exactly linearizability for this API
  (the stress test replays concurrent histories serially and demands
  bit-identical estimates).

* **Merged-window cache.**  ``query``/``estimate`` results are cached
  in an LRU keyed by the request tuple ``(t0, t1, align)``.  Each
  entry records the bucket-span range it was merged from; a mutation
  computes its *dirty intervals* — the covering spans of every bucket
  the batch touched, plus any spans created or removed by compaction,
  eviction, or retention — and drops exactly the entries whose ranges
  intersect.  Windows over untouched history stay hot forever.

* **Request coalescing.**  Concurrent identical cold queries share one
  merge: the first caller computes under the read lock, the rest wait
  for its result (single flight).  A mutation landing mid-flight marks
  the flight stale so the result is served to the overlapping callers
  but never cached; the first later caller leads a fresh replacement
  flight that the rest coalesce onto.

:class:`SketchService` wraps one :class:`~repro.store.windowed.
WindowedSketchStore`; :class:`CatalogService` wraps a
:class:`~repro.relational.windowed.WindowedSignatureCatalog` with the
same machinery, caching windowed join / self-join estimates per
relation pair and invalidating only the entries that mention a dirtied
relation.  ``CatalogService.at_window`` adapts a fixed window to the
``join_estimate(left, right)`` protocol the optimizer consumes, so a
join order can be chosen from cached windowed estimates directly.

The wire-facing twin of this module is :mod:`repro.service.server`
(line-delimited JSON over TCP, the ``repro serve`` CLI command).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..engine.protocol import Sketch
from ..engine.registry import dump_sketch, load_sketch
from ..relational.windowed import WindowedSignatureCatalog
from ..store.keyed import _store_items
from ..store.windowed import WindowedSketchStore
from .concurrency import ReadWriteLock, SingleFlightCache

__all__ = ["SketchService", "CatalogService", "WindowEstimate", "dirty_intervals"]

#: A bucket interval meaning "every window involving this tag".
_EVERYWHERE = (-(1 << 62), 1 << 62)


@dataclass(frozen=True)
class WindowEstimate:
    """One served estimate with the window it actually summarises."""

    estimate: float
    t0: int  # resolved window start (inclusive), after alignment
    t1: int  # resolved window end (exclusive), after alignment


@dataclass(eq=False)
class _WindowEntry:
    """A cached merged window: the sketch, its estimate, its bounds."""

    sketch: Sketch
    estimate: float
    lo: int
    hi: int


def dirty_intervals(
    store: WindowedSketchStore,
    spans_before: Sequence[tuple[int, int]],
    touched_buckets: Iterable[int],
) -> list[tuple[int, int]]:
    """Bucket intervals a mutation may have changed answers over.

    ``spans_before`` is the store's :attr:`~repro.store.windowed.
    WindowedSketchStore.bucket_spans` snapshot taken before the
    mutation; ``touched_buckets`` are the bucket indices an ingest
    batch routed events to (empty for compact/evict).  The result is

    * the covering span of every touched bucket (a span's sketch
      cannot be split, so the whole span's answers changed), and
    * every span created or removed by the mutation (compaction can
      bridge gaps between old spans, changing alignment behaviour for
      windows that never held data — those cached entries must go too).
    """
    before = set(spans_before)
    after = set(store.bucket_spans)
    intervals = set(before ^ after)
    for bucket in touched_buckets:
        b = int(bucket)
        intervals.add(store.covering_span(b) or (b, b + 1))
    return sorted(intervals)


def _copy_sketch(sketch: Sketch) -> Sketch:
    """A detached copy the caller may mutate without touching the cache."""
    copy = getattr(sketch, "copy", None)
    if callable(copy):
        return copy()
    return load_sketch(dump_sketch(sketch))


class SketchService:
    """Thread-safe, cached windowed estimates over one sketch store.

    Parameters
    ----------
    store:
        The :class:`~repro.store.windowed.WindowedSketchStore` to
        serve.  The service owns it from here on: all access must go
        through the service, or the cache and isolation guarantees are
        void.
    cache_entries:
        Capacity of the merged-window LRU cache.

    Examples
    --------
    >>> from repro.store import SketchSpec, WindowedSketchStore
    >>> store = WindowedSketchStore(
    ...     SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 1}),
    ...     bucket_width=10,
    ... )
    >>> service = SketchService(store)
    >>> service.ingest([3, 27, 14], [5, 5, 9])
    >>> service.estimate(0, 30) == service.estimate(0, 30)  # second is cached
    True
    """

    def __init__(self, store: WindowedSketchStore, cache_entries: int = 256):
        if not isinstance(store, WindowedSketchStore):
            raise TypeError(
                f"store must be a WindowedSketchStore, got {type(store).__name__}"
            )
        self._store = store
        self._rw = ReadWriteLock()
        self._cache = SingleFlightCache(cache_entries)

    # ------------------------------------------------------------------
    # Mutations (exclusive; invalidate precisely, then return)
    # ------------------------------------------------------------------
    def ingest(
        self,
        timestamps: np.ndarray | Iterable[int],
        values: np.ndarray | Iterable[int],
        counts: np.ndarray | Iterable[int] | None = None,
        max_workers: int | None = None,
    ) -> None:
        """Apply one timestamped batch atomically (no query sees it half-done).

        Cached windows intersecting the covering spans of the touched
        buckets are invalidated before this returns, so any query
        *issued after* the call completes observes the batch.  A batch
        the store rejects (e.g. a mis-routed delete) may already be
        partially applied — invalidation still runs, so the cache never
        outlives the store state it described.
        """
        ts = np.asarray(timestamps, dtype=np.int64)
        touched: np.ndarray = (
            np.unique((ts - self._store.origin) // self._store.bucket_width)
            if ts.ndim == 1 and ts.size
            else np.empty(0, dtype=np.int64)
        )
        with self._rw.write():
            before = self._store.bucket_spans
            try:
                self._store.ingest(
                    ts, values, counts=counts, max_workers=max_workers
                )
            finally:
                self._cache.invalidate(
                    None, dirty_intervals(self._store, before, touched.tolist())
                )

    def compact(self, before: int | None = None) -> int:
        """Fold old spans into one; drops cached windows the fold affects."""
        with self._rw.write():
            spans_before = self._store.bucket_spans
            try:
                return self._store.compact(before=before)
            finally:
                self._cache.invalidate(
                    None, dirty_intervals(self._store, spans_before, ())
                )

    def evict(self, before: int) -> int:
        """Forget spans older than ``before``; drops their cached windows."""
        with self._rw.write():
            spans_before = self._store.bucket_spans
            try:
                return self._store.evict(before)
            finally:
                self._cache.invalidate(
                    None, dirty_intervals(self._store, spans_before, ())
                )

    # ------------------------------------------------------------------
    # Queries (shared; coalesced and cached)
    # ------------------------------------------------------------------
    def query(self, t0: int, t1: int, align: str = "strict") -> Sketch:
        """The merged sketch of the window, as an independent copy."""
        return _copy_sketch(self._entry(t0, t1, align).sketch)

    def estimate(self, t0: int, t1: int, align: str = "strict") -> float:
        """Self-join estimate over the window (cached merge-on-query)."""
        return self._entry(t0, t1, align).estimate

    def estimate_window(
        self, t0: int, t1: int, align: str = "strict"
    ) -> WindowEstimate:
        """The estimate together with the window it actually covers."""
        entry = self._entry(t0, t1, align)
        return WindowEstimate(entry.estimate, entry.lo, entry.hi)

    def sketch_window(
        self, t0: int, t1: int, align: str = "strict"
    ) -> tuple[Sketch, int, int]:
        """A detached merged sketch plus its resolved window, atomically.

        Both come from one cache entry, so the reported bounds always
        describe the returned sketch — reading them through two
        separate calls could interleave with a concurrent mutation.
        """
        entry = self._entry(t0, t1, align)
        return _copy_sketch(entry.sketch), entry.lo, entry.hi

    def window_bounds(
        self, t0: int, t1: int, align: str = "strict"
    ) -> tuple[int, int]:
        """The timestamp window a query would actually cover."""
        with self._rw.read():
            return self._store.window_bounds(t0, t1, align)

    def _entry(self, t0: int, t1: int, align: str) -> _WindowEntry:
        key = (int(t0), int(t1), str(align))

        def compute() -> tuple[_WindowEntry, list]:
            with self._rw.read():
                lo, hi = self._store.window_bounds(t0, t1, align)
                sketch = self._store.query_resolved(lo, hi)
            b0 = (lo - self._store.origin) // self._store.bucket_width
            b1 = (hi - self._store.origin) // self._store.bucket_width
            entry = _WindowEntry(sketch, float(sketch.estimate()), lo, hi)
            return entry, [(None, b0, b1)]

        return self._cache.get(key, compute)

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def spec(self):
        """The store's :class:`~repro.store.spec.SketchSpec` (immutable)."""
        return self._store.spec

    @property
    def bucket_width(self) -> int:
        return self._store.bucket_width

    @property
    def origin(self) -> int:
        return self._store.origin

    @property
    def spans(self) -> list[tuple[int, int]]:
        """Timestamp ranges of the stored spans (consistent snapshot)."""
        with self._rw.read():
            return self._store.spans

    @property
    def span_count(self) -> int:
        with self._rw.read():
            return self._store.span_count

    @property
    def coverage(self) -> tuple[int, int] | None:
        with self._rw.read():
            return self._store.coverage

    @property
    def memory_words(self) -> int:
        with self._rw.read():
            return self._store.memory_words

    def info(self) -> dict:
        """A consistent one-shot summary of the served store.

        All fields come from a single read-lock acquisition, so the
        spans, coverage, and memory accounting always describe one
        store state — unlike reading the properties individually,
        which could interleave with a mutation.  This is the payload
        behind the wire ``info`` op.
        """
        from ..kernels import active_backend
        from ..streams.reservoir import DEFAULT_SAMPLER_RNG

        with self._rw.read():
            coverage = self._store.coverage
            return {
                "kind": self._store.spec.kind,
                "spec": self._store.spec.to_dict(),
                "bucket_width": self._store.bucket_width,
                "origin": self._store.origin,
                "spans": [list(span) for span in self._store.spans],
                "coverage": None if coverage is None else list(coverage),
                "memory_words": self._store.memory_words,
                "kernel_backend": active_backend(),
                "sampler_rng": DEFAULT_SAMPLER_RNG,
            }

    def snapshot(self) -> dict:
        """A consistent whole-store checkpoint (no mutation mid-dump)."""
        with self._rw.read():
            return self._store.to_dict()

    def restore(self, snapshot) -> None:
        """Replace the served store with a :meth:`snapshot` checkpoint.

        The recovery half of replication: a respawned (or suspect)
        replica is handed a healthy peer's snapshot and swaps it in as
        its *absolute* state — RNG state included, so continued
        ingestion is bit-identical to a replica that never failed.
        The snapshot must describe the same sketch spec and bucket
        geometry this service was configured with; restoring across
        configs would silently break the value-partition invariant,
        so it raises ``ValueError`` instead.  The whole cache is
        dropped: every window's answer may have changed.
        """
        store = WindowedSketchStore.from_dict(snapshot)
        with self._rw.write():
            current = self._store
            for field in ("bucket_width", "origin"):
                if getattr(store, field) != getattr(current, field):
                    raise ValueError(
                        f"restore snapshot disagrees on {field}: "
                        f"{getattr(store, field)!r} != "
                        f"{getattr(current, field)!r}"
                    )
            if store.spec.to_dict() != current.spec.to_dict():
                raise ValueError(
                    f"restore snapshot disagrees on spec: "
                    f"{store.spec.to_dict()!r} != {current.spec.to_dict()!r}"
                )
            self._store = store
            self._cache.invalidate(None, [_EVERYWHERE])

    def stats(self) -> dict:
        """Cache statistics plus the store's net logical item count.

        ``items`` (inserts minus deletes, summed over spans) is the
        per-shard load signal the cluster's ``stats()`` aggregates to
        make partition skew observable.
        """
        from ..kernels import active_backend
        from ..streams.reservoir import DEFAULT_SAMPLER_RNG

        stats = dict(self._cache.stats)
        with self._rw.read():
            stats["items"] = _store_items(self._store)
        stats["kernel_backend"] = active_backend()
        stats["sampler_rng"] = DEFAULT_SAMPLER_RNG
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SketchService({self._store!r}, cache={self._cache.stats})"


class _WindowView:
    """A fixed-window facade satisfying the optimizer's catalog protocol."""

    __slots__ = ("_service", "_t0", "_t1", "_align")

    def __init__(self, service: "CatalogService", t0: int, t1: int, align: str):
        self._service = service
        self._t0 = int(t0)
        self._t1 = int(t1)
        self._align = align

    def join_estimate(self, left: str, right: str) -> float:
        """|left join right| over this view's window (cached)."""
        return self._service.join_estimate(
            left, right, self._t0, self._t1, align=self._align
        )

    def self_join_estimate(self, name: str) -> float:
        """SJ(name) over this view's window (cached)."""
        return self._service.self_join_estimate(
            name, self._t0, self._t1, align=self._align
        )

    def join_error_bound(self, left: str, right: str) -> float:
        """Lemma 4.4 standard error over this view's window (cached).

        Makes the view a full bound-aware estimation backend: the
        planner's pessimistic policy
        (:class:`~repro.planner.estimators.BoundAwareCardinalities`)
        can plan over live windowed data straight from the service.
        """
        return self._service.join_error_bound(
            left, right, self._t0, self._t1, align=self._align
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"_WindowView([{self._t0}, {self._t1}), align={self._align!r}, "
            f"of {self._service!r})"
        )


class CatalogService:
    """Thread-safe, cached windowed join estimates over many relations.

    The same snapshot-isolation / merged-window-cache / coalescing
    contract as :class:`SketchService`, lifted to a
    :class:`~repro.relational.windowed.WindowedSignatureCatalog`:
    cached values are windowed join-size and self-join estimates, each
    tagged with the relations it reads so that ingesting into one
    relation invalidates only the estimates that mention it (and only
    over the dirtied spans).
    """

    def __init__(
        self, catalog: WindowedSignatureCatalog, cache_entries: int = 256
    ):
        if not isinstance(catalog, WindowedSignatureCatalog):
            raise TypeError(
                "catalog must be a WindowedSignatureCatalog, got "
                f"{type(catalog).__name__}"
            )
        self._catalog = catalog
        self._rw = ReadWriteLock()
        self._cache = SingleFlightCache(cache_entries)

    # -- mutations ---------------------------------------------------------
    def register(self, name: str) -> None:
        """Start tracking a relation (its store begins empty)."""
        with self._rw.write():
            self._catalog.register(name)
            # A re-registered name must not inherit estimates cached
            # before a drop().
            self._cache.invalidate(name, [_EVERYWHERE])

    def drop(self, name: str) -> None:
        """Stop tracking a relation; drops every estimate mentioning it."""
        with self._rw.write():
            self._catalog.drop(name)
            self._cache.invalidate(name, [_EVERYWHERE])

    def ingest(
        self,
        name: str,
        timestamps: np.ndarray | Iterable[int],
        values: np.ndarray | Iterable[int],
        counts: np.ndarray | Iterable[int] | None = None,
        max_workers: int | None = None,
    ) -> None:
        """Route one relation's timestamped batch atomically."""
        ts = np.asarray(timestamps, dtype=np.int64)
        with self._rw.write():
            store = self._catalog.store(name)
            touched = (
                np.unique((ts - store.origin) // store.bucket_width)
                if ts.ndim == 1 and ts.size
                else np.empty(0, dtype=np.int64)
            )
            before = store.bucket_spans
            try:
                store.ingest(ts, values, counts=counts, max_workers=max_workers)
            finally:
                self._cache.invalidate(
                    name, dirty_intervals(store, before, touched.tolist())
                )

    # -- queries -----------------------------------------------------------
    def join_estimate(
        self, left: str, right: str, t0: int, t1: int, align: str = "strict"
    ) -> float:
        """Estimated ``|left join right|`` over ``[t0, t1)`` (cached).

        The key is order-normalised: the inner product is symmetric, so
        ``(left, right)`` and ``(right, left)`` share one cache entry.
        """
        a, b = sorted((str(left), str(right)))
        key = ("join", a, b, int(t0), int(t1), str(align))

        def compute() -> tuple[float, list]:
            with self._rw.read():
                lo, hi = self._catalog.window_bounds(
                    t0, t1, names=(left, right), align=align
                )
                value = float(
                    self._catalog.join_estimate(left, right, t0, t1, align=align)
                )
            b0, b1 = self._bucket_range(lo, hi)
            return value, [(a, b0, b1), (b, b0, b1)]

        return self._cache.get(key, compute)

    def self_join_estimate(
        self, name: str, t0: int, t1: int, align: str = "strict"
    ) -> float:
        """Estimated SJ of one relation over ``[t0, t1)`` (cached)."""
        key = ("self", str(name), int(t0), int(t1), str(align))

        def compute() -> tuple[float, list]:
            with self._rw.read():
                lo, hi = self._catalog.window_bounds(
                    t0, t1, names=(name,), align=align
                )
                value = float(
                    self._catalog.self_join_estimate(name, t0, t1, align=align)
                )
            b0, b1 = self._bucket_range(lo, hi)
            return value, [(str(name), b0, b1)]

        return self._cache.get(key, compute)

    def join_error_bound(
        self, left: str, right: str, t0: int, t1: int, align: str = "strict"
    ) -> float:
        """Lemma 4.4 standard error over ``[t0, t1)`` (cached).

        The key is order-normalised like :meth:`join_estimate`; the
        entry is tagged with both relations so ingesting into either
        invalidates it over the dirtied spans.
        """
        a, b = sorted((str(left), str(right)))
        key = ("bound", a, b, int(t0), int(t1), str(align))

        def compute() -> tuple[float, list]:
            with self._rw.read():
                lo, hi = self._catalog.window_bounds(
                    t0, t1, names=(left, right), align=align
                )
                value = float(
                    self._catalog.join_error_bound(left, right, t0, t1, align=align)
                )
            b0, b1 = self._bucket_range(lo, hi)
            return value, [(a, b0, b1), (b, b0, b1)]

        return self._cache.get(key, compute)

    def at_window(self, t0: int, t1: int, align: str = "strict"):
        """A fixed-window view usable anywhere an
        :class:`~repro.relational.optimizer.EstimatingCatalog` is —
        e.g. ``choose_join_order(names, sizes, service.at_window(0, 3600))``
        picks a join order from cached windowed estimates.  The view
        also answers ``join_error_bound``, so it satisfies the
        planner's bound-aware backend protocol
        (:class:`~repro.planner.estimators.ErrorBoundedCatalog`).
        """
        return _WindowView(self, t0, t1, align)

    def _bucket_range(self, lo: int, hi: int) -> tuple[int, int]:
        width = self._catalog.bucket_width
        origin = self._catalog.origin
        return (lo - origin) // width, (hi - origin) // width

    # -- introspection -----------------------------------------------------
    @property
    def relations(self) -> list[str]:
        with self._rw.read():
            return self._catalog.relations

    @property
    def k(self) -> int:
        return self._catalog.k

    @property
    def memory_words(self) -> int:
        with self._rw.read():
            return self._catalog.memory_words

    def stats(self) -> dict:
        """Cache statistics: hits, misses, coalesced, invalidated, entries."""
        return self._cache.stats

    def __contains__(self, name: str) -> bool:
        with self._rw.read():
            return name in self._catalog

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CatalogService({self._catalog!r}, cache={self._cache.stats})"
