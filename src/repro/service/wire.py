"""The length-prefixed binary wire protocol (frames + payload codecs).

The line-JSON protocol spends most of an ingest batch's budget
materialising and re-parsing Python objects: every value becomes a
decimal string on the way out and a freshly allocated ``int`` on the
way in, at every hop.  This module defines the binary twin: fixed
``struct``-packed frame headers, batched ingest carried as packed
little-endian int64 arrays decoded zero-copy with ``np.frombuffer``,
and a compact msgpack-style encoding for small control payloads.

Frame layout (all integers little-endian)::

    offset  size  field
    0       2     magic    0xAB 0x52  (0xAB can never start UTF-8 JSON,
                                       so one port can sniff both)
    2       1     version  protocol version (currently 1)
    3       1     opcode   operation (see OP_*)
    4       2     flags    bit 0: response, bit 1: error response
    6       4     length   payload bytes that follow the header

A request frame carries ``flags == 0``; the response echoes the opcode
with :data:`FLAG_RESPONSE` set (plus :data:`FLAG_ERROR` when the body
is a ``{"ok": false, "error": ...}`` refusal).  Control payloads are
compact-encoded mappings shaped exactly like the line-JSON protocol's
objects minus the ``"op"`` key (the opcode carries it); the response
payload is the same mapping a JSON response line would hold.

Ingest payload (opcode :data:`OP_INGEST`)::

    offset  size  field
    0       1     payload flags  bit 0: counts present,
                                 bit 1: scalar timestamp,
                                 bit 2: key present
    1       3     padding
    4       4     n        number of events (u32)
    8       8     scalar timestamp (i64; 0 unless bit 1 set)
    16      8n    values      packed <i8
    16+8n   8n    timestamps  packed <i8 (absent when scalar)
    ...     8n    counts      packed <i8 (present when bit 0 set)
    ...     2+k   key         u16 length + UTF-8 bytes (when bit 2 set)

The key trailer rides after the packed columns so the int64 arrays
stay 8-aligned at fixed offsets and decode zero-copy whether or not
the batch is keyed.

Version negotiation: a client may open with :data:`OP_HELLO` carrying
``{"versions": [...]}``; the server answers with the highest version
both sides speak or an error frame when there is none.  The header
layout itself is version-invariant — magic, version, opcode, flags,
length always parse — so a version-skewed peer gets a readable error
frame instead of a dropped connection.  Sniffing rule (one port, both
protocols): a connection whose first byte is ``0xAB`` is binary;
anything else is treated as a line-JSON conversation (``{`` in the
common case).

Size guard: frames above ``max_frame_bytes`` (default 64 MiB) raise
:class:`FrameTooLargeError` before any allocation, so a corrupt or
hostile length field cannot balloon server memory.
"""

from __future__ import annotations

import struct
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "SUPPORTED_VERSIONS",
    "HEADER",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME_BYTES",
    "FLAG_RESPONSE",
    "FLAG_ERROR",
    "OP_HELLO",
    "OP_PING",
    "OP_ESTIMATE",
    "OP_SKETCH",
    "OP_INGEST",
    "OP_COMPACT",
    "OP_EVICT",
    "OP_INFO",
    "OP_STATS",
    "OP_SNAPSHOT",
    "OP_SHUTDOWN",
    "OP_RESTORE",
    "OPCODE_NAMES",
    "OPCODES_BY_NAME",
    "WireError",
    "FrameFormatError",
    "FrameTooLargeError",
    "ProtocolVersionError",
    "pack_frame",
    "unpack_header",
    "read_frame",
    "FrameDecoder",
    "encode_compact",
    "decode_compact",
    "pack_ingest",
    "unpack_ingest",
    "hello_response",
]

MAGIC = b"\xabR"
WIRE_VERSION = 1
SUPPORTED_VERSIONS = (1,)

HEADER = struct.Struct("<2sBBHI")
HEADER_SIZE = HEADER.size  # 10 bytes

#: Upper bound on a frame payload unless the server overrides it.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

FLAG_RESPONSE = 0x0001
FLAG_ERROR = 0x0002

OP_HELLO = 0
OP_PING = 1
OP_ESTIMATE = 2
OP_SKETCH = 3
OP_INGEST = 4
OP_COMPACT = 5
OP_EVICT = 6
OP_INFO = 7
OP_STATS = 8
OP_SNAPSHOT = 9
OP_SHUTDOWN = 10
OP_RESTORE = 11

OPCODE_NAMES = {
    OP_HELLO: "hello",
    OP_PING: "ping",
    OP_ESTIMATE: "estimate",
    OP_SKETCH: "sketch",
    OP_INGEST: "ingest",
    OP_COMPACT: "compact",
    OP_EVICT: "evict",
    OP_INFO: "info",
    OP_STATS: "stats",
    OP_SNAPSHOT: "snapshot",
    OP_SHUTDOWN: "shutdown",
    OP_RESTORE: "restore",
}
OPCODES_BY_NAME = {name: code for code, name in OPCODE_NAMES.items()}


class WireError(ValueError):
    """Base class for binary-protocol failures (a :class:`ValueError`:
    at the serving boundary these are peer-correctable, like bad JSON)."""


class FrameFormatError(WireError):
    """A frame or payload that does not parse (bad magic, truncation,
    malformed compact data)."""


class FrameTooLargeError(WireError):
    """A frame whose declared payload exceeds the configured maximum."""


class ProtocolVersionError(WireError):
    """The peer speaks a protocol version this side does not."""


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def pack_frame(
    opcode: int,
    payload: bytes | bytearray | memoryview = b"",
    flags: int = 0,
    version: int = WIRE_VERSION,
) -> bytes:
    """One complete frame: packed header followed by the payload."""
    return HEADER.pack(MAGIC, version, opcode, flags, len(payload)) + bytes(
        payload
    )


def unpack_header(
    header: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[int, int, int, int]:
    """Parse a 10-byte header into ``(version, opcode, flags, length)``.

    Validates the magic and the length bound — *not* the version:
    the header layout is version-invariant, so dispatch can answer a
    version-skewed peer with a proper error frame.
    """
    if len(header) != HEADER_SIZE:
        raise FrameFormatError(
            f"truncated frame header: got {len(header)} of "
            f"{HEADER_SIZE} bytes"
        )
    magic, version, opcode, flags, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameFormatError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})"
        )
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame payload of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return version, opcode, flags, length


def read_frame(
    rfile, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[int, int, int, bytes] | None:
    """Read one frame from a blocking binary file object.

    Returns ``(version, opcode, flags, payload)``, or ``None`` on a
    clean EOF at a frame boundary.  EOF anywhere else is a truncation
    and raises :class:`FrameFormatError`.
    """
    header = rfile.read(HEADER_SIZE)
    if not header:
        return None
    version, opcode, flags, length = unpack_header(header, max_frame_bytes)
    payload = rfile.read(length) if length else b""
    if len(payload) != length:
        raise FrameFormatError(
            f"truncated frame payload: got {len(payload)} of {length} bytes"
        )
    return version, opcode, flags, payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk feed.

    ``feed`` bytes as they arrive; iterate :meth:`frames` to drain
    every complete frame.  Malformed input raises on the *next* drain,
    leaving previously parsed frames intact — a transport loop can
    answer them before reporting the error.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = int(max_frame_bytes)
        self._buf = bytearray()

    def feed(self, data: bytes | bytearray | memoryview) -> None:
        """Append a chunk of received bytes to the parse buffer."""
        self._buf += data

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet drained as complete frames."""
        return len(self._buf)

    def frames(self):
        """Yield ``(version, opcode, flags, payload)`` for each
        complete frame currently buffered."""
        while len(self._buf) >= HEADER_SIZE:
            version, opcode, flags, length = unpack_header(
                bytes(self._buf[:HEADER_SIZE]), self.max_frame_bytes
            )
            if len(self._buf) < HEADER_SIZE + length:
                return
            payload = bytes(self._buf[HEADER_SIZE:HEADER_SIZE + length])
            del self._buf[:HEADER_SIZE + length]
            yield version, opcode, flags, payload


# ----------------------------------------------------------------------
# Compact control-payload codec (msgpack-style, little-endian)
# ----------------------------------------------------------------------
# Type tags.  The shapes follow msgpack's fix/8/16/32 families, but
# multi-byte values are little-endian like the rest of the protocol
# (this codec only ever talks to itself across the wire).
_NIL = 0xC0
_FALSE = 0xC2
_TRUE = 0xC3
_FLOAT64 = 0xCB
_INT64 = 0xD3
_STR8 = 0xD9
_STR16 = 0xDA
_STR32 = 0xDB
_ARRAY16 = 0xDC
_ARRAY32 = 0xDD
_MAP16 = 0xDE
_MAP32 = 0xDF

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: Nesting bound for both codec directions: a hostile payload of
#: nothing but array headers must not turn into a RecursionError.
_MAX_DEPTH = 64

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _encode_key(key) -> str:
    """Mapping keys, stringified exactly as ``json.dumps`` would.

    Matching JSON's key coercion keeps the two protocols
    answer-identical: a response that round-trips through either wire
    decodes to the same mapping.
    """
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, (int, np.integer)):
        return str(int(key))
    if isinstance(key, (float, np.floating)):
        return repr(float(key))
    raise FrameFormatError(
        f"cannot encode mapping key of type {type(key).__name__}"
    )


def _encode_into(out: bytearray, obj, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise FrameFormatError(
            f"payload nests deeper than {_MAX_DEPTH} levels"
        )
    if obj is None:
        out.append(_NIL)
    elif obj is True:
        out.append(_TRUE)
    elif obj is False:
        out.append(_FALSE)
    elif isinstance(obj, np.bool_):
        out.append(_TRUE if obj else _FALSE)
    elif isinstance(obj, (int, np.integer)):
        value = int(obj)
        if 0 <= value <= 0x7F:
            out.append(value)
        elif -32 <= value < 0:
            out.append(value & 0xFF)
        elif _INT64_MIN <= value <= _INT64_MAX:
            out.append(_INT64)
            out += _I64.pack(value)
        else:
            raise FrameFormatError(f"integer {value} exceeds int64 range")
    elif isinstance(obj, (float, np.floating)):
        out.append(_FLOAT64)
        out += _F64.pack(float(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        if len(raw) <= 0xFF:
            out.append(_STR8)
            out.append(len(raw))
        elif len(raw) <= 0xFFFF:
            out.append(_STR16)
            out += _U16.pack(len(raw))
        elif len(raw) <= 0xFFFFFFFF:
            out.append(_STR32)
            out += _U32.pack(len(raw))
        else:
            raise FrameFormatError("string exceeds 4 GiB")
        out += raw
    elif isinstance(obj, (list, tuple)):
        _encode_length(out, len(obj), _ARRAY16, _ARRAY32, "array")
        for item in obj:
            _encode_into(out, item, depth + 1)
    elif isinstance(obj, np.ndarray):
        _encode_into(out, obj.tolist(), depth)
    elif isinstance(obj, Mapping):
        _encode_length(out, len(obj), _MAP16, _MAP32, "mapping")
        for key, value in obj.items():
            _encode_into(out, _encode_key(key), depth + 1)
            _encode_into(out, value, depth + 1)
    else:
        raise FrameFormatError(
            f"cannot encode object of type {type(obj).__name__}"
        )


def _encode_length(
    out: bytearray, count: int, tag16: int, tag32: int, what: str
) -> None:
    if count <= 0xFFFF:
        out.append(tag16)
        out += _U16.pack(count)
    elif count <= 0xFFFFFFFF:
        out.append(tag32)
        out += _U32.pack(count)
    else:
        raise FrameFormatError(f"{what} exceeds 2^32 entries")


def encode_compact(obj) -> bytes:
    """Encode a JSON-shaped object (None/bool/int/float/str/list/dict,
    plus numpy scalars and arrays) to compact bytes."""
    out = bytearray()
    _encode_into(out, obj, 0)
    return bytes(out)


class _Reader:
    __slots__ = ("view", "pos")

    def __init__(self, data):
        self.view = memoryview(data)
        self.pos = 0

    def take(self, n: int) -> memoryview:
        end = self.pos + n
        if end > len(self.view):
            raise FrameFormatError(
                f"compact payload truncated: wanted {n} bytes at offset "
                f"{self.pos}, have {len(self.view) - self.pos}"
            )
        chunk = self.view[self.pos:end]
        self.pos = end
        return chunk

    @property
    def remaining(self) -> int:
        return len(self.view) - self.pos


def _decode_count(reader: _Reader, tag: int) -> int:
    if tag in (_ARRAY16, _MAP16, _STR16):
        return _U16.unpack(reader.take(2))[0]
    return _U32.unpack(reader.take(4))[0]


def _decode_from(reader: _Reader, depth: int):
    if depth > _MAX_DEPTH:
        raise FrameFormatError(
            f"payload nests deeper than {_MAX_DEPTH} levels"
        )
    tag = reader.take(1)[0]
    if tag <= 0x7F:
        return tag
    if tag >= 0xE0:
        return tag - 0x100
    if tag == _NIL:
        return None
    if tag == _TRUE:
        return True
    if tag == _FALSE:
        return False
    if tag == _FLOAT64:
        return _F64.unpack(reader.take(8))[0]
    if tag == _INT64:
        return _I64.unpack(reader.take(8))[0]
    if tag == _STR8:
        length = reader.take(1)[0]
        return _decode_str(reader, length)
    if tag in (_STR16, _STR32):
        return _decode_str(reader, _decode_count(reader, tag))
    if tag in (_ARRAY16, _ARRAY32):
        count = _decode_count(reader, tag)
        if count > reader.remaining:
            raise FrameFormatError(
                f"array claims {count} entries with only "
                f"{reader.remaining} bytes left"
            )
        return [_decode_from(reader, depth + 1) for _ in range(count)]
    if tag in (_MAP16, _MAP32):
        count = _decode_count(reader, tag)
        if 2 * count > reader.remaining:
            raise FrameFormatError(
                f"mapping claims {count} entries with only "
                f"{reader.remaining} bytes left"
            )
        result = {}
        for _ in range(count):
            key = _decode_from(reader, depth + 1)
            if not isinstance(key, str):
                raise FrameFormatError(
                    f"mapping key must decode to str, got "
                    f"{type(key).__name__}"
                )
            result[key] = _decode_from(reader, depth + 1)
        return result
    raise FrameFormatError(f"unknown compact type tag 0x{tag:02x}")


def _decode_str(reader: _Reader, length: int) -> str:
    try:
        return str(reader.take(length), "utf-8")
    except UnicodeDecodeError as exc:
        raise FrameFormatError(f"invalid UTF-8 in string: {exc}") from exc


def decode_compact(data: bytes | bytearray | memoryview):
    """Decode compact bytes back to the object they encode.

    The whole payload must be one object: trailing bytes are a
    framing bug and raise :class:`FrameFormatError`.
    """
    reader = _Reader(data)
    obj = _decode_from(reader, 0)
    if reader.remaining:
        raise FrameFormatError(
            f"{reader.remaining} trailing bytes after compact payload"
        )
    return obj


# ----------------------------------------------------------------------
# Ingest payload codec (packed arrays, zero-copy decode)
# ----------------------------------------------------------------------
_INGEST_HEADER = struct.Struct("<BxxxIq")
_INGEST_HEADER_SIZE = _INGEST_HEADER.size  # 16 bytes

_INGEST_HAS_COUNTS = 0x01
_INGEST_SCALAR_TS = 0x02
_INGEST_HAS_KEY = 0x04

#: Keys travel with a u16 length prefix, so this is a hard wire limit.
_MAX_KEY_BYTES = 0xFFFF


def _packed_i64(values, what: str) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise WireError(f"{what} must be a 1-D array, got shape {arr.shape}")
    if arr.size and not (
        np.issubdtype(arr.dtype, np.integer)
        or np.issubdtype(arr.dtype, np.bool_)
    ):
        raise WireError(f"{what} must be integer-typed, got {arr.dtype}")
    return arr.astype("<i8", copy=False)


def pack_ingest(timestamps, values, counts=None, key=None) -> bytes:
    """Encode one ingest batch as a packed binary payload.

    ``timestamps`` may be a scalar (every event at one time — the
    arrival-batched common case) or an array; a constant array is
    detected and sent in scalar form, saving 8 bytes per event.
    ``key`` routes the batch to one stream of a keyed fleet; it is
    appended as a length-prefixed UTF-8 trailer so the packed columns
    keep their fixed offsets.
    """
    vals = _packed_i64(values, "values")
    n = vals.size
    scalar_ts: int | None = None
    ts_arr: np.ndarray | None = None
    if np.ndim(timestamps) == 0:
        scalar_ts = int(timestamps)
    else:
        ts_arr = _packed_i64(timestamps, "timestamps")
        if ts_arr.shape != vals.shape:
            raise WireError(
                f"timestamps {ts_arr.shape} must match values {vals.shape}"
            )
        if n and bool((ts_arr == ts_arr[0]).all()):
            scalar_ts = int(ts_arr[0])
            ts_arr = None
    flags = 0
    parts = [b""]  # placeholder for the header
    parts.append(vals.tobytes())
    if scalar_ts is None:
        flags &= ~_INGEST_SCALAR_TS
        assert ts_arr is not None
        parts.append(ts_arr.tobytes())
    else:
        flags |= _INGEST_SCALAR_TS
    if counts is not None:
        cnts = _packed_i64(counts, "counts")
        if cnts.shape != vals.shape:
            raise WireError(
                f"counts {cnts.shape} must match values {vals.shape}"
            )
        flags |= _INGEST_HAS_COUNTS
        parts.append(cnts.tobytes())
    if key is not None:
        if not isinstance(key, str) or not key:
            raise WireError(f"key must be a non-empty string, got {key!r}")
        key_bytes = key.encode("utf-8")
        if len(key_bytes) > _MAX_KEY_BYTES:
            raise WireError(f"key exceeds {_MAX_KEY_BYTES} UTF-8 bytes")
        flags |= _INGEST_HAS_KEY
        parts.append(struct.pack("<H", len(key_bytes)))
        parts.append(key_bytes)
    parts[0] = _INGEST_HEADER.pack(
        flags, n, 0 if scalar_ts is None else scalar_ts
    )
    return b"".join(parts)


def unpack_ingest(
    payload: bytes | bytearray | memoryview,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, str | None]:
    """Decode an ingest payload to ``(timestamps, values, counts, key)``.

    The arrays are zero-copy views over the payload buffer
    (``np.frombuffer``), so they are read-only and alive only as long
    as the buffer is; the store copies what it keeps, never the batch
    itself.  A scalar timestamp comes back as a broadcast (stride-0)
    array of the right length.  ``key`` is ``None`` for an unkeyed
    batch.
    """
    view = memoryview(payload)
    if len(view) < _INGEST_HEADER_SIZE:
        raise FrameFormatError(
            f"ingest payload of {len(view)} bytes is shorter than its "
            f"{_INGEST_HEADER_SIZE}-byte header"
        )
    flags, n, scalar_ts = _INGEST_HEADER.unpack(view[:_INGEST_HEADER_SIZE])
    columns = 1 + (0 if flags & _INGEST_SCALAR_TS else 1)
    if flags & _INGEST_HAS_COUNTS:
        columns += 1
    expected = _INGEST_HEADER_SIZE + 8 * n * columns
    key: str | None = None
    if flags & _INGEST_HAS_KEY:
        if len(view) < expected + 2:
            raise FrameFormatError(
                f"ingest payload length {len(view)} is too short for its "
                f"key length prefix at offset {expected}"
            )
        (key_len,) = struct.unpack_from("<H", view, expected)
        if len(view) != expected + 2 + key_len:
            raise FrameFormatError(
                f"ingest payload length {len(view)} != "
                f"{expected + 2 + key_len} ({n} events, {columns} columns, "
                f"{key_len}-byte key)"
            )
        try:
            key = str(bytes(view[expected + 2 :]), "utf-8")
        except UnicodeDecodeError as exc:
            raise FrameFormatError(f"ingest key is not valid UTF-8: {exc}")
        if not key:
            raise FrameFormatError("ingest key must not be empty")
    elif len(view) != expected:
        raise FrameFormatError(
            f"ingest payload length {len(view)} != {expected} "
            f"({n} events, {columns} columns)"
        )
    offset = _INGEST_HEADER_SIZE

    def column() -> np.ndarray:
        nonlocal offset
        arr = np.frombuffer(view, dtype="<i8", count=n, offset=offset)
        offset += 8 * n
        return arr

    values = column()
    if flags & _INGEST_SCALAR_TS:
        timestamps = np.broadcast_to(np.int64(scalar_ts), (n,))
    else:
        timestamps = column()
    counts = column() if flags & _INGEST_HAS_COUNTS else None
    return timestamps, values, counts, key


# ----------------------------------------------------------------------
# Version negotiation
# ----------------------------------------------------------------------
def hello_response(request: Mapping | None) -> dict:
    """Answer a HELLO handshake: pick the newest shared version.

    The request carries ``{"versions": [...]}`` (an absent or empty
    list means "whatever you speak").
    """
    offered: Iterable = (
        request.get("versions", SUPPORTED_VERSIONS)
        if isinstance(request, Mapping)
        else SUPPORTED_VERSIONS
    )
    try:
        offered_set = {int(v) for v in offered}
    except (TypeError, ValueError) as exc:
        raise FrameFormatError(
            f"hello 'versions' must be integers: {exc}"
        ) from exc
    if not offered_set:
        offered_set = set(SUPPORTED_VERSIONS)
    shared = offered_set & set(SUPPORTED_VERSIONS)
    if not shared:
        raise ProtocolVersionError(
            f"no shared protocol version: peer offers "
            f"{sorted(offered_set)}, this side speaks "
            f"{list(SUPPORTED_VERSIONS)}"
        )
    return {"version": max(shared)}
