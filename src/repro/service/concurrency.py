"""Concurrency primitives behind the estimation service.

Two pieces, both deliberately small and self-contained:

* :class:`ReadWriteLock` — a writer-preferring readers–writer lock.
  Queries (merge-on-query over bucket spans) hold the read side so any
  number can run concurrently; mutations (ingest / compact / evict)
  hold the write side exclusively.  Because a writer drains every
  in-flight reader before touching the store and blocks new readers
  while it works, a query can never observe a half-applied ingest
  batch — the snapshot-isolation guarantee the service advertises.
  Writer preference keeps a steady query load from starving ingestion.

* :class:`SingleFlightCache` — an LRU cache with request coalescing.
  Each entry carries the bucket ranges its value was computed from, so
  a mutation invalidates exactly the entries whose ranges intersect
  the dirtied spans (see :func:`repro.service.service.dirty_intervals`)
  and nothing else.  Concurrent misses on one key are *coalesced*:
  the first caller (the leader) computes, everyone else waits on the
  leader's result instead of repeating the merge.  A mutation that
  lands while a leader is computing marks the flight *stale* — the
  result is still returned to the callers whose requests overlapped
  the mutation (any linearizable order may put their queries first)
  but it is never inserted into the cache, and the first caller
  arriving *after* the mutation replaces the stale flight with a
  fresh one that later callers coalesce onto as usual.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Hashable, Iterable, Iterator, Sequence, Tuple

__all__ = ["ReadWriteLock", "SingleFlightCache"]

#: (tag, b0, b1): a value depends on bucket range [b0, b1) of the store
#: identified by ``tag`` (None for single-store services, the relation
#: name for catalog services).
Range = Tuple[object, int, int]


class ReadWriteLock:
    """A writer-preferring readers–writer lock with context managers.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Arriving writers block *new* readers (preference), so
    ingestion cannot be starved by a continuous stream of queries.
    Not reentrant — neither side may be acquired while already held by
    the same thread.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the shared (reader) side for the duration of the block."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._active_readers -= 1
                if not self._active_readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the exclusive (writer) side for the duration of the block."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class _Flight:
    """One in-progress computation that concurrent misses share."""

    __slots__ = ("done", "value", "error", "stale")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None
        self.stale = False


class SingleFlightCache:
    """LRU cache with range-based invalidation and request coalescing.

    ``compute`` callbacks return ``(value, ranges)`` where ``ranges``
    is a sequence of ``(tag, b0, b1)`` bucket ranges the value depends
    on; :meth:`invalidate` drops every entry with a range intersecting
    the dirtied intervals of ``tag``.  Statistics (``hits``,
    ``misses``, ``coalesced``, ``invalidated``) are running totals.
    """

    def __init__(self, max_entries: int = 256):
        if int(max_entries) < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[object, tuple[Range, ...]]] = (
            OrderedDict()
        )
        self._inflight: dict[Hashable, _Flight] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.invalidated = 0

    def get(
        self,
        key: Hashable,
        compute: Callable[[], tuple[object, Sequence[Range]]],
    ) -> object:
        """The cached value for ``key``, computing (once) on a miss."""
        is_leader = False
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached[0]
            flight = self._inflight.get(key)
            if flight is None or flight.stale:
                # Fresh leader.  A stale in-progress flight is
                # *replaced*, not joined: its result predates a
                # mutation this caller must observe.  Earlier waiters
                # keep waiting on the old flight (their requests
                # overlapped the mutation, so its result is a valid
                # linearization for them); everyone from here on
                # coalesces onto the replacement, whose result is
                # cacheable again.  The old leader's cleanup checks
                # identity before touching ``_inflight``, so it cannot
                # evict the replacement.
                flight = _Flight()
                self._inflight[key] = flight
                is_leader = True
                self.misses += 1
            else:
                self.coalesced += 1
        if is_leader:
            return self._lead(key, flight, compute)
        flight.done.wait()
        if flight.error is not None:
            raise flight.error
        return flight.value

    def _lead(
        self,
        key: Hashable,
        flight: _Flight,
        compute: Callable[[], tuple[object, Sequence[Range]]],
    ) -> object:
        try:
            value, ranges = compute()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                if self._inflight.get(key) is flight:
                    del self._inflight[key]
            flight.done.set()
            raise
        flight.value = value
        with self._lock:
            if self._inflight.get(key) is flight:
                del self._inflight[key]
            if not flight.stale:
                self._entries[key] = (value, tuple(ranges))
                self._entries.move_to_end(key)
                while len(self._entries) > self._max_entries:
                    self._entries.popitem(last=False)
        flight.done.set()
        return value

    def invalidate(
        self, tag: object, intervals: Iterable[tuple[int, int]]
    ) -> int:
        """Drop entries of ``tag`` intersecting any ``[lo, hi)`` interval.

        Every in-flight computation is conservatively marked stale (a
        flight does not know its ranges until it finishes); returns the
        number of cached entries dropped.
        """
        spans = [(int(lo), int(hi)) for lo, hi in intervals]
        if not spans:
            return 0
        with self._lock:
            doomed = [
                key
                for key, (_, ranges) in self._entries.items()
                if any(
                    rtag == tag and lo < b1 and hi > b0
                    for rtag, b0, b1 in ranges
                    for lo, hi in spans
                )
            ]
            for key in doomed:
                del self._entries[key]
            self.invalidated += len(doomed)
            for flight in self._inflight.values():
                flight.stale = True
        return len(doomed)

    def clear(self) -> None:
        """Drop every cached entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()
            for flight in self._inflight.values():
                flight.stale = True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict:
        """Running totals: hits, misses, coalesced, invalidated, entries."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "invalidated": self.invalidated,
                "entries": len(self._entries),
            }
