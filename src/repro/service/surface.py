"""The transport-independent service surface: one op table, every server.

Four things serve estimates in this repo — the threaded line-JSON
server, the asyncio event-loop front end, the shard worker, and the
cluster scatter–gather facade behind either.  They all dispatch
through the table below, so an op (name, opcode, handler, error
wording, idempotency) exists exactly once; a transport contributes
only framing.

Entry points:

* :func:`handle_request` — one line-JSON request in, one response
  mapping out (never raises);
* :func:`handle_frame` — one binary frame in, one response frame out
  (never raises), including HELLO version negotiation;
* :func:`validate_service` — the structural check that an object
  satisfies the estimate / sketch / ingest / info surface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..engine.protocol import MergeUnsupportedError
from ..engine.registry import dump_sketch
from . import wire

__all__ = [
    "OpSpec",
    "OPS",
    "OPS_BY_CODE",
    "SERVICE_SURFACE",
    "HANDLED_ERRORS",
    "validate_service",
    "handle_request",
    "handle_request_mapping",
    "handle_frame",
]

#: The attributes a service object must answer for the dispatch table.
#: Structural, not nominal: SketchService and ClusterService both
#: qualify, and anything else that does is servable by construction.
SERVICE_SURFACE = (
    "estimate_window",
    "sketch_window",
    "ingest",
    "compact",
    "evict",
    "info",
    "snapshot",
    "restore",
    "stats",
    "spec",
    "bucket_width",
    "origin",
    "spans",
    "coverage",
    "memory_words",
)

#: Exception types a handler may raise that become ``ok: false``
#: responses instead of taking the connection (or the server) down.
HANDLED_ERRORS = (
    ValueError,  # misaligned/empty windows, bad batches (incl. subclasses)
    TypeError,
    LookupError,
    NotImplementedError,  # deletion counts on insertion-only kinds
    MergeUnsupportedError,
    ConnectionError,  # a cluster front end's shard became unreachable
    OverflowError,
)


def validate_service(service) -> None:
    """Reject objects that do not satisfy the serving surface."""
    missing = [attr for attr in SERVICE_SURFACE if not hasattr(service, attr)]
    if missing:
        raise TypeError(
            f"service {type(service).__name__} does not satisfy the "
            f"serving surface; missing {', '.join(missing)}"
        )


def _window(request: Mapping) -> tuple[int, int, str]:
    """Extract (t0, t1, align) from a request, validating presence."""
    if "from" not in request or "until" not in request:
        raise ValueError("window ops need 'from' and 'until' timestamps")
    align = request.get("align", "strict")
    return int(request["from"]), int(request["until"]), str(align)


def _keyed(request: Mapping) -> dict:
    """The ``key=`` kwarg a request asks for, or nothing.

    The key is forwarded *only when present*, so a keyed request
    against a key-unaware service raises a ``TypeError`` (a handled
    error: "unexpected keyword argument 'key'") instead of silently
    answering from the wrong stream, and unkeyed requests keep
    working against both service shapes.
    """
    key = request.get("key")
    if key is None:
        return {}
    if not isinstance(key, str) or not key:
        raise ValueError(f"'key' must be a non-empty string, got {key!r}")
    return {"key": key}


def _op_ping(service, request: Mapping) -> dict:
    return {"pong": True}


def _op_estimate(service, request: Mapping) -> dict:
    t0, t1, align = _window(request)
    result = service.estimate_window(t0, t1, align=align, **_keyed(request))
    return {
        "window": [result.t0, result.t1],
        "estimate": result.estimate,
    }


def _op_sketch(service, request: Mapping) -> dict:
    t0, t1, align = _window(request)
    sketch, lo, hi = service.sketch_window(t0, t1, align=align, **_keyed(request))
    return {"window": [lo, hi], "sketch": dump_sketch(sketch)}


def _op_ingest(service, request: Mapping) -> dict:
    timestamps = request.get("timestamps")
    values = request.get("values")
    batch_types = (list, np.ndarray)
    if not isinstance(timestamps, batch_types) or not isinstance(
        values, batch_types
    ):
        raise ValueError("ingest needs 'timestamps' and 'values' lists")
    counts = request.get("counts")
    if counts is not None and not isinstance(counts, batch_types):
        raise ValueError("'counts' must be a list when present")
    service.ingest(timestamps, values, counts=counts, **_keyed(request))
    return {"ingested": len(values)}


def _op_compact(service, request: Mapping) -> dict:
    before = request.get("before")
    return {"folded": service.compact(None if before is None else int(before))}


def _op_evict(service, request: Mapping) -> dict:
    if "before" not in request:
        raise ValueError("evict needs a 'before' bucket boundary")
    return {"evicted": service.evict(int(request["before"]))}


def _op_info(service, request: Mapping) -> dict:
    # One service call, not one per field: the service assembles a
    # consistent summary (and a cluster facade answers it with a
    # single scatter instead of one per property).
    return service.info()


def _op_stats(service, request: Mapping) -> dict:
    return {"cache": service.stats(**_keyed(request))}


def _op_snapshot(service, request: Mapping) -> dict:
    return {"snapshot": service.snapshot()}


def _op_restore(service, request: Mapping) -> dict:
    if "snapshot" not in request or not isinstance(request["snapshot"], Mapping):
        raise ValueError("restore needs a 'snapshot' mapping")
    service.restore(request["snapshot"])
    return {"restored": True}


def _op_shutdown(service, request: Mapping) -> dict:
    # The ack is written before the server stops (the transport
    # triggers the actual shutdown after responding), so the peer that
    # asked always learns the request was honoured.
    return {"stopping": True}


@dataclass(frozen=True)
class OpSpec:
    """One operation: its wire names, handler, and retry semantics.

    ``idempotent`` is the contract clients key retries on: repeating
    an idempotent op cannot change the outcome, while replaying a
    non-idempotent one (``ingest`` — signed, cumulative) corrupts
    state, so a client that cannot prove non-delivery must surface the
    ambiguity instead of resending.
    """

    name: str
    opcode: int
    handler: Callable[[object, Mapping], dict]
    idempotent: bool = True
    stops_server: bool = False


_SPECS = (
    OpSpec("ping", wire.OP_PING, _op_ping),
    OpSpec("estimate", wire.OP_ESTIMATE, _op_estimate),
    OpSpec("sketch", wire.OP_SKETCH, _op_sketch),
    OpSpec("ingest", wire.OP_INGEST, _op_ingest, idempotent=False),
    OpSpec("compact", wire.OP_COMPACT, _op_compact),
    OpSpec("evict", wire.OP_EVICT, _op_evict),
    OpSpec("info", wire.OP_INFO, _op_info),
    OpSpec("stats", wire.OP_STATS, _op_stats),
    OpSpec("snapshot", wire.OP_SNAPSHOT, _op_snapshot),
    # Restore writes *absolute* state, so unlike ingest a replay cannot
    # change the outcome — idempotent, and safe to resend on ambiguity.
    OpSpec("restore", wire.OP_RESTORE, _op_restore),
    OpSpec("shutdown", wire.OP_SHUTDOWN, _op_shutdown, stops_server=True),
)

OPS: dict[str, OpSpec] = {spec.name: spec for spec in _SPECS}
OPS_BY_CODE: dict[int, OpSpec] = {spec.opcode: spec for spec in _SPECS}


def _run_handler(service, spec: OpSpec, request: Mapping) -> dict:
    """One dispatch: handler success or a one-line error response."""
    try:
        return {"ok": True, "op": spec.name, **spec.handler(service, request)}
    except HANDLED_ERRORS as exc:
        return {"ok": False, "error": str(exc)}


def handle_request_mapping(service, request) -> dict:
    """Serve one already-decoded request mapping; never raises."""
    if not isinstance(request, Mapping) or "op" not in request:
        return {"ok": False, "error": "request must be a JSON object with an 'op'"}
    spec = OPS.get(str(request["op"]))
    if spec is None:
        return {
            "ok": False,
            "error": f"unknown op {request['op']!r}; supported: {sorted(OPS)}",
        }
    return _run_handler(service, spec, request)


def handle_request(service, line: str | bytes) -> dict:
    """Serve one line-JSON request; never raises (errors become responses).

    The single entry point behind every JSON transport and any
    in-process driver (tests call it directly), so wire behaviour and
    error wording have exactly one definition.  ``service`` is
    anything satisfying the estimate/sketch/ingest/info surface —
    a :class:`~repro.service.service.SketchService` or a
    :class:`~repro.cluster.service.ClusterService`.
    """
    try:
        request = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        # UnicodeDecodeError: a bytes line that is not UTF-8 at all
        # (e.g. binary frames leaking into a JSON conversation) is as
        # recoverable as malformed JSON.
        return {"ok": False, "error": f"invalid JSON: {exc}"}
    return handle_request_mapping(service, request)


def _error_frame(opcode: int, message: str) -> bytes:
    return wire.pack_frame(
        opcode,
        wire.encode_compact({"ok": False, "error": message}),
        flags=wire.FLAG_RESPONSE | wire.FLAG_ERROR,
    )


def handle_frame(
    service, version: int, opcode: int, flags: int, payload
) -> tuple[bytes, bool]:
    """Serve one binary frame; returns ``(response frame, stopping)``.

    Never raises: version skew, unknown opcodes, and malformed
    payloads all come back as error frames (the binary twin of the
    ``ok: false`` line), so one bad request costs the peer one
    response, not the connection.
    """
    if version not in wire.SUPPORTED_VERSIONS:
        return (
            _error_frame(
                opcode,
                f"unsupported protocol version {version}; this side "
                f"speaks {list(wire.SUPPORTED_VERSIONS)}",
            ),
            False,
        )
    if flags & wire.FLAG_RESPONSE:
        return _error_frame(opcode, "received a response frame as a request"), False
    if opcode == wire.OP_HELLO:
        try:
            request = wire.decode_compact(payload) if len(payload) else None
            response: dict = {"ok": True, "op": "hello", **wire.hello_response(request)}
        except wire.WireError as exc:
            return _error_frame(opcode, str(exc)), False
        return (
            wire.pack_frame(
                opcode, wire.encode_compact(response), flags=wire.FLAG_RESPONSE
            ),
            False,
        )
    spec = OPS_BY_CODE.get(opcode)
    if spec is None:
        supported = sorted(OPS_BY_CODE) + [wire.OP_HELLO]
        return (
            _error_frame(
                opcode, f"unknown opcode {opcode}; supported: {supported}"
            ),
            False,
        )
    try:
        if opcode == wire.OP_INGEST:
            timestamps, values, counts, key = wire.unpack_ingest(payload)
            request = {
                "op": spec.name,
                "timestamps": timestamps,
                "values": values,
            }
            if counts is not None:
                request["counts"] = counts
            if key is not None:
                request["key"] = key
        else:
            decoded = wire.decode_compact(payload) if len(payload) else {}
            if decoded is None:
                decoded = {}
            if not isinstance(decoded, Mapping):
                raise wire.FrameFormatError(
                    f"{spec.name} payload must be a mapping, got "
                    f"{type(decoded).__name__}"
                )
            request = {"op": spec.name, **decoded}
    except wire.WireError as exc:
        return _error_frame(opcode, str(exc)), False
    response = _run_handler(service, spec, request)
    ok = bool(response.get("ok"))
    response_flags = wire.FLAG_RESPONSE | (0 if ok else wire.FLAG_ERROR)
    try:
        body = wire.encode_compact(response)
    except wire.WireError as exc:  # pragma: no cover - defensive
        return _error_frame(opcode, f"unencodable response: {exc}"), False
    return (
        wire.pack_frame(opcode, body, flags=response_flags),
        ok and spec.stops_server,
    )
