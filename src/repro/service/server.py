"""Line-delimited JSON estimation server (the wire behind ``repro serve``).

Protocol: one JSON object per line in each direction, over TCP.  Every
request carries an ``op``; every response carries ``"ok": true`` plus
op-specific fields, or ``"ok": false`` with a one-line ``error`` (the
wire twin of the CLI's exit-2 user-error contract — malformed requests
never take the server down, and internal tracebacks never leak to the
client).

Supported operations::

    {"op": "ping"}
    {"op": "estimate", "from": 0, "until": 600, "align": "outer"}
    {"op": "sketch",   "from": 0, "until": 600}       # full merged sketch
    {"op": "ingest",   "timestamps": [...], "values": [...], "counts": [...]}
    {"op": "compact",  "before": 300}
    {"op": "evict",    "before": 300}
    {"op": "info"}
    {"op": "stats"}

The server is a ``ThreadingTCPServer``: one thread per connection, any
number of requests per connection, with all correctness delegated to
:class:`~repro.service.service.SketchService` (snapshot isolation,
merged-window caching, request coalescing).  Ingested state lives in
memory; snapshot the service (``{"op": "info"}`` reports coverage,
:meth:`SketchService.snapshot` from the owning process persists) if
durability is needed.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Callable, Mapping

from ..engine.protocol import MergeUnsupportedError
from ..engine.registry import dump_sketch
from .service import SketchService

__all__ = ["SketchServiceServer", "handle_request"]


def _window(request: Mapping) -> tuple[int, int, str]:
    """Extract (t0, t1, align) from a request, validating presence."""
    if "from" not in request or "until" not in request:
        raise ValueError("window ops need 'from' and 'until' timestamps")
    align = request.get("align", "strict")
    return int(request["from"]), int(request["until"]), str(align)


def _op_ping(service: SketchService, request: Mapping) -> dict:
    return {"pong": True}


def _op_estimate(service: SketchService, request: Mapping) -> dict:
    t0, t1, align = _window(request)
    result = service.estimate_window(t0, t1, align=align)
    return {
        "window": [result.t0, result.t1],
        "estimate": result.estimate,
    }


def _op_sketch(service: SketchService, request: Mapping) -> dict:
    t0, t1, align = _window(request)
    sketch, lo, hi = service.sketch_window(t0, t1, align=align)
    return {"window": [lo, hi], "sketch": dump_sketch(sketch)}


def _op_ingest(service: SketchService, request: Mapping) -> dict:
    timestamps = request.get("timestamps")
    values = request.get("values")
    if not isinstance(timestamps, list) or not isinstance(values, list):
        raise ValueError("ingest needs 'timestamps' and 'values' lists")
    counts = request.get("counts")
    if counts is not None and not isinstance(counts, list):
        raise ValueError("'counts' must be a list when present")
    service.ingest(timestamps, values, counts=counts)
    return {"ingested": len(values)}


def _op_compact(service: SketchService, request: Mapping) -> dict:
    before = request.get("before")
    return {"folded": service.compact(None if before is None else int(before))}


def _op_evict(service: SketchService, request: Mapping) -> dict:
    if "before" not in request:
        raise ValueError("evict needs a 'before' bucket boundary")
    return {"evicted": service.evict(int(request["before"]))}


def _op_info(service: SketchService, request: Mapping) -> dict:
    coverage = service.coverage
    return {
        "kind": service.spec.kind,
        "bucket_width": service.bucket_width,
        "origin": service.origin,
        "spans": [list(span) for span in service.spans],
        "coverage": None if coverage is None else list(coverage),
        "memory_words": service.memory_words,
    }


def _op_stats(service: SketchService, request: Mapping) -> dict:
    return {"cache": service.stats()}


_OPS: dict[str, Callable[[SketchService, Mapping], dict]] = {
    "ping": _op_ping,
    "estimate": _op_estimate,
    "sketch": _op_sketch,
    "ingest": _op_ingest,
    "compact": _op_compact,
    "evict": _op_evict,
    "info": _op_info,
    "stats": _op_stats,
}


def handle_request(service: SketchService, line: str | bytes) -> dict:
    """Serve one request line; never raises (errors become responses).

    The single entry point behind both the TCP handler and any
    in-process driver (tests call it directly), so wire behaviour and
    error wording have exactly one definition.
    """
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"invalid JSON: {exc}"}
    if not isinstance(request, dict) or "op" not in request:
        return {"ok": False, "error": "request must be a JSON object with an 'op'"}
    handler = _OPS.get(str(request["op"]))
    if handler is None:
        return {
            "ok": False,
            "error": f"unknown op {request['op']!r}; supported: {sorted(_OPS)}",
        }
    try:
        return {"ok": True, "op": request["op"], **handler(service, request)}
    except (
        ValueError,  # misaligned/empty windows, bad batches (incl. subclasses)
        TypeError,
        LookupError,
        NotImplementedError,  # deletion counts on insertion-only kinds
        MergeUnsupportedError,
        OverflowError,
    ) as exc:
        return {"ok": False, "error": str(exc)}


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: serve request lines until the peer hangs up."""

    def handle(self) -> None:  # pragma: no cover - exercised over sockets
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            response = handle_request(self.server.service, line)
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if self.server.count_request():
                self.server.shutdown()
                return


class SketchServiceServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server exposing one :class:`SketchService`.

    Parameters
    ----------
    service:
        The service to expose (all concurrency control lives there).
    address:
        ``(host, port)``; port 0 binds an ephemeral port, readable from
        :attr:`server_address` after construction.
    max_requests:
        If set, the server shuts itself down after serving this many
        requests — the hook smoke tests and the CI service job use to
        get a bounded run without process signalling.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: SketchService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_requests: int | None = None,
    ):
        if not isinstance(service, SketchService):
            raise TypeError(
                f"service must be a SketchService, got {type(service).__name__}"
            )
        self.service = service
        self.max_requests = None if max_requests is None else int(max_requests)
        self._served = 0
        self._served_lock = threading.Lock()
        super().__init__(tuple(address), _RequestHandler)

    def count_request(self) -> bool:
        """Record one served request; True when the budget is exhausted."""
        if self.max_requests is None:
            return False
        with self._served_lock:
            self._served += 1
            return self._served >= self.max_requests
