"""Line-delimited JSON estimation server (the wire behind ``repro serve``).

Protocol: one JSON object per line in each direction, over TCP.  Every
request carries an ``op``; every response carries ``"ok": true`` plus
op-specific fields, or ``"ok": false`` with a one-line ``error`` (the
wire twin of the CLI's exit-2 user-error contract — malformed requests
never take the server down, and internal tracebacks never leak to the
client).

Supported operations::

    {"op": "ping"}
    {"op": "estimate", "from": 0, "until": 600, "align": "outer"}
    {"op": "sketch",   "from": 0, "until": 600}       # full merged sketch
    {"op": "ingest",   "timestamps": [...], "values": [...], "counts": [...]}
    {"op": "compact",  "before": 300}
    {"op": "evict",    "before": 300}
    {"op": "info"}
    {"op": "stats"}
    {"op": "snapshot"}                                # whole-store checkpoint
    {"op": "shutdown"}                                # ack, then stop serving

The dispatch table is deliberately *service-agnostic*: every handler
touches only the estimate / sketch / ingest / info surface that
:class:`~repro.service.service.SketchService` defines, so the same
server class fronts a single-node service, a cluster shard worker
(``repro cluster worker`` — ``shutdown``/``snapshot`` give the worker
a clean lifecycle), and the cluster scatter–gather facade
(:class:`~repro.cluster.service.ClusterService`) without a line of
per-deployment wire code.

The server is a ``ThreadingTCPServer``: one thread per connection, any
number of requests per connection, with all correctness delegated to
the service (snapshot isolation, merged-window caching, request
coalescing).  Each connection carries a read timeout (default 300 s):
a dead client that holds its socket open without ever sending a
complete line has its handler thread reclaimed instead of pinned
forever.  Ingested state lives in memory; snapshot the service
(``{"op": "snapshot"}`` over the wire, or :meth:`SketchService.
snapshot` from the owning process) if durability is needed.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Callable, Mapping

from ..engine.protocol import MergeUnsupportedError
from ..engine.registry import dump_sketch

__all__ = ["SketchServiceServer", "handle_request", "DEFAULT_READ_TIMEOUT"]

#: Seconds a connection may sit idle mid-request before it is dropped.
DEFAULT_READ_TIMEOUT = 300.0

#: The attributes a service object must answer for the dispatch table.
#: Structural, not nominal: SketchService and ClusterService both
#: qualify, and anything else that does is servable by construction.
_SERVICE_SURFACE = (
    "estimate_window",
    "sketch_window",
    "ingest",
    "compact",
    "evict",
    "info",
    "snapshot",
    "stats",
    "spec",
    "bucket_width",
    "origin",
    "spans",
    "coverage",
    "memory_words",
)


def _window(request: Mapping) -> tuple[int, int, str]:
    """Extract (t0, t1, align) from a request, validating presence."""
    if "from" not in request or "until" not in request:
        raise ValueError("window ops need 'from' and 'until' timestamps")
    align = request.get("align", "strict")
    return int(request["from"]), int(request["until"]), str(align)


def _op_ping(service, request: Mapping) -> dict:
    return {"pong": True}


def _op_estimate(service, request: Mapping) -> dict:
    t0, t1, align = _window(request)
    result = service.estimate_window(t0, t1, align=align)
    return {
        "window": [result.t0, result.t1],
        "estimate": result.estimate,
    }


def _op_sketch(service, request: Mapping) -> dict:
    t0, t1, align = _window(request)
    sketch, lo, hi = service.sketch_window(t0, t1, align=align)
    return {"window": [lo, hi], "sketch": dump_sketch(sketch)}


def _op_ingest(service, request: Mapping) -> dict:
    timestamps = request.get("timestamps")
    values = request.get("values")
    if not isinstance(timestamps, list) or not isinstance(values, list):
        raise ValueError("ingest needs 'timestamps' and 'values' lists")
    counts = request.get("counts")
    if counts is not None and not isinstance(counts, list):
        raise ValueError("'counts' must be a list when present")
    service.ingest(timestamps, values, counts=counts)
    return {"ingested": len(values)}


def _op_compact(service, request: Mapping) -> dict:
    before = request.get("before")
    return {"folded": service.compact(None if before is None else int(before))}


def _op_evict(service, request: Mapping) -> dict:
    if "before" not in request:
        raise ValueError("evict needs a 'before' bucket boundary")
    return {"evicted": service.evict(int(request["before"]))}


def _op_info(service, request: Mapping) -> dict:
    # One service call, not one per field: the service assembles a
    # consistent summary (and a cluster facade answers it with a
    # single scatter instead of one per property).
    return service.info()


def _op_stats(service, request: Mapping) -> dict:
    return {"cache": service.stats()}


def _op_snapshot(service, request: Mapping) -> dict:
    return {"snapshot": service.snapshot()}


def _op_shutdown(service, request: Mapping) -> dict:
    # The ack is written before the server stops (the TCP handler
    # triggers the actual shutdown after responding), so the peer that
    # asked always learns the request was honoured.
    return {"stopping": True}


_OPS: dict[str, Callable[[object, Mapping], dict]] = {
    "ping": _op_ping,
    "estimate": _op_estimate,
    "sketch": _op_sketch,
    "ingest": _op_ingest,
    "compact": _op_compact,
    "evict": _op_evict,
    "info": _op_info,
    "stats": _op_stats,
    "snapshot": _op_snapshot,
    "shutdown": _op_shutdown,
}


def handle_request(service, line: str | bytes) -> dict:
    """Serve one request line; never raises (errors become responses).

    The single entry point behind both the TCP handler and any
    in-process driver (tests call it directly), so wire behaviour and
    error wording have exactly one definition.  ``service`` is
    anything satisfying the estimate/sketch/ingest/info surface —
    a :class:`~repro.service.service.SketchService` or a
    :class:`~repro.cluster.service.ClusterService`.
    """
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"invalid JSON: {exc}"}
    if not isinstance(request, dict) or "op" not in request:
        return {"ok": False, "error": "request must be a JSON object with an 'op'"}
    handler = _OPS.get(str(request["op"]))
    if handler is None:
        return {
            "ok": False,
            "error": f"unknown op {request['op']!r}; supported: {sorted(_OPS)}",
        }
    try:
        return {"ok": True, "op": request["op"], **handler(service, request)}
    except (
        ValueError,  # misaligned/empty windows, bad batches (incl. subclasses)
        TypeError,
        LookupError,
        NotImplementedError,  # deletion counts on insertion-only kinds
        MergeUnsupportedError,
        ConnectionError,  # a cluster front end's shard became unreachable
        OverflowError,
    ) as exc:
        return {"ok": False, "error": str(exc)}


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: serve request lines until the peer hangs up.

    The connection socket carries the server's ``read_timeout``: a
    peer that stops mid-line (dead client, half-open TCP session)
    trips the timeout and the handler thread exits instead of sitting
    in ``readline`` forever — so a stalled connection can never pin a
    thread past shutdown.
    """

    def setup(self) -> None:  # pragma: no cover - exercised over sockets
        if self.server.read_timeout is not None:
            self.request.settimeout(self.server.read_timeout)
        super().setup()

    def handle(self) -> None:  # pragma: no cover - exercised over sockets
        while True:
            try:
                raw = self.rfile.readline()
            except (socket.timeout, TimeoutError, OSError):
                return  # stalled or torn connection: reclaim the thread
            if not raw:
                return  # orderly EOF
            line = raw.strip()
            if not line:
                continue
            response = handle_request(self.server.service, line)
            try:
                self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
                self.wfile.flush()
            except OSError:
                return
            stopping = response.get("ok") and response.get("op") == "shutdown"
            if self.server.count_request() or stopping:
                # shutdown() only signals the serve_forever loop; it is
                # safe to call from a handler thread.
                self.server.shutdown()
                return


class SketchServiceServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server exposing one estimation service.

    Parameters
    ----------
    service:
        The service to expose (all concurrency control lives there).
        Anything satisfying the estimate/sketch/ingest/info surface:
        a :class:`~repro.service.service.SketchService`, or the
        cluster facade :class:`~repro.cluster.service.ClusterService`.
    address:
        ``(host, port)``; port 0 binds an ephemeral port, readable from
        :attr:`server_address` after construction.
    max_requests:
        If set, the server shuts itself down after serving this many
        requests — the hook smoke tests and the CI service job use to
        get a bounded run without process signalling.
    read_timeout:
        Seconds a connection may stall mid-request before it is
        dropped (None disables).  Keeps dead clients from pinning
        handler threads.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_requests: int | None = None,
        read_timeout: float | None = DEFAULT_READ_TIMEOUT,
    ):
        missing = [
            attr for attr in _SERVICE_SURFACE if not hasattr(service, attr)
        ]
        if missing:
            raise TypeError(
                f"service {type(service).__name__} does not satisfy the "
                f"serving surface; missing {', '.join(missing)}"
            )
        self.service = service
        self.max_requests = None if max_requests is None else int(max_requests)
        if read_timeout is not None and float(read_timeout) <= 0:
            raise ValueError(
                f"read_timeout must be positive or None, got {read_timeout}"
            )
        self.read_timeout = None if read_timeout is None else float(read_timeout)
        self._served = 0
        self._served_lock = threading.Lock()
        super().__init__(tuple(address), _RequestHandler)

    def count_request(self) -> bool:
        """Record one served request; True when the budget is exhausted."""
        if self.max_requests is None:
            return False
        with self._served_lock:
            self._served += 1
            return self._served >= self.max_requests
