"""Threaded estimation server: line-JSON and binary frames on one port.

Protocol (negotiated per connection by first-byte sniffing):

* a first byte of ``{`` (or anything but the binary magic) starts a
  **line-JSON** conversation — one JSON object per line in each
  direction, exactly as every prior release spoke;
* a first byte of ``0xAB`` (the frame magic, which can never begin
  UTF-8 JSON) starts a **binary** conversation of length-prefixed
  frames (:mod:`repro.service.wire`): packed ingest batches decoded
  zero-copy, compact control payloads, HELLO version negotiation.

Every request carries an op; every response carries ``"ok": true``
plus op-specific fields, or ``"ok": false`` with a one-line ``error``
(the wire twin of the CLI's exit-2 user-error contract — malformed
requests never take the server down, and internal tracebacks never
leak to the client).  Supported operations (JSON spelling)::

    {"op": "ping"}
    {"op": "estimate", "from": 0, "until": 600, "align": "outer"}
    {"op": "sketch",   "from": 0, "until": 600}       # full merged sketch
    {"op": "ingest",   "timestamps": [...], "values": [...], "counts": [...]}
    {"op": "compact",  "before": 300}
    {"op": "evict",    "before": 300}
    {"op": "info"}
    {"op": "stats"}
    {"op": "snapshot"}                                # whole-store checkpoint
    {"op": "shutdown"}                                # ack, then stop serving

Dispatch lives in :mod:`repro.service.surface` — one table shared
with the event-loop front end (:mod:`repro.service.aserver`), the
shard worker, and the cluster facade, so this module contributes only
transport: a ``ThreadingTCPServer``, one thread per connection, any
number of requests per connection, correctness delegated to the
service (snapshot isolation, merged-window caching, request
coalescing).  Each connection carries a read timeout (default 300 s):
a dead client that holds its socket open without ever sending a
complete request has its handler thread reclaimed instead of pinned
forever.  Ingested state lives in memory; snapshot the service
(``{"op": "snapshot"}`` over the wire, or :meth:`SketchService.
snapshot` from the owning process) if durability is needed.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading

from . import wire
from .surface import handle_frame, handle_request, validate_service

__all__ = [
    "SketchServiceServer",
    "handle_request",
    "DEFAULT_READ_TIMEOUT",
    "PROTOCOLS",
]

#: Seconds a connection may sit idle mid-request before it is dropped.
DEFAULT_READ_TIMEOUT = 300.0

#: Protocols a server may be restricted to (``auto`` sniffs per
#: connection and accepts both).
PROTOCOLS = ("auto", "json", "binary")


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: sniff the protocol, then serve until hangup.

    The connection socket carries the server's ``read_timeout``: a
    peer that stops mid-request (dead client, half-open TCP session)
    trips the timeout and the handler thread exits instead of sitting
    in a blocking read forever — so a stalled connection can never pin
    a thread past shutdown.
    """

    def setup(self) -> None:  # pragma: no cover - exercised over sockets
        if self.server.read_timeout is not None:
            self.request.settimeout(self.server.read_timeout)
        super().setup()

    def handle(self) -> None:  # pragma: no cover - exercised over sockets
        try:
            first = self.rfile.peek(1)[:1]
        except (socket.timeout, TimeoutError, OSError):
            return
        if not first:
            return  # EOF before a single byte
        binary = first == wire.MAGIC[:1]
        allowed = self.server.protocol
        if binary and allowed == "json":
            self._write(self._refusal_frame("line-JSON"))
            return
        if not binary and allowed == "binary":
            self._write((json.dumps({
                "ok": False,
                "error": "this port serves the binary protocol only",
            }) + "\n").encode("utf-8"))
            return
        if binary:
            self._handle_binary()
        else:
            self._handle_json()

    @staticmethod
    def _refusal_frame(served: str) -> bytes:
        return wire.pack_frame(
            wire.OP_HELLO,
            wire.encode_compact({
                "ok": False,
                "error": f"this port serves the {served} protocol only",
            }),
            flags=wire.FLAG_RESPONSE | wire.FLAG_ERROR,
        )

    def _write(self, data: bytes) -> bool:
        try:
            self.wfile.write(data)
            self.wfile.flush()
            return True
        except OSError:
            return False

    def _finish_one(self, stopping: bool) -> bool:
        """Book-keep one served request; True when serving must stop."""
        if self.server.count_request() or stopping:
            # shutdown() only signals the serve_forever loop; it is
            # safe to call from a handler thread.
            self.server.shutdown()
            return True
        return False

    def _handle_json(self) -> None:
        while True:
            try:
                raw = self.rfile.readline()
            except (socket.timeout, TimeoutError, OSError):
                return  # stalled or torn connection: reclaim the thread
            if not raw:
                return  # orderly EOF
            line = raw.strip()
            if not line:
                continue
            response = handle_request(self.server.service, line)
            if not self._write(
                (json.dumps(response) + "\n").encode("utf-8")
            ):
                return
            stopping = bool(
                response.get("ok") and response.get("op") == "shutdown"
            )
            if self._finish_one(stopping):
                return

    def _handle_binary(self) -> None:
        limit = self.server.max_frame_bytes
        while True:
            try:
                frame = wire.read_frame(self.rfile, limit)
            except (socket.timeout, TimeoutError, OSError):
                return
            except wire.WireError as exc:
                # The stream is unsynchronized past a framing error:
                # answer once, then drop the connection.
                self._write(self._error_frame(exc))
                return
            if frame is None:
                return  # orderly EOF at a frame boundary
            version, opcode, flags, payload = frame
            response, stopping = handle_frame(
                self.server.service, version, opcode, flags, payload
            )
            if not self._write(response):
                return
            if self._finish_one(stopping):
                return

    @staticmethod
    def _error_frame(exc: wire.WireError) -> bytes:
        return wire.pack_frame(
            wire.OP_HELLO,
            wire.encode_compact({"ok": False, "error": str(exc)}),
            flags=wire.FLAG_RESPONSE | wire.FLAG_ERROR,
        )


class SketchServiceServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server exposing one estimation service.

    Parameters
    ----------
    service:
        The service to expose (all concurrency control lives there).
        Anything satisfying the estimate/sketch/ingest/info surface:
        a :class:`~repro.service.service.SketchService`, or the
        cluster facade :class:`~repro.cluster.service.ClusterService`.
    address:
        ``(host, port)``; port 0 binds an ephemeral port, readable from
        :attr:`server_address` after construction.
    max_requests:
        If set, the server shuts itself down after serving this many
        requests — the hook smoke tests and the CI service job use to
        get a bounded run without process signalling.
    read_timeout:
        Seconds a connection may stall mid-request before it is
        dropped (None disables).  Keeps dead clients from pinning
        handler threads.
    protocol:
        ``"auto"`` (default) sniffs each connection's first byte and
        serves line-JSON and binary clients on the same port;
        ``"json"`` / ``"binary"`` refuse the other protocol with a
        one-response explanation.
    max_frame_bytes:
        Upper bound on a binary frame payload; oversized or corrupt
        length fields are refused before allocation
        (:class:`~repro.service.wire.FrameTooLargeError`).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_requests: int | None = None,
        read_timeout: float | None = DEFAULT_READ_TIMEOUT,
        protocol: str = "auto",
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
    ):
        validate_service(service)
        self.service = service
        self.max_requests = None if max_requests is None else int(max_requests)
        if read_timeout is not None and float(read_timeout) <= 0:
            raise ValueError(
                f"read_timeout must be positive or None, got {read_timeout}"
            )
        self.read_timeout = None if read_timeout is None else float(read_timeout)
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"protocol must be one of {PROTOCOLS}, got {protocol!r}"
            )
        self.protocol = protocol
        if int(max_frame_bytes) < wire.HEADER_SIZE:
            raise ValueError(
                f"max_frame_bytes must be at least {wire.HEADER_SIZE}, "
                f"got {max_frame_bytes}"
            )
        self.max_frame_bytes = int(max_frame_bytes)
        self._served = 0
        self._served_lock = threading.Lock()
        super().__init__(tuple(address), _RequestHandler)

    def count_request(self) -> bool:
        """Record one served request; True when the budget is exhausted."""
        if self.max_requests is None:
            return False
        with self._served_lock:
            self._served += 1
            return self._served >= self.max_requests
