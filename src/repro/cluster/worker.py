"""The shard worker: one estimation service in its own process.

A worker is deliberately boring — that is the point of the multi-layer
refactor.  It is nothing but an empty
:class:`~repro.store.windowed.WindowedSketchStore` built from a
cluster-wide :class:`~repro.store.spec.SketchSpec` template, fronted
by the same :class:`~repro.service.service.SketchService` and
:class:`~repro.service.server.SketchServiceServer` that power
single-node ``repro serve``.  The generalized dispatch table already
speaks every op the cluster needs (``ingest``, ``sketch``, ``info``,
``snapshot``, ``shutdown``), so the worker adds exactly one thing: a
machine-readable *ready line* on stdout announcing the ephemeral port
it bound, which the spawner (:class:`~repro.cluster.local.
LocalCluster`) parses.

Every worker of one cluster is built from the **same** spec (same
kind, same parameters, same seed) — the precondition for the
scatter–gather merge to be bit-identical to a monolithic build.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Mapping, TextIO

from ..service.keyed import KeyedSketchService
from ..service.server import DEFAULT_READ_TIMEOUT, SketchServiceServer
from ..service.service import SketchService
from ..store.keyed import KeyedSketchStore
from ..store.spec import SketchSpec
from ..store.windowed import WindowedSketchStore
from .errors import ClusterConfigError

__all__ = ["store_config", "build_store", "run_worker"]


def store_config(store: WindowedSketchStore | KeyedSketchStore) -> dict:
    """The cluster-wide store template of an existing store.

    Captures configuration only — spec, bucket geometry, retention —
    never data: a cluster shards *future* ingest by value-hash, and
    already-built sketches cannot be split back into values.  A keyed
    fleet's template carries ``keyed: True`` (plus its ``max_keys``
    bound), so every shard materialises a
    :class:`~repro.store.keyed.KeyedSketchStore` of its own.
    """
    config = {
        "spec": store.spec.to_dict(),
        "bucket_width": store.bucket_width,
        "origin": store.origin,
        "retention_buckets": store.retention_buckets,
        "retention_policy": store.retention_policy,
    }
    if isinstance(store, KeyedSketchStore):
        config["keyed"] = True
        config["max_keys"] = store.max_keys
    return config


def build_store(config: Mapping) -> WindowedSketchStore | KeyedSketchStore:
    """An empty store (or keyed fleet) from a :func:`store_config` template."""
    if not isinstance(config, Mapping) or "spec" not in config:
        raise ClusterConfigError(
            "worker config must be a mapping with a 'spec' entry"
        )
    try:
        if config.get("keyed"):
            return KeyedSketchStore(
                SketchSpec.from_dict(config["spec"]),
                bucket_width=int(config.get("bucket_width", 1)),
                origin=int(config.get("origin", 0)),
                retention_buckets=config.get("retention_buckets"),
                retention_policy=config.get("retention_policy", "compact"),
                max_keys=config.get("max_keys"),
            )
        return WindowedSketchStore(
            SketchSpec.from_dict(config["spec"]),
            bucket_width=int(config.get("bucket_width", 1)),
            origin=int(config.get("origin", 0)),
            retention_buckets=config.get("retention_buckets"),
            retention_policy=config.get("retention_policy", "compact"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterConfigError(f"invalid worker config: {exc}") from exc


def run_worker(
    config: Mapping,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_entries: int = 256,
    read_timeout: float | None = DEFAULT_READ_TIMEOUT,
    max_requests: int | None = None,
    max_frame_bytes: int | None = None,
    announce: TextIO | None = None,
) -> int:
    """Serve one shard until a ``shutdown`` op (or request budget) stops it.

    The server sniffs each connection, so a worker answers line-JSON
    and binary-frame clients alike; ``max_frame_bytes`` bounds a
    binary frame's payload (default 64 MiB).

    Prints exactly one JSON ready line to ``announce`` (default
    stdout) once the port is bound::

        {"ready": true, "host": "127.0.0.1", "port": 49152, "kind": "tugofwar"}

    Returns a process exit code (0 on a clean shutdown).
    """
    out = sys.stdout if announce is None else announce
    store = build_store(config)
    service = (
        KeyedSketchService(store, cache_entries=cache_entries)
        if isinstance(store, KeyedSketchStore)
        else SketchService(store, cache_entries=cache_entries)
    )
    server_kwargs = {}
    if max_frame_bytes is not None:
        server_kwargs["max_frame_bytes"] = int(max_frame_bytes)
    server = SketchServiceServer(
        service,
        address=(host, port),
        max_requests=max_requests,
        read_timeout=read_timeout,
        **server_kwargs,
    )
    bound_host, bound_port = server.server_address[:2]
    print(
        json.dumps(
            {
                "ready": True,
                "host": bound_host,
                "port": bound_port,
                "kind": store.spec.kind,
                "pid": os.getpid(),
            }
        ),
        file=out,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
    return 0
