"""The shard-side wire client: line-JSON or binary frames, one socket.

:class:`ShardClient` is the cluster's view of one worker: a persistent
TCP connection speaking either of the :mod:`repro.service` protocols,
with

* **thread safety** — the scatter–gather facade is itself served by a
  threaded front end, so each client serialises its socket behind a
  lock (requests to *different* shards still run concurrently);
* **two protocols** — ``protocol="json"`` speaks the line-delimited
  JSON the workers have always accepted; ``protocol="binary"`` speaks
  length-prefixed frames (:mod:`repro.service.wire`): packed ingest
  batches the worker decodes zero-copy, compact control payloads, and
  :meth:`ShardClient.ingest_batches` pipelining many batches per
  round trip;
* **at-most-once retries** — a connection that died between requests
  is re-dialled with jittered backoff and the request resent, but
  *only when non-delivery is provable*: an idempotent op is also
  resent after an ambiguous failure (repeating it cannot change the
  outcome), while an ambiguous failure of a non-idempotent op
  (``ingest`` — signed, cumulative, so a replay corrupts the sketch)
  surfaces as :class:`~repro.cluster.errors.ShardProtocolError`
  instead of being silently resent;
* **typed failures** — transport problems raise
  :class:`~repro.cluster.errors.ShardUnreachableError`, malformed
  answers and ambiguous deliveries raise
  :class:`~repro.cluster.errors.ShardProtocolError`, and a
  well-formed ``{"ok": false}`` response raises
  :class:`ShardRequestError` carrying the worker's one-line message.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..service import wire
from ..service.surface import OPS
from .errors import ShardProtocolError, ShardUnreachableError

__all__ = ["ShardClient", "ShardRequestError", "backoff_delay"]

#: Patchable sleep so tests can observe backoff without waiting it out.
_sleep = time.sleep


def backoff_delay(
    attempt: int, base: float = 0.05, cap: float = 1.0
) -> float:
    """Full-jitter exponential backoff delay for reconnect ``attempt``.

    Doubles the ceiling per attempt (``base * 2**attempt``, capped) and
    draws uniformly from the upper half of it, so a fleet of clients
    re-dialling a restarted worker spreads out instead of stampeding
    in lockstep.
    """
    ceiling = min(float(cap), float(base) * (2 ** max(int(attempt), 0)))
    return ceiling * (0.5 + 0.5 * random.random())


def _is_idempotent(op: str) -> bool:
    spec = OPS.get(op)
    # Unknown ops are refused server-side without touching state, so
    # resending one is harmless.
    return spec.idempotent if spec is not None else True


def _json_default(obj):
    """``json.dumps`` fallback so callers can pass numpy batches."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    raise TypeError(
        f"Object of type {type(obj).__name__} is not JSON serializable"
    )


class ShardRequestError(ValueError):
    """The worker processed the request and refused it (``ok: false``)."""


class ShardClient:
    """A persistent, thread-safe client for one shard worker.

    Parameters
    ----------
    host, port:
        The worker's listening address.
    timeout:
        Seconds to wait for connect and for each response.
    protocol:
        ``"json"`` (default, the legacy line protocol) or ``"binary"``
        (length-prefixed frames; required for pipelined ingest).
    max_frame_bytes:
        Bound on a single response frame in binary mode.
    """

    #: Reconnect attempts after a provably-undelivered request failed
    #: on a stale socket (each preceded by :func:`backoff_delay`).
    RECONNECT_ATTEMPTS = 2

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        protocol: str = "json",
        max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES,
    ):
        if protocol not in ("json", "binary"):
            raise ValueError(
                f"protocol must be 'json' or 'binary', got {protocol!r}"
            )
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self.protocol = protocol
        self.max_frame_bytes = int(max_frame_bytes)
        #: Optional fault-injection hook (see :mod:`repro.cluster.faults`):
        #: called with the op name before each :meth:`request` touches
        #: the socket.  It may sleep (a deterministic stall) or raise
        #: (a deterministic drop) — both exercise the front end's
        #: hedging and recovery paths without signals or real crashes.
        self.fault_hook = None
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._rfile = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            self._sock = None
            raise ShardUnreachableError(
                f"shard {self.address} unreachable: {exc}"
            ) from exc
        self._rfile = self._sock.makefile("rb")

    def _teardown(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._sock = None

    def close(self) -> None:
        """Drop the connection (the next request would re-dial)."""
        with self._lock:
            self._teardown()

    def __enter__(self) -> "ShardClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _encode(self, payload: Mapping) -> tuple[bytes, int | None]:
        """Encode ``payload``; returns ``(wire bytes, expected opcode)``.

        The opcode is ``None`` in JSON mode (the line protocol has no
        opcode to pair responses on) and the request's opcode in binary
        mode, where :meth:`_read_response` uses it to reject mispaired
        responses.
        """
        if self.protocol == "json":
            return (
                json.dumps(dict(payload), default=_json_default) + "\n"
            ).encode("utf-8"), None
        op = str(payload.get("op", ""))
        opcode = wire.OPCODES_BY_NAME.get(op)
        if opcode is None:
            raise ShardProtocolError(
                f"op {op!r} has no binary opcode; known: "
                f"{sorted(wire.OPCODES_BY_NAME)}"
            )
        if opcode == wire.OP_INGEST:
            body = wire.pack_ingest(
                payload["timestamps"],
                payload["values"],
                counts=payload.get("counts"),
                key=payload.get("key"),
            )
        else:
            body = wire.encode_compact(
                {k: v for k, v in payload.items() if k != "op"}
            )
        return wire.pack_frame(opcode, body), opcode

    def _read_response(self, expected_opcode: int | None = None) -> dict:
        """Read and decode one response (lock held); raises on refusal.

        In binary mode the response must echo ``expected_opcode``: a
        mismatch means the stream is mispaired (e.g. a stale ack from
        an earlier conversation) and raises
        :class:`~repro.cluster.errors.ShardProtocolError`.  The one
        exception is a server-initiated :data:`~repro.service.wire.OP_HELLO`
        error frame, the stream-level channel for failures (truncated
        header, bad magic) that have no request opcode to echo.
        """
        assert self._rfile is not None
        if self.protocol == "json":
            raw = self._rfile.readline()
            if not raw:
                raise EOFError("connection closed before a response line")
            try:
                response = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ShardProtocolError(
                    f"shard {self.address} sent invalid JSON: {raw[:80]!r}"
                ) from exc
        else:
            try:
                frame = wire.read_frame(self._rfile, self.max_frame_bytes)
            except wire.WireError as exc:
                raise ShardProtocolError(
                    f"shard {self.address} sent a malformed frame: {exc}"
                ) from exc
            if frame is None:
                raise EOFError("connection closed before a response frame")
            version, opcode, flags, payload = frame
            if not flags & wire.FLAG_RESPONSE:
                raise ShardProtocolError(
                    f"shard {self.address} sent a non-response frame "
                    f"(opcode {opcode}, flags 0x{flags:x})"
                )
            if (
                expected_opcode is not None
                and opcode != expected_opcode
                and not (opcode == wire.OP_HELLO and flags & wire.FLAG_ERROR)
            ):
                raise ShardProtocolError(
                    f"shard {self.address} answered opcode "
                    f"{expected_opcode} "
                    f"({wire.OPCODE_NAMES.get(expected_opcode, '?')}) "
                    f"with a response for opcode {opcode} "
                    f"({wire.OPCODE_NAMES.get(opcode, '?')}); the "
                    f"stream is mispaired"
                )
            try:
                response = wire.decode_compact(payload)
            except wire.WireError as exc:
                raise ShardProtocolError(
                    f"shard {self.address} sent an undecodable response "
                    f"payload: {exc}"
                ) from exc
        if not isinstance(response, dict) or "ok" not in response:
            raise ShardProtocolError(
                f"shard {self.address} sent a non-protocol response: "
                f"{str(response)[:80]!r}"
            )
        if not response["ok"]:
            raise ShardRequestError(
                f"shard {self.address}: "
                f"{response.get('error', 'request refused')}"
            )
        return response

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _send_counted(self, data: bytes) -> int:
        """Send ``data``, returning bytes that made it out on failure.

        The count is what retry classification keys on: 0 bytes sent
        means the worker cannot have seen the request, so resending is
        provably safe for any op.
        """
        assert self._sock is not None
        sent = 0
        view = memoryview(data)
        while sent < len(view):
            try:
                sent += self._sock.send(view[sent:])
            except OSError:
                raise _SendFailed(sent)
        return sent

    def request(self, payload: Mapping) -> dict:
        """Send one op; return the decoded ``ok: true`` response.

        Retry policy (at-most-once for non-idempotent ops):

        * failure on a **fresh** connection is final —
          :class:`~repro.cluster.errors.ShardUnreachableError`;
        * failure on a **stale** connection with zero bytes written is
          provably undelivered: re-dial (jittered backoff) and resend,
          whatever the op;
        * failure on a stale connection *after* bytes were written is
          ambiguous — the worker may or may not have applied the op.
          Idempotent ops resend once (a repeat cannot change the
          outcome); ``ingest`` raises
          :class:`~repro.cluster.errors.ShardProtocolError` instead,
          because replaying a signed cumulative batch corrupts state.
        """
        op = str(payload.get("op", ""))
        hook = self.fault_hook
        if hook is not None:
            hook(op)
        data, expected = self._encode(payload)
        with self._lock:
            fresh = self._sock is None
            if fresh:
                self._connect()
            try:
                self._send_counted(data)
                return self._read_response(expected)
            except _SendFailed as exc:
                self._teardown()
                if fresh:
                    raise ShardUnreachableError(
                        f"shard {self.address} died mid-request: "
                        f"send failed after {exc.sent} bytes"
                    ) from exc
                if exc.sent and not _is_idempotent(op):
                    raise ShardProtocolError(
                        f"shard {self.address}: connection died after "
                        f"{exc.sent} bytes of a non-idempotent "
                        f"{op!r} request; delivery is ambiguous and it "
                        f"will not be resent"
                    ) from exc
                return self._resend(data, expected, op)
            except (OSError, EOFError) as exc:
                # The request was fully written but no response came
                # back: delivery is ambiguous.
                self._teardown()
                if fresh:
                    raise ShardUnreachableError(
                        f"shard {self.address} died mid-request: {exc}"
                    ) from exc
                if not _is_idempotent(op):
                    raise ShardProtocolError(
                        f"shard {self.address}: connection died awaiting "
                        f"the response to a non-idempotent {op!r} "
                        f"request; delivery is ambiguous and it will "
                        f"not be resent"
                    ) from exc
                return self._resend(data, expected, op)
            except ShardProtocolError:
                # A malformed or mispaired response leaves the stream
                # position unknown; never reuse the connection.  (A
                # ShardRequestError refusal, by contrast, was a whole
                # well-formed frame — the socket stays usable.)
                self._teardown()
                raise

    def _resend(
        self, data: bytes, expected_opcode: int | None, op: str
    ) -> dict:
        """Re-dial (with backoff) and resend once; lock held.

        Entered only when resending ``data`` is safe (non-delivery is
        provable, or ``op`` is idempotent).  The same classification
        governs each retry: a retry of a non-idempotent op that itself
        fails after bytes went out is ambiguous again and stops the
        loop instead of resending a second copy.
        """
        last: Exception | None = None
        for attempt in range(self.RECONNECT_ATTEMPTS):
            _sleep(backoff_delay(attempt))
            ambiguous = False
            try:
                self._connect()
                self._send_counted(data)
                return self._read_response(expected_opcode)
            except ShardUnreachableError as exc:
                last = exc
            except _SendFailed as exc:
                self._teardown()
                ambiguous = exc.sent > 0
                last = exc
            except (OSError, EOFError) as exc:
                self._teardown()
                ambiguous = True
                last = exc
            except ShardProtocolError:
                self._teardown()
                raise
            if ambiguous and not _is_idempotent(op):
                raise ShardProtocolError(
                    f"shard {self.address}: connection died after a "
                    f"retried non-idempotent {op!r} request was "
                    f"(partially) sent; delivery is ambiguous and it "
                    f"will not be resent"
                ) from last
        raise ShardUnreachableError(
            f"shard {self.address} died mid-request: {last}"
        ) from last

    # ------------------------------------------------------------------
    # Pipelined ingest (binary mode)
    # ------------------------------------------------------------------
    def ingest_batches(
        self,
        batches: Iterable[tuple],
        window: int = 8,
        key: str | None = None,
    ) -> int:
        """Ingest many ``(timestamps, values[, counts])`` batches.

        ``key`` routes every batch of the call into that stream of a
        keyed fleet (the per-batch payloads gain the wire key trailer).

        In binary mode the batches are **pipelined**: up to ``window``
        request frames are in flight before the first response is
        read, so the worker's decode of batch *k+1* overlaps the wire
        transfer of later batches and per-batch round-trip latency is
        paid once, not per batch.  JSON mode degrades to one request
        per round trip.

        A stale connection that fails before any byte of the first
        frame goes out is provably undelivered, so it re-dials with
        backoff like :meth:`request` does.  Any failure after bytes
        were written is ambiguous for every in-flight batch and
        surfaces as
        :class:`~repro.cluster.errors.ShardProtocolError` — the caller
        must reconcile (e.g. re-check shard stats), never blind-resend.
        Returns the total number of values the worker acknowledged.
        """
        if int(window) < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        total = 0
        if self.protocol == "json":
            for batch in batches:
                payload = self._batch_payload(batch, key=key)
                total += int(self.request(payload).get("ingested", 0))
            return total
        frames = (
            self._encode(self._batch_payload(b, key=key))[0] for b in batches
        )
        with self._lock:
            fresh = self._sock is None
            if fresh:
                self._connect()
            in_flight = 0
            wrote_any = False
            try:
                for frame in frames:
                    try:
                        self._send_counted(frame)
                    except _SendFailed as exc:
                        if wrote_any or fresh or exc.sent:
                            raise
                        # Stale socket, zero bytes out: the worker
                        # cannot have seen anything, so reconnect and
                        # restart the pipeline on the fresh socket.
                        self._teardown()
                        self._redial_and_send(frame)
                        fresh = True
                    wrote_any = True
                    in_flight += 1
                    if in_flight >= int(window):
                        total += int(
                            self._read_response(wire.OP_INGEST).get(
                                "ingested", 0
                            )
                        )
                        in_flight -= 1
                while in_flight:
                    total += int(
                        self._read_response(wire.OP_INGEST).get(
                            "ingested", 0
                        )
                    )
                    in_flight -= 1
            except ShardUnreachableError:
                # _redial_and_send exhausted its attempts with nothing
                # delivered; the classification stands.  (Caught first:
                # it subclasses ConnectionError/OSError.)
                self._teardown()
                raise
            except (_SendFailed, OSError, EOFError) as exc:
                self._teardown()
                if fresh and not wrote_any:
                    raise ShardUnreachableError(
                        f"shard {self.address} died mid-request: {exc}"
                    ) from exc
                raise ShardProtocolError(
                    f"shard {self.address}: connection died with "
                    f"{in_flight} pipelined ingest batch(es) in flight; "
                    f"delivery is ambiguous and they will not be resent"
                ) from exc
            except BaseException:
                # Any other failure — a worker refusal
                # (ShardRequestError), an encode error, a malformed or
                # mispaired response — leaves unread pipelined acks on
                # the socket, so a reused connection would pair the
                # next request with a stale ingest ack.  Never reuse
                # the stream.
                self._teardown()
                raise
        return total

    def _redial_and_send(self, data: bytes) -> None:
        """Re-dial with backoff and send provably-undelivered bytes.

        Lock held.  Serves the pipelined ingest path when zero bytes
        of the first frame reached a stale socket.  A retry attempt
        that itself gets bytes of this non-idempotent frame onto the
        wire and then dies is ambiguous and raises
        :class:`~repro.cluster.errors.ShardProtocolError` instead of
        retrying again.
        """
        last: Exception | None = None
        for attempt in range(self.RECONNECT_ATTEMPTS):
            _sleep(backoff_delay(attempt))
            try:
                self._connect()
                self._send_counted(data)
                return
            except ShardUnreachableError as exc:
                last = exc
            except _SendFailed as exc:
                self._teardown()
                if exc.sent:
                    raise ShardProtocolError(
                        f"shard {self.address}: connection died after "
                        f"{exc.sent} bytes of a retried ingest frame; "
                        f"delivery is ambiguous and it will not be "
                        f"resent"
                    ) from exc
                last = exc
        raise ShardUnreachableError(
            f"shard {self.address} died mid-request: {last}"
        ) from last

    @staticmethod
    def _batch_payload(batch: Sequence, key: str | None = None) -> dict:
        if len(batch) == 2:
            timestamps, values = batch
            counts = None
        elif len(batch) == 3:
            timestamps, values, counts = batch
        else:
            raise ValueError(
                "each batch must be (timestamps, values) or "
                "(timestamps, values, counts)"
            )
        payload = {"op": "ingest", "timestamps": timestamps, "values": values}
        if counts is not None:
            payload["counts"] = counts
        if key is not None:
            payload["key"] = key
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "connected" if self._sock is not None else "idle"
        return f"ShardClient({self.address}, {self.protocol}, {state})"


class _SendFailed(Exception):
    """Internal: a socket send failed after ``sent`` bytes went out."""

    def __init__(self, sent: int):
        super().__init__(f"send failed after {sent} bytes")
        self.sent = sent
