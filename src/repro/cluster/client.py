"""The shard-side wire client: one line-delimited JSON conversation.

:class:`ShardClient` is the cluster's view of one worker: a persistent
TCP connection speaking the :mod:`repro.service.server` protocol, with

* **thread safety** — the scatter–gather facade is itself served by a
  threaded front end, so each client serialises its socket behind a
  lock (requests to *different* shards still run concurrently);
* **lazy connect + one reconnect** — the first request dials the
  worker; a connection that died between requests (worker restart,
  idle timeout) is re-dialled once before the failure surfaces;
* **typed failures** — transport problems raise
  :class:`~repro.cluster.errors.ShardUnreachableError`, malformed
  answers raise :class:`~repro.cluster.errors.ShardProtocolError`,
  and a well-formed ``{"ok": false}`` response raises
  :class:`ShardRequestError` carrying the worker's one-line message.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Mapping

from .errors import ShardProtocolError, ShardUnreachableError

__all__ = ["ShardClient", "ShardRequestError"]


class ShardRequestError(ValueError):
    """The worker processed the request and refused it (``ok: false``)."""


class ShardClient:
    """A persistent, thread-safe client for one shard worker.

    Parameters
    ----------
    host, port:
        The worker's listening address.
    timeout:
        Seconds to wait for connect and for each response line.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._rfile = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            self._sock = None
            raise ShardUnreachableError(
                f"shard {self.address} unreachable: {exc}"
            ) from exc
        self._rfile = self._sock.makefile("rb")

    def _teardown(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._sock = None

    def close(self) -> None:
        """Drop the connection (the next request would re-dial)."""
        with self._lock:
            self._teardown()

    def __enter__(self) -> "ShardClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def request(self, payload: Mapping) -> dict:
        """Send one op; return the decoded ``ok: true`` response.

        Retries exactly once on a dead connection (the worker may have
        dropped an idle socket between requests); a failure on a fresh
        connection is final and raises
        :class:`~repro.cluster.errors.ShardUnreachableError`.
        """
        line = (json.dumps(dict(payload)) + "\n").encode("utf-8")
        with self._lock:
            fresh = self._sock is None
            if fresh:
                self._connect()
            try:
                raw = self._exchange(line)
            except (OSError, EOFError) as exc:
                self._teardown()
                if fresh:
                    raise ShardUnreachableError(
                        f"shard {self.address} died mid-request: {exc}"
                    ) from exc
                self._connect()  # one reconnect for a stale socket
                try:
                    raw = self._exchange(line)
                except (OSError, EOFError) as exc2:
                    self._teardown()
                    raise ShardUnreachableError(
                        f"shard {self.address} died mid-request: {exc2}"
                    ) from exc2
        try:
            response = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ShardProtocolError(
                f"shard {self.address} sent invalid JSON: {raw[:80]!r}"
            ) from exc
        if not isinstance(response, dict) or "ok" not in response:
            raise ShardProtocolError(
                f"shard {self.address} sent a non-protocol response: "
                f"{raw[:80]!r}"
            )
        if not response["ok"]:
            raise ShardRequestError(
                f"shard {self.address}: {response.get('error', 'request refused')}"
            )
        return response

    def _exchange(self, line: bytes) -> bytes:
        """Write one request line, read one response line (lock held)."""
        assert self._sock is not None and self._rfile is not None
        self._sock.sendall(line)
        raw = self._rfile.readline()
        if not raw:
            raise EOFError("connection closed before a response line")
        return raw

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "connected" if self._sock is not None else "idle"
        return f"ShardClient({self.address}, {state})"
