"""Value-partitioned build and gather-merge: the cluster's algebra.

The mathematical heart of the scale-out layer, kept free of sockets so
it can be property-tested exhaustively: a linear sketch of a stream is
the elementwise sum of same-seed sketches of any *value partition* of
that stream.  :func:`scatter_build` builds the per-shard sketches a
cluster's workers would hold; :func:`gather_merge` recombines them —
bit-identical to the monolithic build for every mergeable kind, and a
typed :class:`~repro.cluster.errors.ShardMergeUnsupportedError` for
the sampler kinds whose state is not a function of the multiset.

:class:`~repro.cluster.service.ClusterService` is exactly this module
with the per-shard builds living in worker processes behind the JSON
wire.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..engine.partition import HashPartitioner, Partitioner
from ..engine.protocol import MergeUnsupportedError, Sketch
from ..engine.sharded import merge_sketches
from ..store.spec import SketchSpec
from .errors import ShardMergeUnsupportedError

__all__ = ["scatter_build", "gather_merge", "partitioned_build"]


def _require_mergeable(spec: SketchSpec) -> None:
    if not spec.is_mergeable:
        raise ShardMergeUnsupportedError(
            f"sketch kind {spec.kind!r} cannot be served by scatter–gather: "
            "its state is not a function of the union multiset, so "
            "per-shard sketches do not combine into the monolithic sketch"
        )


def scatter_build(
    spec: SketchSpec,
    values: np.ndarray | Iterable[int],
    partitioner: Partitioner,
    counts: np.ndarray | Iterable[int] | None = None,
) -> List[Sketch]:
    """One sketch per shard over the value partition of ``(values, counts)``.

    Every shard sketch is built from the same :class:`~repro.store.
    spec.SketchSpec` (hence the same seed — the merge precondition).
    With ``counts`` given, entry ``i`` applies ``counts[i]`` signed
    occurrences of ``values[i]``; because a :class:`~repro.engine.
    partition.HashPartitioner` routes by value, a deletion always
    lands on the shard holding the inserts it retracts.
    """
    _require_mergeable(spec)
    vals = np.asarray(values, dtype=np.int64)
    cnts = None if counts is None else np.asarray(counts, dtype=np.int64)
    sketches: List[Sketch] = []
    for idx in partitioner.split(vals):
        sketch = spec.build()
        part = vals[idx]
        if cnts is None:
            sketch.update_from_stream(part)
        else:
            sketch.update_from_frequencies(part, cnts[idx])
        sketches.append(sketch)
    return sketches


def gather_merge(sketches: Sequence[Sketch]) -> Sketch:
    """Balanced-tree merge of per-shard sketches into the global answer.

    The scatter–gather counterpart of :func:`~repro.engine.sharded.
    merge_sketches`, with the cluster's typed error: a kind that
    cannot merge surfaces as
    :class:`~repro.cluster.errors.ShardMergeUnsupportedError`.
    """
    try:
        return merge_sketches(sketches)
    except ShardMergeUnsupportedError:
        raise
    except MergeUnsupportedError as exc:
        raise ShardMergeUnsupportedError(str(exc)) from exc


def partitioned_build(
    spec: SketchSpec,
    values: np.ndarray | Iterable[int],
    num_shards: int,
    seed: int = 0,
    counts: np.ndarray | Iterable[int] | None = None,
) -> Sketch:
    """Value-hash partition → per-shard build → gather-merge, in process.

    The whole cluster pipeline without the wire: bit-identical to
    ``spec.build()`` loaded with the full stream for every mergeable
    kind (the property-based tests sweep shard counts and signed
    streams), and :class:`~repro.cluster.errors.
    ShardMergeUnsupportedError` for sampler kinds — even at one shard,
    because the cluster contract is the value-partition algebra, not
    the shard count.
    """
    partitioner = HashPartitioner(num_shards, seed=seed)
    return gather_merge(scatter_build(spec, values, partitioner, counts=counts))
