"""Deterministic fault injection for cluster tests and chaos runs.

Two complementary levels, both driven by the test (or the ``repro
cluster chaos`` smoke command), never by chance:

* **Process faults** — :class:`FaultInjector` sends real signals to a
  :class:`~repro.cluster.local.LocalCluster`'s workers: ``kill``
  (SIGKILL — the worker vanishes mid-conversation, connections reset)
  and ``stall`` (SIGSTOP — the worker stays connectable but answers
  nothing, the classic straggler).  These exercise the genuine kernel
  behaviours the front end's failure classification keys on.
* **Client-hook faults** — :class:`DropRequests` and
  :class:`StallRequests` install themselves as a
  :class:`~repro.cluster.client.ShardClient`'s ``fault_hook`` and
  fire on the next N matching ops: a drop raises
  :class:`~repro.cluster.errors.ShardUnreachableError` before the
  socket is touched, a stall sleeps in the caller's thread (outside
  the client's connection lock, so parallel stalled requests do not
  serialise).  Signal-free, so they are exact to the request and run
  anywhere — including platforms and sandboxes where SIGSTOP is off
  the table.

Everything is idempotent to clean up: the injector is a context
manager that resumes every stalled worker on exit, and the hooks
uninstall themselves when exhausted or on :meth:`~DropRequests.remove`.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Iterable

from .errors import ShardUnreachableError

__all__ = ["FaultInjector", "DropRequests", "StallRequests"]


class FaultInjector:
    """Signal-level faults against a :class:`LocalCluster`'s workers."""

    def __init__(self, cluster):
        self._cluster = cluster
        self._stalled: list[int] = []

    def kill(self, shard: int, replica: int = 0) -> int:
        """SIGKILL one worker outright; returns the dead pid.

        The kernel resets its connections, so the front end's next
        request classifies the replica unreachable and recovery kicks
        in (respawn + restore from a healthy peer).
        """
        process = self._cluster.worker(shard, replica).process
        process.kill()
        process.wait()
        return process.pid

    def stall(self, shard: int, replica: int = 0) -> int:
        """SIGSTOP one worker: connectable, silent — a straggler.

        Unlike a kill, nothing fails fast: connects succeed and reads
        hang until the client's timeout, which is exactly the shape
        hedged reads exist to absorb.  Returns the stalled pid.
        """
        pid = self._cluster.worker(shard, replica).process.pid
        os.kill(pid, signal.SIGSTOP)
        self._stalled.append(pid)
        return pid

    def resume(self, shard: int, replica: int = 0) -> None:
        """SIGCONT one previously stalled worker."""
        pid = self._cluster.worker(shard, replica).process.pid
        self._signal_cont(pid)
        self._stalled = [p for p in self._stalled if p != pid]

    def resume_all(self) -> None:
        """SIGCONT every worker this injector stalled."""
        for pid in self._stalled:
            self._signal_cont(pid)
        self._stalled = []

    @staticmethod
    def _signal_cont(pid: int) -> None:
        try:
            os.kill(pid, signal.SIGCONT)
        except ProcessLookupError:
            pass  # already gone (killed or respawned meanwhile)

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.resume_all()


class _ClientHook:
    """Base for self-uninstalling ``fault_hook`` installations."""

    def __init__(self, client, times: int = 1, ops: Iterable[str] | None = None):
        self._client = client
        self._remaining = int(times)
        self._ops = None if ops is None else frozenset(ops)
        self._previous = client.fault_hook
        client.fault_hook = self

    def __call__(self, op: str) -> None:
        if self._previous is not None:
            self._previous(op)
        if self._remaining <= 0 or (self._ops is not None and op not in self._ops):
            return
        self._remaining -= 1
        if self._remaining <= 0:
            self.remove()
        self._fire(op)

    def _fire(self, op: str) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def remove(self) -> None:
        """Uninstall this hook (restores whatever it wrapped)."""
        if self._client.fault_hook is self:
            self._client.fault_hook = self._previous

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.remove()


class DropRequests(_ClientHook):
    """Fail the next ``times`` matching ops as unreachable.

    The error is raised *before* the socket is touched, so the worker
    provably never saw the request — the deterministic twin of a
    refused fresh connection, and exactly what exercises the front
    end's dead-replica failover without killing anything.
    """

    def _fire(self, op: str) -> None:
        raise ShardUnreachableError(
            f"injected drop of {op!r} to {self._client.address}"
        )


class StallRequests(_ClientHook):
    """Delay the next ``times`` matching ops by ``seconds``.

    The sleep happens in the requesting thread before the client's
    connection lock, so concurrent stalled requests stall in parallel
    — a deterministic straggler for hedging tests and benchmarks.
    """

    def __init__(
        self,
        client,
        seconds: float,
        times: int = 1,
        ops: Iterable[str] | None = None,
    ):
        self.seconds = float(seconds)
        super().__init__(client, times=times, ops=ops)

    def _fire(self, op: str) -> None:
        time.sleep(self.seconds)
