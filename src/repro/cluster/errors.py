"""Typed failures of the scale-out cluster layer.

Every error a cluster operation can surface is a subclass of a
standard exception the serving and CLI layers already route:

* :class:`ShardMergeUnsupportedError` extends
  :class:`~repro.engine.protocol.MergeUnsupportedError` (a
  ``TypeError``) — scatter–gather needs per-shard sketches that sum
  to the monolithic sketch, which position-based sampler kinds
  (``samplecount``, ``naivesampling``, ...) cannot provide.
* :class:`ShardUnreachableError` extends ``ConnectionError`` — a
  worker that cannot be reached (never spawned, crashed, network
  refused).  ``ConnectionError`` is an ``OSError``, so CLI paths that
  already treat socket failures as exit-2 user errors inherit the
  right behaviour, and the wire dispatch table reports it as a
  one-line ``{"ok": false}`` response instead of a traceback.
* :class:`ShardProtocolError` extends ``ValueError`` — a worker
  answered, but with something that is not a valid protocol response
  (torn line, non-JSON, missing fields).
* :class:`ClusterConfigError` extends ``ValueError`` — the shard set
  is not a coherent cluster (mismatched sketch specs, bucket widths,
  origins, or an empty shard list).
"""

from __future__ import annotations

from ..engine.protocol import MergeUnsupportedError

__all__ = [
    "ShardMergeUnsupportedError",
    "ShardUnreachableError",
    "ShardProtocolError",
    "ClusterConfigError",
]


class ShardMergeUnsupportedError(MergeUnsupportedError):
    """The sketch kind cannot be served by scatter–gather.

    Cluster queries merge per-shard window sketches into the answer;
    that requires the kind's state over a value partition to sum to
    the monolithic state.  Linear kinds (``tugofwar``, ``frequency``)
    have that property bit for bit; sampler kinds do not.
    """


class ShardUnreachableError(ConnectionError):
    """A shard worker could not be reached (or died mid-conversation)."""


class ShardProtocolError(ValueError):
    """A shard worker answered outside the line-delimited JSON protocol."""


class ClusterConfigError(ValueError):
    """The shard set does not form a coherent cluster configuration."""
