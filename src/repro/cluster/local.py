"""Spawn and supervise a local shard-worker fleet.

:class:`LocalCluster` turns ``N`` into ``N`` worker *processes*: each
one ``python -m repro cluster worker`` on an ephemeral port, announced
through a JSON ready line on its stdout.  This is the piece that takes
the scale-out layer past the GIL — every worker is a separate
interpreter, so per-shard ingestion and merge-on-query run truly in
parallel on separate cores.

With ``replication=R`` every shard becomes a *replica set* of R
workers built from the same template: the front end
(:class:`~repro.cluster.service.ClusterService`) fans each ingest
slice out to all of them, so every replica holds the same
deterministic state and any one of them can answer a query or donate
a snapshot to a respawned peer.

Lifecycle contract:

* **spawn** — workers that fail to announce readiness within the
  timeout are killed and reported as
  :class:`~repro.cluster.errors.ShardUnreachableError`, with their
  stderr attached (a silent zombie fleet is worse than a loud error);
* **respawn** — the supervisor half of worker-death recovery: the
  front end hands back the dead worker's client and receives a fresh
  worker (empty store, new port) in the same replica-set slot, ready
  for a ``restore`` from a healthy peer;
* **shutdown** — the wire ``shutdown`` op first (clean: the worker
  acks, drains, exits 0), ``terminate``/``kill`` as escalating
  fallbacks, so ``with LocalCluster(...)`` can never leak processes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path
from typing import Mapping

from .client import ShardClient
from .errors import ClusterConfigError, ShardUnreachableError

__all__ = ["LocalCluster", "WorkerProcess"]


def _worker_env() -> dict:
    """The child environment, with this ``repro`` importable.

    The spawner may itself run from a source tree never installed into
    site-packages; prepending the package parent to ``PYTHONPATH``
    guarantees the child resolves the same code the parent runs.
    """
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


class WorkerProcess:
    """One spawned shard worker: its process, address, and client."""

    def __init__(
        self,
        process: subprocess.Popen,
        host: str,
        port: int,
        protocol: str = "binary",
        client_timeout: float | None = None,
    ):
        self.process = process
        self.host = host
        self.port = port
        client_kwargs = {} if client_timeout is None else {
            "timeout": float(client_timeout)
        }
        self.client = ShardClient(host, port, protocol=protocol, **client_kwargs)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerProcess(pid={self.process.pid}, {self.address})"


def _read_ready_line(process: subprocess.Popen, timeout: float) -> dict:
    """Parse the worker's JSON ready line, with a hard deadline."""
    result: list = []

    def read() -> None:
        result.append(process.stdout.readline())

    reader = threading.Thread(target=read, daemon=True)
    reader.start()
    reader.join(timeout)
    if not result or not result[0]:
        raise ShardUnreachableError(
            "worker did not announce readiness "
            f"within {timeout:.0f}s"
        )
    try:
        ready = json.loads(result[0])
    except json.JSONDecodeError as exc:
        raise ShardUnreachableError(
            f"worker announced garbage instead of a ready line: "
            f"{result[0][:120]!r}"
        ) from exc
    if not isinstance(ready, dict) or not ready.get("ready"):
        raise ShardUnreachableError(
            f"worker announced a non-ready line: {ready!r}"
        )
    return ready


class LocalCluster:
    """``num_shards`` replica sets of worker processes on local ports.

    Parameters
    ----------
    config:
        The cluster-wide store template (see
        :func:`~repro.cluster.worker.store_config`): spec, bucket
        width, origin, retention.  Every worker gets the same one.
    num_shards:
        Number of replica sets (value-hash partitions) to spawn.
    replication:
        Workers per replica set.  The default 1 is the pre-replication
        fleet: one process per shard.
    host:
        Interface the workers bind (loopback by default).
    read_timeout:
        Per-connection read timeout passed to each worker.
    spawn_timeout:
        Seconds each worker gets to announce readiness.
    client_timeout:
        Connect/response timeout of the spawned
        :class:`~repro.cluster.client.ShardClient` per worker — the
        knob that bounds how long a front end waits on a stalled
        replica before classifying it unreachable.

    Use as a context manager — ``__exit__`` always shuts the fleet
    down, clean-first::

        with LocalCluster(config, num_shards=4, replication=2) as cluster:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            ...
    """

    def __init__(
        self,
        config: Mapping,
        num_shards: int,
        host: str = "127.0.0.1",
        read_timeout: float | None = None,
        spawn_timeout: float = 30.0,
        protocol: str = "binary",
        replication: int = 1,
        client_timeout: float | None = None,
    ):
        if int(num_shards) < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if int(replication) < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if protocol not in ("json", "binary"):
            raise ValueError(
                f"protocol must be 'json' or 'binary', got {protocol!r}"
            )
        self.config = dict(config)
        self.replication = int(replication)
        self.workers: list[WorkerProcess] = []
        self._sets: list[list[WorkerProcess]] = []
        self._protocol = protocol
        self._spawn_timeout = float(spawn_timeout)
        self._client_timeout = client_timeout
        self._command = [
            sys.executable, "-m", "repro", "cluster", "worker",
            "--config-json", json.dumps(self.config),
            "--host", host, "--port", "0",
        ]
        if read_timeout is not None:
            self._command += ["--read-timeout", str(float(read_timeout))]
        self._env = _worker_env()
        try:
            for _ in range(int(num_shards)):
                self._sets.append(
                    [self._spawn_worker() for _ in range(self.replication)]
                )
        except BaseException:
            self.shutdown()
            raise

    def _spawn_worker(self) -> WorkerProcess:
        """Spawn one worker, wait for its ready line, register it."""
        process = subprocess.Popen(
            self._command,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=self._env,
        )
        try:
            ready = _read_ready_line(process, self._spawn_timeout)
        except ShardUnreachableError as exc:
            raise ShardUnreachableError(
                f"{exc}; worker stderr:\n{self._drain(process)}"
            ) from exc
        worker = WorkerProcess(
            process,
            str(ready["host"]),
            int(ready["port"]),
            protocol=self._protocol,
            client_timeout=self._client_timeout,
        )
        self.workers.append(worker)
        return worker

    @staticmethod
    def _drain(process: subprocess.Popen) -> str:
        """Kill a half-started worker and return its stderr tail."""
        process.kill()
        try:
            _, stderr = process.communicate(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - kill failed
            return "<worker did not exit>"
        return (stderr or "").strip()[-2000:] or "<empty>"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._sets)

    @property
    def addresses(self) -> list[str]:
        return [worker.address for worker in self.workers]

    def worker(self, shard: int, replica: int = 0) -> WorkerProcess:
        """The worker process serving ``replica`` of replica set ``shard``."""
        return self._sets[shard][replica]

    def replica_sets(self) -> list[list[WorkerProcess]]:
        """The worker processes, grouped by replica set, in shard order."""
        return [list(group) for group in self._sets]

    def clients(self) -> list[ShardClient]:
        """One wire client per replica set (the primary), in shard order.

        With ``replication=1`` this is every worker — the original
        single-replica cluster surface, unchanged.
        """
        return [group[0].client for group in self._sets]

    def replica_clients(self) -> list[list[ShardClient]]:
        """Every replica's wire client, grouped by set, in shard order."""
        return [[worker.client for worker in group] for group in self._sets]

    # ------------------------------------------------------------------
    # Supervision (the recovery half of replication)
    # ------------------------------------------------------------------
    def respawn(self, client: ShardClient) -> ShardClient:
        """Replace the worker behind ``client`` with a fresh one.

        The front end calls this after classifying a replica
        unreachable: the old process is killed outright (it is usually
        already dead), a new worker is spawned into the same
        replica-set slot, and the new client is returned for the
        caller to ``restore`` state into.  The new worker starts with
        an *empty* store — restoring from a healthy peer's snapshot is
        the caller's job, because only the caller knows which peer is
        healthy.
        """
        for group in self._sets:
            for index, worker in enumerate(group):
                if worker.client is client:
                    client.close()
                    worker.process.kill()
                    worker.process.wait()
                    for stream in (worker.process.stdout,
                                   worker.process.stderr):
                        if stream is not None:
                            stream.close()
                    self.workers.remove(worker)
                    replacement = self._spawn_worker()
                    group[index] = replacement
                    return replacement.client
        raise ClusterConfigError(
            f"cannot respawn {client.address}: no such worker in this cluster"
        )

    def spawn_replica_set(self, replication: int | None = None) -> list[ShardClient]:
        """Spawn one new replica set (for epoch-based resharding).

        Returns the new workers' clients in replica order.  The set is
        appended to this cluster's supervision list, so ``shutdown``
        covers it like any other.
        """
        count = self.replication if replication is None else int(replication)
        if count < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        group = [self._spawn_worker() for _ in range(count)]
        self._sets.append(group)
        return [worker.client for worker in group]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker: wire ``shutdown`` first, signals as fallback."""
        for worker in self.workers:
            try:
                worker.client.request({"op": "shutdown"})
            except (OSError, ValueError):
                pass  # already dead or unreachable; signals below
            worker.client.close()
        for worker in self.workers:
            process = worker.process
            try:
                process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait()
            for stream in (process.stdout, process.stderr):
                if stream is not None:
                    stream.close()
        self.workers = []
        self._sets = []

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalCluster(shards={self.num_shards}, "
            f"replication={self.replication}, workers={self.addresses})"
        )
