"""Spawn and supervise a local shard-worker fleet.

:class:`LocalCluster` turns ``N`` into ``N`` worker *processes*: each
one ``python -m repro cluster worker`` on an ephemeral port, announced
through a JSON ready line on its stdout.  This is the piece that takes
the scale-out layer past the GIL — every worker is a separate
interpreter, so per-shard ingestion and merge-on-query run truly in
parallel on separate cores.

Lifecycle contract:

* **spawn** — workers that fail to announce readiness within the
  timeout are killed and reported as
  :class:`~repro.cluster.errors.ShardUnreachableError`, with their
  stderr attached (a silent zombie fleet is worse than a loud error);
* **shutdown** — the wire ``shutdown`` op first (clean: the worker
  acks, drains, exits 0), ``terminate``/``kill`` as escalating
  fallbacks, so ``with LocalCluster(...)`` can never leak processes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path
from typing import Mapping

from .client import ShardClient
from .errors import ShardUnreachableError

__all__ = ["LocalCluster", "WorkerProcess"]


def _worker_env() -> dict:
    """The child environment, with this ``repro`` importable.

    The spawner may itself run from a source tree never installed into
    site-packages; prepending the package parent to ``PYTHONPATH``
    guarantees the child resolves the same code the parent runs.
    """
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


class WorkerProcess:
    """One spawned shard worker: its process, address, and client."""

    def __init__(
        self,
        process: subprocess.Popen,
        host: str,
        port: int,
        protocol: str = "binary",
    ):
        self.process = process
        self.host = host
        self.port = port
        self.client = ShardClient(host, port, protocol=protocol)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerProcess(pid={self.process.pid}, {self.address})"


def _read_ready_line(process: subprocess.Popen, timeout: float) -> dict:
    """Parse the worker's JSON ready line, with a hard deadline."""
    result: list = []

    def read() -> None:
        result.append(process.stdout.readline())

    reader = threading.Thread(target=read, daemon=True)
    reader.start()
    reader.join(timeout)
    if not result or not result[0]:
        raise ShardUnreachableError(
            "worker did not announce readiness "
            f"within {timeout:.0f}s"
        )
    try:
        ready = json.loads(result[0])
    except json.JSONDecodeError as exc:
        raise ShardUnreachableError(
            f"worker announced garbage instead of a ready line: "
            f"{result[0][:120]!r}"
        ) from exc
    if not isinstance(ready, dict) or not ready.get("ready"):
        raise ShardUnreachableError(
            f"worker announced a non-ready line: {ready!r}"
        )
    return ready


class LocalCluster:
    """``num_shards`` worker processes on ephemeral local ports.

    Parameters
    ----------
    config:
        The cluster-wide store template (see
        :func:`~repro.cluster.worker.store_config`): spec, bucket
        width, origin, retention.  Every worker gets the same one.
    num_shards:
        Number of worker processes to spawn.
    host:
        Interface the workers bind (loopback by default).
    read_timeout:
        Per-connection read timeout passed to each worker.
    spawn_timeout:
        Seconds each worker gets to announce readiness.

    Use as a context manager — ``__exit__`` always shuts the fleet
    down, clean-first::

        with LocalCluster(config, num_shards=4) as cluster:
            service = ClusterService(cluster.clients())
            ...
    """

    def __init__(
        self,
        config: Mapping,
        num_shards: int,
        host: str = "127.0.0.1",
        read_timeout: float | None = None,
        spawn_timeout: float = 30.0,
        protocol: str = "binary",
    ):
        if int(num_shards) < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if protocol not in ("json", "binary"):
            raise ValueError(
                f"protocol must be 'json' or 'binary', got {protocol!r}"
            )
        self.config = dict(config)
        self.workers: list[WorkerProcess] = []
        command = [
            sys.executable, "-m", "repro", "cluster", "worker",
            "--config-json", json.dumps(self.config),
            "--host", host, "--port", "0",
        ]
        if read_timeout is not None:
            command += ["--read-timeout", str(float(read_timeout))]
        env = _worker_env()
        try:
            for _ in range(int(num_shards)):
                process = subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    env=env,
                )
                try:
                    ready = _read_ready_line(process, spawn_timeout)
                except ShardUnreachableError as exc:
                    raise ShardUnreachableError(
                        f"{exc}; worker stderr:\n{self._drain(process)}"
                    ) from exc
                self.workers.append(
                    WorkerProcess(
                        process,
                        str(ready["host"]),
                        int(ready["port"]),
                        protocol=protocol,
                    )
                )
        except BaseException:
            self.shutdown()
            raise

    @staticmethod
    def _drain(process: subprocess.Popen) -> str:
        """Kill a half-started worker and return its stderr tail."""
        process.kill()
        try:
            _, stderr = process.communicate(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - kill failed
            return "<worker did not exit>"
        return (stderr or "").strip()[-2000:] or "<empty>"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.workers)

    @property
    def addresses(self) -> list[str]:
        return [worker.address for worker in self.workers]

    def clients(self) -> list[ShardClient]:
        """The per-worker wire clients, in shard order."""
        return [worker.client for worker in self.workers]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker: wire ``shutdown`` first, signals as fallback."""
        for worker in self.workers:
            try:
                worker.client.request({"op": "shutdown"})
            except (OSError, ValueError):
                pass  # already dead or unreachable; signals below
            worker.client.close()
        for worker in self.workers:
            process = worker.process
            try:
                process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait()
            for stream in (process.stdout, process.stderr):
                if stream is not None:
                    stream.close()
        self.workers = []

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalCluster(shards={self.addresses})"
