"""The scale-out cluster layer: hash-partitioned shard workers.

The paper's sketches are *linear*: a tug-of-war sketch of a
value-partitioned stream is the elementwise sum of per-partition
sketches built from the same seed.  Horizontal scale-out is therefore
mathematically free, and this package cashes it in:

* :mod:`repro.cluster.partitioned` — the socket-free algebra:
  value-hash partition → per-shard build → gather-merge, bit-identical
  to the monolithic sketch for every mergeable kind (property-tested
  over shard counts and signed streams);
* :mod:`repro.cluster.worker` — a shard worker: one empty windowed
  store from the cluster-wide spec, served by the same generalized
  line-delimited JSON server as single-node ``repro serve``;
* :mod:`repro.cluster.local` — :class:`LocalCluster`, spawning N
  shards x R replicas on ephemeral ports with clean shutdown, plus
  the supervisor surface (``respawn``, ``spawn_replica_set``) that
  recovery and resharding call back into;
* :mod:`repro.cluster.client` — :class:`ShardClient`, the persistent
  thread-safe wire conversation with one worker, with at-most-once
  retry classification and a ``fault_hook`` injection point;
* :mod:`repro.cluster.service` — :class:`ClusterService`, the
  cluster-aware facade satisfying the same estimate / sketch / ingest
  / info surface as :class:`~repro.service.service.SketchService`, so
  the wire dispatch table and the CLI serve a fleet unchanged; adds
  replica-set fan-out, hedged / quorum reads with read repair,
  dead-replica recovery, and time-keyed epoch resharding;
* :mod:`repro.cluster.faults` — deterministic fault injection for
  tests and chaos drills (:class:`FaultInjector` signals,
  :class:`DropRequests` / :class:`StallRequests` client hooks);
* :mod:`repro.cluster.errors` — the typed failure surface
  (:class:`ShardMergeUnsupportedError`, :class:`ShardUnreachableError`,
  :class:`ShardProtocolError`, :class:`ClusterConfigError`).
"""

from .client import ShardClient, ShardRequestError
from .errors import (
    ClusterConfigError,
    ShardMergeUnsupportedError,
    ShardProtocolError,
    ShardUnreachableError,
)
from .faults import DropRequests, FaultInjector, StallRequests
from .local import LocalCluster, WorkerProcess
from .partitioned import gather_merge, partitioned_build, scatter_build
from .service import ClusterService
from .worker import build_store, run_worker, store_config

__all__ = [
    "ClusterService",
    "LocalCluster",
    "WorkerProcess",
    "ShardClient",
    "ShardRequestError",
    "ShardMergeUnsupportedError",
    "ShardUnreachableError",
    "ShardProtocolError",
    "ClusterConfigError",
    "FaultInjector",
    "DropRequests",
    "StallRequests",
    "scatter_build",
    "gather_merge",
    "partitioned_build",
    "store_config",
    "build_store",
    "run_worker",
]
