"""The cluster-aware serving facade: route, scatter, gather, merge.

:class:`ClusterService` satisfies the same estimate / sketch / ingest
/ info surface as :class:`~repro.service.service.SketchService`, so
everything written against the single-node service — the generalized
wire dispatch table, ``CatalogService.at_window``-style consumers, the
CLI — works unchanged against a fleet of shard workers:

* **Ingest** routes each batch by the stable value-hash partitioner
  (:class:`~repro.engine.partition.HashPartitioner`) and scatters the
  per-shard slices concurrently.  Routing by *value* (never by time
  or round-robin) is the invariant that makes everything else true:
  per-shard sub-streams are a value partition of the global stream,
  and a deletion reaches the shard holding the inserts it retracts.
* **Queries** scatter the window to every shard, gather the per-shard
  merged sketches over the wire, and
  :func:`~repro.cluster.partitioned.gather_merge` them — for every
  mergeable kind the result is **bit-identical** to a monolithic
  :class:`~repro.store.windowed.WindowedSketchStore` over the same
  stream (linearity: elementwise integer sums commute with the
  partition).  Non-mergeable sampler kinds are refused at
  construction with a typed
  :class:`~repro.cluster.errors.ShardMergeUnsupportedError`.
* **Windows** are resolved to a common fixpoint: under
  ``align="outer"`` shards may expand a window differently (their
  compacted spans differ because they hold different values), so the
  gather loop re-scatters the union hull until every shard agrees —
  the reported window always describes the returned sketch.

Fault tolerance (replication, hedging, recovery):

* **Replica sets.**  Each shard may be a set of R workers fed the
  same slice of every batch.  Sketch updates are deterministic given
  the spec (all randomness is seed-derived), so replicas of a shard
  are *bit-identical* by construction — any one can answer a query,
  and any healthy one can donate a ``snapshot`` to rebuild a peer.
  Delivery is tracked **per replica** by each replica's own
  at-most-once :class:`~repro.cluster.client.ShardClient`: a resend
  after an ambiguous outcome never double-applies on a replica that
  already acked, because the ambiguous replica is quarantined and
  overwritten from a peer's absolute-state snapshot instead.
* **Hedged reads.**  A query dispatches to one replica per shard and
  hedges to the next after ``hedge_delay`` seconds, first well-formed
  answer wins — a stalled replica costs one hedge delay, not a
  timeout.  ``read_mode="quorum"`` instead asks every replica,
  compares answers, and read-repairs any minority (exact, because the
  majority answer is the deterministic function of the stream).
* **Recovery.**  A replica classified unreachable is respawned via
  the ``supervisor`` (a :class:`~repro.cluster.local.LocalCluster`)
  and restored from a healthy peer's snapshot — RNG state included,
  so continued ingestion stays bit-identical.
* **Epoch-based resharding.**  :meth:`reshard` appends a new epoch of
  replica sets under a new partitioner, owning every time bucket from
  a cutover timestamp on.  Events route under the epoch owning their
  timestamp — deletions carry the insert's timestamp, so they land on
  the shard holding the insert — and answers merge across epochs by
  linearity, bit-identical to the monolithic store.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..engine.partition import HashPartitioner, key_digest, stable_hash64
from ..engine.protocol import Sketch
from ..engine.registry import load_sketch
from ..service.service import WindowEstimate
from ..store.spec import SketchSpec
from .client import ShardRequestError
from .errors import (
    ClusterConfigError,
    ShardMergeUnsupportedError,
    ShardProtocolError,
    ShardUnreachableError,
)
from .partitioned import gather_merge

__all__ = ["ClusterService", "DEFAULT_HEDGE_DELAY"]

#: Outer-alignment gather rounds before declaring divergence a bug.
_MAX_ALIGN_ROUNDS = 32

#: Seconds a hedged read waits on a replica before dispatching the
#: same request to the next one.  Far above a healthy local worker's
#: service time (tens of microseconds), far below any timeout.
DEFAULT_HEDGE_DELAY = 0.05


class _Replica:
    """One worker in a replica set, plus the front end's view of it."""

    __slots__ = ("client", "strikes", "dead", "suspect", "error")

    def __init__(self, client):
        self.client = client
        #: Hedge count against this replica; sorts it behind faster
        #: peers on later dispatches.  Reset by a successful repair.
        self.strikes = 0
        #: Classified unreachable (connection-level failure on a
        #: fresh dial): its state may be missing batches.
        self.dead = False
        #: Ambiguous non-idempotent outcome (partial write): its
        #: state may or may not include the last batch.
        self.suspect = False
        #: The exception that earned the mark, for error reporting.
        self.error = None

    @property
    def live(self) -> bool:
        return not self.dead and not self.suspect


class _Epoch:
    """One resharding generation: a partitioner and its replica sets.

    ``start`` is the epoch's inclusive cutover timestamp (``None`` for
    the first epoch, which owns everything earlier): an event routes
    under the last epoch whose ``start`` is at or below its timestamp.
    Keying epochs by *event time* rather than arrival order is what
    keeps deletions exact across a reshard — a deletion carries the
    timestamp of the insert it reverses (the store's own contract), so
    it routes to the epoch, and therefore the shard, holding that
    insert.
    """

    __slots__ = ("partitioner", "sets", "start")

    def __init__(self, partitioner: HashPartitioner, sets: list, start=None):
        self.partitioner = partitioner
        self.sets = sets
        self.start = start


class _Unit:
    """Read-dispatch state for one (epoch, shard) replica set."""

    __slots__ = (
        "epoch", "shard", "replicas", "candidates", "next",
        "deadline", "pending", "votes", "response", "error", "done",
    )

    def __init__(self, epoch: int, shard: int, replicas, candidates):
        self.epoch = epoch
        self.shard = shard
        self.replicas = replicas
        self.candidates = candidates
        self.next = 0
        self.deadline = None
        self.pending = set()
        self.votes = []
        self.response = None
        self.error = None
        self.done = False


def _canon(value):
    """A hashable canonical form for comparing replica answers."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, np.ndarray):
        return tuple(value.tolist())
    if isinstance(value, float) and value != value:
        return "nan"
    return value


class ClusterService:
    """Scatter–gather serving over hash-partitioned shard workers.

    Parameters
    ----------
    clients:
        Either one :class:`~repro.cluster.client.ShardClient` per
        shard (the replication-free fleet) or one *sequence* of
        clients per shard — a replica set, primary first.  Shard
        order **is** the partition map, so it must match the order
        ingest has always used against these workers.
    partition_seed:
        Seed of the value-hash partitioner.  Defaults to the sketch
        spec's own seed, so a front end restarted against the same
        workers routes identically without extra coordination.
    supervisor:
        An object with ``respawn(client) -> client`` and
        ``spawn_replica_set(replication) -> [client]`` (a
        :class:`~repro.cluster.local.LocalCluster`).  Without one,
        dead replicas stay out of rotation instead of being respawned
        and :meth:`reshard` is refused.
    hedge_delay:
        Seconds before a read hedges to the next replica.  ``None``
        disables hedging (reads wait on the primary alone).
    read_mode:
        ``"hedged"`` (first well-formed answer wins) or ``"quorum"``
        (every replica answers, majority wins, minority is
        read-repaired from the majority).
    pool_size:
        Scatter-thread cap; defaults to ``max(8, 2 × replicas)``.
        Raise it when many hedged stragglers may be in flight at once.

    Raises
    ------
    ClusterConfigError:
        No shards, unreachable shards at construction, or workers
        whose spec / bucket geometry disagree.
    ShardMergeUnsupportedError:
        The workers hold a sampler kind that cannot be gather-merged.
    """

    def __init__(
        self,
        clients: Sequence,
        partition_seed: int | None = None,
        supervisor=None,
        hedge_delay: float | None = DEFAULT_HEDGE_DELAY,
        read_mode: str = "hedged",
        pool_size: int | None = None,
    ):
        if not clients:
            raise ClusterConfigError("a cluster needs at least one shard")
        if read_mode not in ("hedged", "quorum"):
            raise ClusterConfigError(
                f"read_mode must be 'hedged' or 'quorum', got {read_mode!r}"
            )
        sets: list[list[_Replica]] = []
        for entry in clients:
            if hasattr(entry, "request"):
                sets.append([_Replica(entry)])
            else:
                group = [_Replica(c) for c in entry]
                if not group:
                    raise ClusterConfigError(
                        "a replica set needs at least one replica"
                    )
                sets.append(group)
        self._supervisor = supervisor
        self._hedge_delay = None if hedge_delay is None else float(hedge_delay)
        self._read_mode = read_mode
        self._admin_lock = threading.Lock()
        total = sum(len(group) for group in sets)
        self._pool_size = (
            max(8, 2 * total) if pool_size is None else int(pool_size)
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self._pool_size,
            thread_name_prefix="cluster-scatter",
        )
        try:
            flat = [
                (s, r, replica)
                for s, group in enumerate(sets)
                for r, replica in enumerate(group)
            ]
            infos = self._probe([replica for _, _, replica in flat])
            reference = infos[0]
            for (s, r, replica), info in zip(flat[1:], infos[1:]):
                for field in ("spec", "bucket_width", "origin"):
                    if info.get(field) != reference.get(field):
                        raise ClusterConfigError(
                            f"shard {s} replica {r} "
                            f"({replica.client.address}) disagrees on "
                            f"{field}: {info.get(field)!r} != "
                            f"{reference.get(field)!r} (shard 0 replica 0, "
                            f"{flat[0][2].client.address})"
                        )
                if bool(info.get("keyed")) != bool(reference.get("keyed")):
                    raise ClusterConfigError(
                        f"shard {s} replica {r} ({replica.client.address}) "
                        f"serves a {'keyed' if info.get('keyed') else 'plain'}"
                        f" store while shard 0 replica 0 serves a "
                        f"{'keyed' if reference.get('keyed') else 'plain'} one"
                    )
            if "spec" not in reference:
                raise ClusterConfigError(
                    f"shard {flat[0][2].client.address} reported no sketch "
                    "spec; workers must run this repo's generalized server"
                )
            self._spec = SketchSpec.from_dict(reference["spec"])
            if not self._spec.is_mergeable:
                raise ShardMergeUnsupportedError(
                    f"sketch kind {self._spec.kind!r} cannot be served by "
                    "scatter–gather: per-shard sketches do not combine into "
                    "the monolithic sketch (position-based sampling)"
                )
        except BaseException:
            # A failed construction must not leak scatter threads: the
            # caller has no handle to close a half-built service.
            self._pool.shutdown(wait=True)
            raise
        self._bucket_width = int(reference["bucket_width"])
        self._origin = int(reference["origin"])
        self._keyed = bool(reference.get("keyed"))
        if partition_seed is None:
            partition_seed = int(self._spec.params.get("seed", 0))
        self._partition_seed = int(partition_seed)
        self._epochs = [
            _Epoch(HashPartitioner(len(sets), seed=self._partition_seed), sets)
        ]

    # ------------------------------------------------------------------
    # Scatter plumbing
    # ------------------------------------------------------------------
    def _probe(self, replicas: Sequence[_Replica]) -> list[dict]:
        """One ``info`` to each replica, concurrently, in order."""
        futures = [
            self._pool.submit(replica.client.request, {"op": "info"})
            for replica in replicas
        ]
        results, first_error = [], None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    @property
    def _partitioner(self) -> HashPartitioner:
        """The partitioner new batches route under (newest epoch's)."""
        return self._epochs[-1].partitioner

    def _units(self) -> list[tuple[int, int, list]]:
        """Every (epoch index, shard index, replica set), query order."""
        return [
            (e, s, epoch.sets[s])
            for e, epoch in enumerate(self._epochs)
            for s in range(len(epoch.sets))
        ]

    @staticmethod
    def _candidates(replicas: Sequence[_Replica]) -> list[_Replica]:
        """Replicas in dispatch order: live first, fewest strikes first.

        A marked singleton is still returned — with no peer to diverge
        from, retrying it is both safe and the only option, and a
        success clears its mark (the pre-replication semantics).
        """
        live = [r for r in replicas if r.live]
        if live:
            return sorted(live, key=lambda r: r.strikes)
        if len(replicas) == 1:
            return list(replicas)
        return []

    @staticmethod
    def _targets(replicas: Sequence[_Replica]) -> list[_Replica]:
        """Replicas a mutation fans out to (same fallback rule)."""
        live = [r for r in replicas if r.live]
        if live:
            return live
        if len(replicas) == 1:
            return list(replicas)
        return []

    @staticmethod
    def _set_error(epoch: int, shard: int, replicas) -> Exception:
        """The error to raise when a whole replica set is out."""
        for replica in replicas:
            if replica.error is not None:
                return replica.error
        return ShardUnreachableError(
            f"every replica of shard {shard} (epoch {epoch}) is "
            "unreachable or suspect"
        )

    @staticmethod
    def _clear_if_marked(replica: _Replica) -> None:
        """A marked replica that answered is healthy again (singletons)."""
        if replica.dead or replica.suspect:
            replica.dead = replica.suspect = False
            replica.error = None

    # ------------------------------------------------------------------
    # Reads: hedged / quorum scatter
    # ------------------------------------------------------------------
    def _dispatch(self, unit: _Unit, payload: Mapping, inflight: dict) -> bool:
        """Submit the unit's next candidate; False when exhausted."""
        if unit.next >= len(unit.candidates):
            return False
        replica = unit.candidates[unit.next]
        unit.next += 1
        future = self._pool.submit(replica.client.request, dict(payload))
        inflight[future] = (unit, replica)
        unit.pending.add(future)
        if self._hedge_delay is not None:
            unit.deadline = time.monotonic() + self._hedge_delay
        return True

    def _resolve(self, unit: _Unit, response: dict, replica: _Replica) -> None:
        unit.response = response
        unit.done = True
        self._clear_if_marked(replica)
        for future in unit.pending:
            future.cancel()

    def _hedged_read(self, payload: Mapping) -> tuple[list, Exception | None]:
        """One request per unit, hedging to the next replica when slow.

        A flat state machine in the caller's thread: every dispatch
        goes straight to the pool and nothing submitted ever waits on
        another pool task, so hedging cannot deadlock the pool.
        """
        units = [
            _Unit(e, s, replicas, self._candidates(replicas))
            for e, s, replicas in self._units()
        ]
        inflight: dict = {}
        for unit in units:
            if not self._dispatch(unit, payload, inflight):
                unit.error = self._set_error(unit.epoch, unit.shard, unit.replicas)
                unit.done = True
        while any(not u.done for u in units):
            timeout = None
            if self._hedge_delay is not None:
                deadlines = [
                    u.deadline
                    for u in units
                    if not u.done
                    and u.deadline is not None
                    and u.next < len(u.candidates)
                ]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
            active = [f for f, (u, _) in inflight.items() if not u.done]
            if not active:
                for unit in units:
                    if not unit.done:
                        unit.error = self._set_error(
                            unit.epoch, unit.shard, unit.replicas
                        )
                        unit.done = True
                break
            done_set, _ = wait(active, timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done_set:
                unit, replica = inflight.pop(future)
                unit.pending.discard(future)
                if unit.done:
                    try:
                        future.exception()
                    except BaseException:  # noqa: BLE001 - straggler noise
                        pass
                    continue
                try:
                    response = future.result()
                except ShardRequestError as exc:
                    # The worker answered and refused: authoritative,
                    # deterministic, identical on every replica.
                    unit.error = exc
                    unit.done = True
                except ShardUnreachableError as exc:
                    replica.dead, replica.error = True, exc
                    if not self._dispatch(unit, payload, inflight) and not unit.pending:
                        unit.error = exc
                        unit.done = True
                except ShardProtocolError as exc:
                    replica.suspect, replica.error = True, exc
                    if not self._dispatch(unit, payload, inflight) and not unit.pending:
                        unit.error = exc
                        unit.done = True
                except Exception as exc:  # noqa: BLE001 - malformed response
                    unit.error = exc
                    unit.done = True
                else:
                    self._resolve(unit, response, replica)
            if self._hedge_delay is not None:
                now = time.monotonic()
                for unit in units:
                    if unit.done or unit.deadline is None or now < unit.deadline:
                        continue
                    if unit.next < len(unit.candidates):
                        # The in-flight replica is slow: hedge past it
                        # and remember the slowness for next time.
                        for pending in unit.pending:
                            inflight[pending][1].strikes += 1
                        self._dispatch(unit, payload, inflight)
                    else:
                        unit.deadline = None
        for future in inflight:
            future.cancel()
        first_error = next((u.error for u in units if u.error is not None), None)
        return [u.response for u in units], first_error

    def _quorum_read(self, payload: Mapping) -> tuple[list, Exception | None]:
        """Every replica answers; majority wins; minority is marked.

        Exact, not probabilistic: replica state is a deterministic
        function of the acked stream, so a divergent answer means a
        divergent replica — the minority is quarantined and restored
        from the majority by the repair pass.
        """
        units = [
            _Unit(e, s, replicas, self._candidates(replicas))
            for e, s, replicas in self._units()
        ]
        futures: dict = {}
        for unit in units:
            for replica in unit.candidates:
                futures[
                    self._pool.submit(replica.client.request, dict(payload))
                ] = (unit, replica)
        for future, (unit, replica) in futures.items():
            try:
                response = future.result()
            except ShardRequestError as exc:
                unit.error = unit.error or exc
            except ShardUnreachableError as exc:
                replica.dead, replica.error = True, exc
            except ShardProtocolError as exc:
                replica.suspect, replica.error = True, exc
            except Exception as exc:  # noqa: BLE001 - malformed response
                unit.error = unit.error or exc
            else:
                unit.votes.append((replica, response))
                self._clear_if_marked(replica)
        first_error = None
        for unit in units:
            if unit.votes:
                groups: dict = {}
                for order, (replica, response) in enumerate(unit.votes):
                    groups.setdefault(_canon(response), []).append(
                        (order, replica, response)
                    )
                ranked = sorted(
                    groups.values(), key=lambda g: (-len(g), g[0][0])
                )
                unit.response = ranked[0][0][2]
                for group in ranked[1:]:
                    for _, replica, _resp in group:
                        replica.suspect = True
            elif unit.error is None:
                unit.error = self._set_error(unit.epoch, unit.shard, unit.replicas)
            if unit.response is None and unit.error is not None and first_error is None:
                first_error = unit.error
        return [u.response for u in units], first_error

    def _scatter_read(self, payload: Mapping) -> list[dict]:
        """One well-formed response per (epoch, shard) unit, in order."""
        if self._read_mode == "quorum":
            responses, first_error = self._quorum_read(payload)
        else:
            responses, first_error = self._hedged_read(payload)
        if first_error is not None:
            raise first_error
        self._repair()
        return responses

    # ------------------------------------------------------------------
    # Repair (recovery half of replication)
    # ------------------------------------------------------------------
    def _restore_replica(self, replica: _Replica, snapshot: Mapping) -> bool:
        """Overwrite one replica from a donor snapshot, respawning if dead.

        ``restore`` writes absolute state, so it clobbers an ambiguous
        partial write exactly, and it is idempotent — safe to repeat
        against a respawned worker.  Returns False only when the
        replica is unreachable and there is no supervisor to respawn
        it (the degraded, replica-down-but-serving mode).
        """
        payload = {"op": "restore", "snapshot": snapshot}
        try:
            replica.client.request(dict(payload))
            return True
        except ShardUnreachableError as exc:
            if self._supervisor is None:
                replica.error = exc
                return False
        replica.client = self._supervisor.respawn(replica.client)
        replica.client.request(dict(payload))
        return True

    def _repair(self) -> None:
        """Restore every marked replica from a healthy peer's snapshot.

        Runs after every scatter that may have marked replicas.  The
        donor's snapshot reflects everything the set has acked (the
        donor acked it), so a restored replica is bit-identical to its
        peers — including RNG state, so future ingestion stays
        identical too.  Raises when a set has no healthy donor left:
        that set's data is gone and pretending otherwise would serve
        wrong answers.
        """
        for e, epoch in enumerate(self._epochs):
            for s, replicas in enumerate(epoch.sets):
                marked = [r for r in replicas if not r.live]
                if not marked:
                    continue
                healthy = [r for r in replicas if r.live]
                if not healthy:
                    error = self._set_error(e, s, replicas)
                    if len(replicas) == 1:
                        # Pre-replication semantics: nothing is sticky
                        # for a singleton — the next op retries it.
                        replicas[0].dead = replicas[0].suspect = False
                        replicas[0].error = None
                    raise error
                donor = healthy[0]
                snapshot = donor.client.request({"op": "snapshot"})["snapshot"]
                for replica in marked:
                    if self._restore_replica(replica, snapshot):
                        replica.dead = replica.suspect = False
                        replica.error = None
                        replica.strikes = 0

    def _reset_replica_state(self) -> None:
        """Forget every mark and strike (benchmarks and tests only)."""
        for epoch in self._epochs:
            for replicas in epoch.sets:
                for replica in replicas:
                    replica.dead = replica.suspect = False
                    replica.error = None
                    replica.strikes = 0

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _check_key(self, key: str | None) -> str | None:
        """Validate a key argument against this cluster's store shape.

        Mirrors the single-node behaviour through the shared surface: a
        keyed request against an unkeyed fleet is a ``TypeError`` (the
        wording a key-unaware service would produce), and a keyed
        fleet refuses unkeyed data-path requests up front instead of
        scattering a batch every worker will reject.
        """
        if key is None:
            if self._keyed:
                raise TypeError(
                    "this cluster serves a keyed fleet; pass key='...'"
                )
            return None
        if not self._keyed:
            raise TypeError(
                f"this cluster serves an unkeyed store; "
                f"got an unexpected keyword argument key={key!r}"
            )
        if not isinstance(key, str) or not key:
            raise ValueError(f"key must be a non-empty string, got {key!r}")
        return key

    def ingest(
        self,
        timestamps: np.ndarray | Iterable[int],
        values: np.ndarray | Iterable[int],
        counts: np.ndarray | Iterable[int] | None = None,
        max_workers: int | None = None,
        *,
        key: str | None = None,
    ) -> None:
        """Value-hash route one timestamped batch across the shards.

        Each shard's slice fans out to every live replica of its set
        concurrently; each worker applies its slice atomically under
        its own service's write lock.  Atomicity is therefore **per
        replica, not per batch**: there is no cross-shard transaction,
        so a concurrent reader can observe shard 0 after its slice
        landed and shard 1 before — a torn state the single-node
        :class:`~repro.service.service.SketchService` (one write lock)
        can never expose.  Once this call returns, every later query
        observes the whole batch on every healthy replica.

        Replication changes what a partial failure means: as long as
        **one** replica of each routed shard acks the slice, the batch
        is durable — failed peers are quarantined and rebuilt from an
        acking donor's snapshot (which already includes this batch),
        so a replica that acked is never re-sent the slice and can
        never double-count it.  Only when *every* replica of a routed
        shard fails is the batch lost, and that raises.  After a
        :meth:`reshard`, each event routes under the epoch owning its
        *timestamp* (deletions carry the insert's timestamp, so they
        land on the shard holding the insert — exact for every kind).
        ``max_workers`` is accepted for surface compatibility — the
        cluster's parallelism is the worker processes themselves.

        On a keyed fleet the batch routes by the **(key, value) pair**:
        the value column is first mixed with ``key_digest(key)`` and
        the partitioner splits that derived column.  Deleting
        ``(key, v)`` therefore lands exactly on the shard holding its
        inserts (same key, same value, same route), while the same
        value under different keys spreads across shards instead of
        pinning every tenant's copy of a hot value to one worker.
        """
        key = self._check_key(key)
        ts = np.asarray(timestamps, dtype=np.int64)
        vals = np.asarray(values, dtype=np.int64)
        if ts.ndim != 1 or vals.ndim != 1 or ts.shape != vals.shape:
            raise ValueError(
                f"timestamps {ts.shape} and values {vals.shape} must be "
                "equal-length 1-D arrays"
            )
        cnts = None
        if counts is not None:
            cnts = np.asarray(counts, dtype=np.int64)
            if cnts.shape != vals.shape:
                raise ValueError(
                    f"counts {cnts.shape} must match values {vals.shape}"
                )
        if vals.size == 0:
            return
        # The column the partitioner routes on: raw values for a plain
        # store, key-mixed values for a fleet (reinterpreted back to
        # int64 — the partitioner re-hashes, so the view is lossless).
        route = (
            vals
            if key is None
            else stable_hash64(vals, seed=key_digest(key)).view(np.int64)
        )
        if len(self._epochs) == 1:
            # Fast path: no epoch boundaries to consult.
            assignments = [(0, self._epochs[0], None)]
        else:
            starts = np.asarray(
                [epoch.start for epoch in self._epochs[1:]], dtype=np.int64
            )
            owner = np.searchsorted(starts, ts, side="right")
            assignments = [
                (e, epoch, np.flatnonzero(owner == e))
                for e, epoch in enumerate(self._epochs)
            ]
        futures: dict = {}
        targeted: set[tuple[int, int]] = set()
        for e, epoch, selection in assignments:
            epoch_route = route if selection is None else route[selection]
            if epoch_route.size == 0:
                continue
            for shard, sub in enumerate(epoch.partitioner.split(epoch_route)):
                if sub.size == 0:
                    continue
                idx = sub if selection is None else selection[sub]
                # Raw arrays, not .tolist(): a binary client packs them
                # straight onto the wire, and a JSON client serialises
                # them itself — materialising Python lists here would pay
                # the conversion even on the zero-copy path.  Replicas of
                # a set share the arrays read-only.  The shipped values
                # are always the *original* column — the key-mixed route
                # column never leaves this process.
                payload: dict = {
                    "op": "ingest",
                    "timestamps": ts[idx],
                    "values": vals[idx],
                }
                if cnts is not None:
                    payload["counts"] = cnts[idx]
                if key is not None:
                    payload["key"] = key
                targeted.add((e, shard))
                for replica in self._targets(epoch.sets[shard]):
                    futures[
                        self._pool.submit(replica.client.request, dict(payload))
                    ] = ((e, shard), replica)
        acks = {unit: 0 for unit in targeted}
        request_error = None
        unexpected = None
        for future, (shard, replica) in futures.items():
            try:
                future.result()
            except ShardRequestError as exc:
                if request_error is None:
                    request_error = exc
            except ShardUnreachableError as exc:
                replica.dead, replica.error = True, exc
            except ShardProtocolError as exc:
                replica.suspect, replica.error = True, exc
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if unexpected is None:
                    unexpected = exc
            else:
                acks[shard] += 1
                self._clear_if_marked(replica)
        if unexpected is not None:
            raise unexpected
        # Repair before surfacing a deterministic refusal: a refused
        # batch left every replica unchanged, so donors are exact, and
        # a set whose every replica failed makes _repair raise — the
        # batch really is lost there.
        self._repair()
        if request_error is not None:
            raise request_error

    def _scatter_all(self, payload: Mapping) -> list[list[tuple]]:
        """Fan one request to every live replica of every epoch.

        Returns, per (epoch, shard) unit in query order, the list of
        ``(replica, response)`` pairs that succeeded.  Used by
        cluster-wide mutations (compact / evict / restore-alike) and
        by stats, which wants every replica's answer individually.
        """
        units = self._units()
        futures: dict = {}
        for e, s, replicas in units:
            for replica in self._targets(replicas):
                futures[
                    self._pool.submit(replica.client.request, dict(payload))
                ] = (e, s, replica)
        results: dict = {}
        request_error = None
        unexpected = None
        for future, (e, s, replica) in futures.items():
            try:
                response = future.result()
            except ShardRequestError as exc:
                if request_error is None:
                    request_error = exc
            except ShardUnreachableError as exc:
                replica.dead, replica.error = True, exc
            except ShardProtocolError as exc:
                replica.suspect, replica.error = True, exc
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if unexpected is None:
                    unexpected = exc
            else:
                results.setdefault((e, s), []).append((replica, response))
                self._clear_if_marked(replica)
        if unexpected is not None:
            raise unexpected
        self._repair()
        if request_error is not None:
            raise request_error
        for e, s, replicas in units:
            if (e, s) not in results:  # pragma: no cover - _repair raises first
                raise self._set_error(e, s, replicas)
        return [results[(e, s)] for e, s, _ in units]

    def compact(self, before: int | None = None) -> int:
        """Fold old spans on every shard; returns total spans folded.

        Applied on every replica of every epoch (replicas must fold
        identically to stay bit-identical); each set's fold count is
        counted once.
        """
        payload: dict = {"op": "compact"}
        if before is not None:
            payload["before"] = int(before)
        groups = self._scatter_all(payload)
        return sum(group[0][1]["folded"] for group in groups)

    def evict(self, before: int) -> int:
        """Forget old spans on every shard; returns total spans dropped."""
        groups = self._scatter_all({"op": "evict", "before": int(before)})
        return sum(group[0][1]["evicted"] for group in groups)

    # ------------------------------------------------------------------
    # Queries (scatter–gather merge-on-query)
    # ------------------------------------------------------------------
    def _gather_window(
        self, t0: int, t1: int, align: str, key: str | None = None
    ) -> tuple[Sketch, int, int]:
        """Fetch and merge per-unit window sketches at a common window.

        Shards answer strict windows identically (bucket arithmetic is
        global); outer windows can differ when compaction folded
        different spans per shard, so the hull is re-scattered until
        every unit resolves the same range — monotone, hence finite.
        Old-epoch units participate like any other: an empty shard
        answers the requested aligned window with the empty sketch
        (the merge identity), so epochs merge exactly by linearity.
        """
        key = self._check_key(key)
        lo, hi = int(t0), int(t1)
        for _ in range(_MAX_ALIGN_ROUNDS):
            request: dict = {"op": "sketch", "from": lo, "until": hi, "align": align}
            if key is not None:
                request["key"] = key
            responses = self._scatter_read(request)
            windows = {tuple(r["window"]) for r in responses}
            if len(windows) == 1:
                (window,) = windows
                merged = gather_merge(
                    [load_sketch(r["sketch"]) for r in responses]
                )
                return merged, int(window[0]), int(window[1])
            if align != "outer":  # pragma: no cover - defensive
                raise ClusterConfigError(
                    f"shards resolved strict window [{lo}, {hi}) "
                    f"differently: {sorted(windows)}"
                )
            lo = min(w[0] for w in windows)
            hi = max(w[1] for w in windows)
        raise ClusterConfigError(  # pragma: no cover - defensive
            f"window resolution did not converge after "
            f"{_MAX_ALIGN_ROUNDS} rounds"
        )

    def query(
        self, t0: int, t1: int, align: str = "strict", *, key: str | None = None
    ) -> Sketch:
        """The merged sketch of the window across every shard."""
        sketch, _, _ = self._gather_window(t0, t1, align, key)
        return sketch

    def estimate(
        self, t0: int, t1: int, align: str = "strict", *, key: str | None = None
    ) -> float:
        """Self-join estimate over the window (scatter–gather merge)."""
        sketch, _, _ = self._gather_window(t0, t1, align, key)
        return float(sketch.estimate())

    def estimate_window(
        self, t0: int, t1: int, align: str = "strict", *, key: str | None = None
    ) -> WindowEstimate:
        """The estimate together with the window it actually covers."""
        sketch, lo, hi = self._gather_window(t0, t1, align, key)
        return WindowEstimate(float(sketch.estimate()), lo, hi)

    def sketch_window(
        self, t0: int, t1: int, align: str = "strict", *, key: str | None = None
    ) -> tuple[Sketch, int, int]:
        """The merged window sketch plus its resolved bounds."""
        return self._gather_window(t0, t1, align, key)

    def window_bounds(
        self, t0: int, t1: int, align: str = "strict", *, key: str | None = None
    ) -> tuple[int, int]:
        """The timestamp window a query would actually cover."""
        _, lo, hi = self._gather_window(t0, t1, align, key)
        return lo, hi

    # ------------------------------------------------------------------
    # Resharding (epoch-based N → M)
    # ------------------------------------------------------------------
    def reshard(
        self,
        num_shards: int,
        replication: int | None = None,
        cutover: int | None = None,
    ) -> int:
        """Grow (or shrink) to ``num_shards`` by opening a new epoch.

        No data moves: the existing epochs keep their data, and a
        fresh epoch of empty replica sets takes ownership of every
        time bucket from ``cutover`` on, routing it under a new
        partitioner with the same seed.  ``cutover`` defaults to the
        end of the cluster's current coverage (rounded up to a bucket
        boundary), i.e. strictly after every bucket already holding
        data; events below it — including late arrivals and deletions,
        which carry the timestamp of the insert they reverse — keep
        routing under the epoch that owns their bucket, so every kind
        stays exact across the boundary.  Queries merge all epochs by
        linearity, so answers stay bit-identical to the monolithic
        store.  Returns the new epoch's index.
        """
        if self._supervisor is None:
            raise ClusterConfigError(
                "resharding needs a supervisor (a LocalCluster or "
                "equivalent) to spawn the new epoch's workers"
            )
        if int(num_shards) < 1:
            raise ClusterConfigError(
                f"a cluster needs at least one shard, got {num_shards}"
            )
        if cutover is None:
            hull = self.coverage
            cutover = self._origin if hull is None else int(hull[1])
        # Align up to a bucket boundary: a bucket is atomic, so an
        # epoch boundary inside one would split a bucket's events
        # across partitioners.
        offset = int(cutover) - self._origin
        cutover = (
            self._origin
            + -(-offset // self._bucket_width) * self._bucket_width
        )
        previous_start = self._epochs[-1].start
        if previous_start is not None and cutover < previous_start:
            raise ClusterConfigError(
                f"cutover {cutover} precedes the current epoch's own "
                f"start {previous_start}; epochs must be ordered in time"
            )
        with self._admin_lock:
            new_sets: list[list[_Replica]] = []
            for _ in range(int(num_shards)):
                clients = self._supervisor.spawn_replica_set(replication)
                new_sets.append([_Replica(c) for c in clients])
            expected_spec = self._spec.to_dict()
            for s, replicas in enumerate(new_sets):
                for r, replica in enumerate(replicas):
                    info = replica.client.request({"op": "info"})
                    if (
                        info.get("spec") != expected_spec
                        or int(info["bucket_width"]) != self._bucket_width
                        or int(info["origin"]) != self._origin
                        or bool(info.get("keyed")) != self._keyed
                    ):
                        raise ClusterConfigError(
                            f"new epoch shard {s} replica {r} "
                            f"({replica.client.address}) disagrees on spec "
                            "or bucket geometry with the cluster"
                        )
            self._epochs.append(
                _Epoch(
                    HashPartitioner(int(num_shards), seed=self._partition_seed),
                    new_sets,
                    start=int(cutover),
                )
            )
            total = sum(
                len(replicas) for _, _, replicas in self._units()
            )
            needed = max(8, 2 * total)
            if needed > self._pool_size:
                old = self._pool
                self._pool = ThreadPoolExecutor(
                    max_workers=needed,
                    thread_name_prefix="cluster-scatter",
                )
                self._pool_size = needed
                old.shutdown(wait=False)
            return len(self._epochs) - 1

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Shard count of the epoch new batches route under."""
        return len(self._epochs[-1].sets)

    @property
    def num_epochs(self) -> int:
        return len(self._epochs)

    @property
    def replication(self) -> list[int]:
        """Replica count per shard of the current epoch."""
        return [len(replicas) for replicas in self._epochs[-1].sets]

    @property
    def addresses(self) -> list[str]:
        """Every current-epoch replica's address, shard-major order."""
        return [
            replica.client.address
            for replicas in self._epochs[-1].sets
            for replica in replicas
        ]

    @property
    def failed_replicas(self) -> list[tuple[int, int, str]]:
        """``(epoch, shard, address)`` of replicas out of rotation."""
        return [
            (e, s, replica.client.address)
            for e, s, replicas in self._units()
            for replica in replicas
            if not replica.live
        ]

    @property
    def spec(self) -> SketchSpec:
        """The cluster-wide sketch spec (identical on every shard)."""
        return self._spec

    @property
    def bucket_width(self) -> int:
        return self._bucket_width

    @property
    def origin(self) -> int:
        return self._origin

    @property
    def keyed(self) -> bool:
        """Whether the workers serve keyed fleets (probed at startup)."""
        return self._keyed

    @staticmethod
    def _merged_spans(infos: Sequence[Mapping]) -> list[tuple[int, int]]:
        """Union of shard span ranges, coalesced into disjoint intervals.

        Shards hold different values, so their span lists differ; the
        cluster-level view is the merged cover — the ranges where *some*
        shard holds data.
        """
        intervals = sorted(
            (int(a), int(b)) for info in infos for a, b in info["spans"]
        )
        merged: list[tuple[int, int]] = []
        for a, b in intervals:
            if merged and a <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], b))
            else:
                merged.append((a, b))
        return merged

    @staticmethod
    def _coverage_hull(infos: Sequence[Mapping]) -> tuple[int, int] | None:
        """Hull from the oldest to the newest span across shards."""
        covered = [i["coverage"] for i in infos if i["coverage"] is not None]
        if not covered:
            return None
        return min(int(c[0]) for c in covered), max(int(c[1]) for c in covered)

    def info(self) -> dict:
        """The cluster-level summary, one answer per (epoch, shard).

        Exactly one replica answers for each replica set (hedged), so
        replicated fleets report logical totals — ``memory_words`` is
        the data's footprint, not R times it.
        """
        infos = self._scatter_read({"op": "info"})
        coverage = self._coverage_hull(infos)
        current = self._epochs[-1]
        info = {
            "kind": self._spec.kind,
            "spec": self._spec.to_dict(),
            "bucket_width": self._bucket_width,
            "origin": self._origin,
            "spans": [list(span) for span in self._merged_spans(infos)],
            "coverage": None if coverage is None else list(coverage),
            "memory_words": sum(int(i["memory_words"]) for i in infos),
            "shards": len(current.sets),
            "replication": [len(replicas) for replicas in current.sets],
            "epochs": len(self._epochs),
            "kernel_backend": sorted(
                {
                    str(i["kernel_backend"])
                    for i in infos
                    if i.get("kernel_backend")
                }
            ),
        }
        if self._keyed:
            keys: set[str] = set()
            for i in infos:
                keys.update(i.get("keys") or ())
            info["keyed"] = True
            info["keys"] = sorted(keys)
            info["key_count"] = len(keys)
        return info

    @property
    def spans(self) -> list[tuple[int, int]]:
        """Merged shard span cover (see :meth:`_merged_spans`)."""
        return self._merged_spans(self._scatter_read({"op": "info"}))

    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def coverage(self) -> tuple[int, int] | None:
        """Hull from the oldest to the newest span across shards."""
        return self._coverage_hull(self._scatter_read({"op": "info"}))

    @property
    def memory_words(self) -> int:
        """Total logical storage across shards (one replica per set)."""
        return sum(
            int(info["memory_words"])
            for info in self._scatter_read({"op": "info"})
        )

    def snapshot(self) -> dict:
        """Per-shard checkpoints plus the partition maps that routed them.

        The partitioner config is part of the snapshot because the
        shard stores are only meaningful under the assignment that
        filled them — restoring onto a different shard count or seed
        would break the value-partition invariant.  The top-level
        ``partitioner`` / ``shards`` keys describe the current epoch
        (the pre-resharding format); ``epochs`` carries every epoch.
        """
        responses = self._scatter_read({"op": "snapshot"})
        stores = [r["snapshot"] for r in responses]
        epochs_out = []
        offset = 0
        for epoch in self._epochs:
            count = len(epoch.sets)
            epochs_out.append(
                {
                    "partitioner": epoch.partitioner.to_dict(),
                    "start": epoch.start,
                    "shards": stores[offset:offset + count],
                }
            )
            offset += count
        return {
            "kind": "cluster-snapshot",
            "partitioner": self._epochs[-1].partitioner.to_dict(),
            "shards": epochs_out[-1]["shards"],
            "epochs": epochs_out,
            "replication": [len(replicas) for replicas in self._epochs[-1].sets],
        }

    def restore(self, snapshot: Mapping) -> None:
        """Load a :meth:`snapshot` back onto the fleet, every replica.

        The snapshot's topology (epoch count, per-epoch shard counts
        and partitioners) must match this cluster's — per-shard stores
        are only meaningful under the partition map that filled them.
        Every replica of a set receives the same absolute state, which
        also heals any divergence as a side effect.
        """
        if not isinstance(snapshot, Mapping) or snapshot.get("kind") != "cluster-snapshot":
            raise ClusterConfigError(
                "restore needs a cluster-snapshot mapping (see snapshot())"
            )
        if "epochs" in snapshot:
            epochs_in = list(snapshot["epochs"])
        else:
            epochs_in = [
                {
                    "partitioner": snapshot.get("partitioner"),
                    "shards": snapshot.get("shards"),
                }
            ]
        if len(epochs_in) != len(self._epochs):
            raise ClusterConfigError(
                f"snapshot has {len(epochs_in)} epoch(s), this cluster has "
                f"{len(self._epochs)}"
            )
        for index, (entry, epoch) in enumerate(zip(epochs_in, self._epochs)):
            partitioner = entry.get("partitioner")
            if dict(partitioner or {}) != epoch.partitioner.to_dict():
                raise ClusterConfigError(
                    f"snapshot epoch {index} partitioner {partitioner!r} "
                    f"disagrees with the cluster's "
                    f"{epoch.partitioner.to_dict()!r}"
                )
            if entry.get("start") != epoch.start:
                raise ClusterConfigError(
                    f"snapshot epoch {index} starts at "
                    f"{entry.get('start')!r}, the cluster's epoch at "
                    f"{epoch.start!r}"
                )
            shards = entry.get("shards")
            if not isinstance(shards, Sequence) or len(shards) != len(epoch.sets):
                raise ClusterConfigError(
                    f"snapshot epoch {index} carries "
                    f"{0 if not isinstance(shards, Sequence) else len(shards)} "
                    f"shard store(s), the cluster has {len(epoch.sets)}"
                )
        futures: dict = {}
        for entry, epoch in zip(epochs_in, self._epochs):
            for store, replicas in zip(entry["shards"], epoch.sets):
                payload = {"op": "restore", "snapshot": store}
                for replica in self._targets(replicas):
                    futures[
                        self._pool.submit(replica.client.request, dict(payload))
                    ] = replica
        request_error = None
        for future, replica in futures.items():
            try:
                future.result()
            except ShardRequestError as exc:
                if request_error is None:
                    request_error = exc
            except ShardUnreachableError as exc:
                replica.dead, replica.error = True, exc
            except ShardProtocolError as exc:
                replica.suspect, replica.error = True, exc
            else:
                self._clear_if_marked(replica)
        self._repair()
        if request_error is not None:
            raise request_error

    def stats(self, key: str | None = None) -> dict:
        """Cache statistics summed over every replica, plus topology.

        ``shards`` is the current epoch's shard count (the historical
        field); ``replication`` and ``per_replica`` break the totals
        down so a replicated fleet's per-replica behaviour is visible
        instead of silently folded into one number.

        Load accounting rides along: ``items_per_shard`` is each
        shard's net logical item count (one replica per set — logical
        load, not R× it) and ``items`` their sum, so partition skew is
        observable.  On a keyed fleet ``items_by_key`` merges the
        per-key inventories across shards (restricted to one key when
        ``key`` is given), exposing hot tenants the same way.
        """
        payload: dict = {"op": "stats"}
        if key is not None:
            if not self._keyed:
                raise TypeError(
                    f"this cluster serves an unkeyed store; "
                    f"got an unexpected keyword argument key={key!r}"
                )
            payload["key"] = str(key)
        groups = self._scatter_all(payload)
        totals: dict = {}
        for group in groups:
            for _replica, response in group:
                for field, value in response["cache"].items():
                    if isinstance(value, (int, float)):
                        totals[field] = totals.get(field, 0) + value
        current_count = len(self._epochs[-1].sets)
        totals["shards"] = current_count
        totals["replication"] = [
            len(replicas) for replicas in self._epochs[-1].sets
        ]
        totals["replicas"] = sum(totals["replication"])
        totals["per_replica"] = [
            [dict(response["cache"]) for _replica, response in group]
            for group in groups[-current_count:]
        ]
        # Logical (not replica-multiplied) load: one answer per replica
        # set.  ``items_per_shard`` covers the current epoch (the sets
        # new batches route to); ``items`` sums every epoch, so
        # resharded history still counts.
        unit_items = [int(g[0][1]["cache"].get("items", 0)) for g in groups]
        items_by_key: dict[str, int] = {}
        for group in groups:
            cache = group[0][1]["cache"]
            for k, v in (cache.get("items_by_key") or {}).items():
                items_by_key[k] = items_by_key.get(k, 0) + int(v)
        totals["items"] = sum(unit_items)
        totals["items_per_shard"] = unit_items[-current_count:]
        totals["kernel_backend"] = sorted(
            {
                str(response["cache"]["kernel_backend"])
                for group in groups
                for _replica, response in group
                if response["cache"].get("kernel_backend")
            }
        )
        if self._keyed:
            totals["keyed"] = True
            totals["items_by_key"] = {
                k: items_by_key[k] for k in sorted(items_by_key)
            }
            totals["key_count"] = len(items_by_key)
        return totals

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown_workers(self) -> int:
        """Send the wire ``shutdown`` op to every replica; count the acks."""
        acked = 0
        for _e, _s, replicas in self._units():
            for replica in replicas:
                try:
                    replica.client.request({"op": "shutdown"})
                    acked += 1
                except (OSError, ValueError):
                    pass  # already gone; the spawner's signals handle the rest
        return acked

    def close(self) -> None:
        """Release the scatter pool and every shard connection."""
        self._pool.shutdown(wait=True)
        for _e, _s, replicas in self._units():
            for replica in replicas:
                replica.client.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterService(shards={self.num_shards}, "
            f"replication={self.replication}, epochs={self.num_epochs}, "
            f"kind={self._spec.kind!r}, width={self._bucket_width})"
        )
