"""The cluster-aware serving facade: route, scatter, gather, merge.

:class:`ClusterService` satisfies the same estimate / sketch / ingest
/ info surface as :class:`~repro.service.service.SketchService`, so
everything written against the single-node service — the generalized
wire dispatch table, ``CatalogService.at_window``-style consumers, the
CLI — works unchanged against a fleet of shard workers:

* **Ingest** routes each batch by the stable value-hash partitioner
  (:class:`~repro.engine.partition.HashPartitioner`) and scatters the
  per-shard slices concurrently.  Routing by *value* (never by time
  or round-robin) is the invariant that makes everything else true:
  per-shard sub-streams are a value partition of the global stream,
  and a deletion reaches the shard holding the inserts it retracts.
* **Queries** scatter the window to every shard, gather the per-shard
  merged sketches over the wire, and
  :func:`~repro.cluster.partitioned.gather_merge` them — for every
  mergeable kind the result is **bit-identical** to a monolithic
  :class:`~repro.store.windowed.WindowedSketchStore` over the same
  stream (linearity: elementwise integer sums commute with the
  partition).  Non-mergeable sampler kinds are refused at
  construction with a typed
  :class:`~repro.cluster.errors.ShardMergeUnsupportedError`.
* **Windows** are resolved to a common fixpoint: under
  ``align="outer"`` shards may expand a window differently (their
  compacted spans differ because they hold different values), so the
  gather loop re-scatters the union hull until every shard agrees —
  the reported window always describes the returned sketch.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..engine.partition import HashPartitioner
from ..engine.protocol import Sketch
from ..engine.registry import load_sketch
from ..service.service import WindowEstimate
from ..store.spec import SketchSpec
from .client import ShardClient
from .errors import ClusterConfigError, ShardMergeUnsupportedError
from .partitioned import gather_merge

__all__ = ["ClusterService"]

#: Outer-alignment gather rounds before declaring divergence a bug.
_MAX_ALIGN_ROUNDS = 32


class ClusterService:
    """Scatter–gather serving over hash-partitioned shard workers.

    Parameters
    ----------
    clients:
        One :class:`~repro.cluster.client.ShardClient` per shard, in
        shard order — the order **is** the partition map, so it must
        match the order ingest has always used against these workers.
    partition_seed:
        Seed of the value-hash partitioner.  Defaults to the sketch
        spec's own seed, so a front end restarted against the same
        workers routes identically without extra coordination.

    Raises
    ------
    ClusterConfigError:
        No shards, unreachable shards at construction, or workers
        whose spec / bucket geometry disagree.
    ShardMergeUnsupportedError:
        The workers hold a sampler kind that cannot be gather-merged.
    """

    def __init__(
        self,
        clients: Sequence[ShardClient],
        partition_seed: int | None = None,
    ):
        if not clients:
            raise ClusterConfigError("a cluster needs at least one shard")
        self._clients = list(clients)
        self._pool = ThreadPoolExecutor(
            max_workers=len(self._clients),
            thread_name_prefix="cluster-scatter",
        )
        try:
            infos = self._scatter({"op": "info"})
            reference = infos[0]
            for client, info in zip(self._clients[1:], infos[1:]):
                for field in ("spec", "bucket_width", "origin"):
                    if info.get(field) != reference.get(field):
                        raise ClusterConfigError(
                            f"shard {client.address} disagrees on {field}: "
                            f"{info.get(field)!r} != {reference.get(field)!r} "
                            f"(shard {self._clients[0].address})"
                        )
            if "spec" not in reference:
                raise ClusterConfigError(
                    f"shard {self._clients[0].address} reported no sketch "
                    "spec; workers must run this repo's generalized server"
                )
            self._spec = SketchSpec.from_dict(reference["spec"])
            if not self._spec.is_mergeable:
                raise ShardMergeUnsupportedError(
                    f"sketch kind {self._spec.kind!r} cannot be served by "
                    "scatter–gather: per-shard sketches do not combine into "
                    "the monolithic sketch (position-based sampling)"
                )
        except BaseException:
            # A failed construction must not leak scatter threads: the
            # caller has no handle to close a half-built service.
            self._pool.shutdown(wait=True)
            raise
        self._bucket_width = int(reference["bucket_width"])
        self._origin = int(reference["origin"])
        if partition_seed is None:
            partition_seed = int(self._spec.params.get("seed", 0))
        self._partitioner = HashPartitioner(
            len(self._clients), seed=partition_seed
        )

    # ------------------------------------------------------------------
    # Scatter plumbing
    # ------------------------------------------------------------------
    def _scatter(
        self, payload: Mapping, only: Sequence[int] | None = None
    ) -> list[dict]:
        """One request to every shard (or ``only`` these), concurrently.

        Responses come back in shard order; the first failure
        propagates after all in-flight requests finish, so a partial
        scatter never leaves orphaned futures behind.
        """
        targets = (
            self._clients if only is None else [self._clients[i] for i in only]
        )
        futures = [
            self._pool.submit(client.request, dict(payload))
            for client in targets
        ]
        results, first_error = [], None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def ingest(
        self,
        timestamps: np.ndarray | Iterable[int],
        values: np.ndarray | Iterable[int],
        counts: np.ndarray | Iterable[int] | None = None,
        max_workers: int | None = None,
    ) -> None:
        """Value-hash route one timestamped batch across the shards.

        Shards receive their slices concurrently; each worker applies
        its slice atomically under its own service's write lock.
        Atomicity is therefore **per shard, not per batch**: there is
        no cross-shard transaction, so a concurrent reader can observe
        shard 0 after its slice landed and shard 1 before — a torn
        state the single-node :class:`~repro.service.service.
        SketchService` (one write lock) can never expose.  Callers who
        need batch-level read isolation must serialise their own
        queries behind their ingests; once this call returns, every
        later query observes the whole batch.  ``max_workers`` is
        accepted for surface compatibility — the cluster's parallelism
        is the worker processes themselves.  A shard failure
        propagates after all sends settle; as with a rejected store
        batch, treat a failed cluster batch as a reason to restore
        from the last snapshot (other shards may already have applied
        their slices).
        """
        ts = np.asarray(timestamps, dtype=np.int64)
        vals = np.asarray(values, dtype=np.int64)
        if ts.ndim != 1 or vals.ndim != 1 or ts.shape != vals.shape:
            raise ValueError(
                f"timestamps {ts.shape} and values {vals.shape} must be "
                "equal-length 1-D arrays"
            )
        cnts = None
        if counts is not None:
            cnts = np.asarray(counts, dtype=np.int64)
            if cnts.shape != vals.shape:
                raise ValueError(
                    f"counts {cnts.shape} must match values {vals.shape}"
                )
        if vals.size == 0:
            return
        futures = []
        for shard, idx in enumerate(self._partitioner.split(vals)):
            if idx.size == 0:
                continue
            # Raw arrays, not .tolist(): a binary client packs them
            # straight onto the wire, and a JSON client serialises
            # them itself — materialising Python lists here would pay
            # the conversion even on the zero-copy path.
            payload: dict = {
                "op": "ingest",
                "timestamps": ts[idx],
                "values": vals[idx],
            }
            if cnts is not None:
                payload["counts"] = cnts[idx]
            futures.append(
                self._pool.submit(self._clients[shard].request, payload)
            )
        first_error = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def compact(self, before: int | None = None) -> int:
        """Fold old spans on every shard; returns total spans folded."""
        payload: dict = {"op": "compact"}
        if before is not None:
            payload["before"] = int(before)
        return sum(r["folded"] for r in self._scatter(payload))

    def evict(self, before: int) -> int:
        """Forget old spans on every shard; returns total spans dropped."""
        responses = self._scatter({"op": "evict", "before": int(before)})
        return sum(r["evicted"] for r in responses)

    # ------------------------------------------------------------------
    # Queries (scatter–gather merge-on-query)
    # ------------------------------------------------------------------
    def _gather_window(
        self, t0: int, t1: int, align: str
    ) -> tuple[Sketch, int, int]:
        """Fetch and merge per-shard window sketches at a common window.

        Shards answer strict windows identically (bucket arithmetic is
        global); outer windows can differ when compaction folded
        different spans per shard, so the hull is re-scattered until
        every shard resolves the same range — monotone, hence finite.
        """
        lo, hi = int(t0), int(t1)
        for _ in range(_MAX_ALIGN_ROUNDS):
            responses = self._scatter(
                {"op": "sketch", "from": lo, "until": hi, "align": align}
            )
            windows = {tuple(r["window"]) for r in responses}
            if len(windows) == 1:
                (window,) = windows
                merged = gather_merge(
                    [load_sketch(r["sketch"]) for r in responses]
                )
                return merged, int(window[0]), int(window[1])
            if align != "outer":  # pragma: no cover - defensive
                raise ClusterConfigError(
                    f"shards resolved strict window [{lo}, {hi}) "
                    f"differently: {sorted(windows)}"
                )
            lo = min(w[0] for w in windows)
            hi = max(w[1] for w in windows)
        raise ClusterConfigError(  # pragma: no cover - defensive
            f"window resolution did not converge after "
            f"{_MAX_ALIGN_ROUNDS} rounds"
        )

    def query(self, t0: int, t1: int, align: str = "strict") -> Sketch:
        """The merged sketch of the window across every shard."""
        sketch, _, _ = self._gather_window(t0, t1, align)
        return sketch

    def estimate(self, t0: int, t1: int, align: str = "strict") -> float:
        """Self-join estimate over the window (scatter–gather merge)."""
        sketch, _, _ = self._gather_window(t0, t1, align)
        return float(sketch.estimate())

    def estimate_window(
        self, t0: int, t1: int, align: str = "strict"
    ) -> WindowEstimate:
        """The estimate together with the window it actually covers."""
        sketch, lo, hi = self._gather_window(t0, t1, align)
        return WindowEstimate(float(sketch.estimate()), lo, hi)

    def sketch_window(
        self, t0: int, t1: int, align: str = "strict"
    ) -> tuple[Sketch, int, int]:
        """The merged window sketch plus its resolved bounds."""
        return self._gather_window(t0, t1, align)

    def window_bounds(
        self, t0: int, t1: int, align: str = "strict"
    ) -> tuple[int, int]:
        """The timestamp window a query would actually cover."""
        _, lo, hi = self._gather_window(t0, t1, align)
        return lo, hi

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._clients)

    @property
    def addresses(self) -> list[str]:
        return [client.address for client in self._clients]

    @property
    def spec(self) -> SketchSpec:
        """The cluster-wide sketch spec (identical on every shard)."""
        return self._spec

    @property
    def bucket_width(self) -> int:
        return self._bucket_width

    @property
    def origin(self) -> int:
        return self._origin

    @staticmethod
    def _merged_spans(infos: Sequence[Mapping]) -> list[tuple[int, int]]:
        """Union of shard span ranges, coalesced into disjoint intervals.

        Shards hold different values, so their span lists differ; the
        cluster-level view is the merged cover — the ranges where *some*
        shard holds data.
        """
        intervals = sorted(
            (int(a), int(b)) for info in infos for a, b in info["spans"]
        )
        merged: list[tuple[int, int]] = []
        for a, b in intervals:
            if merged and a <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], b))
            else:
                merged.append((a, b))
        return merged

    @staticmethod
    def _coverage_hull(infos: Sequence[Mapping]) -> tuple[int, int] | None:
        """Hull from the oldest to the newest span across shards."""
        covered = [i["coverage"] for i in infos if i["coverage"] is not None]
        if not covered:
            return None
        return min(int(c[0]) for c in covered), max(int(c[1]) for c in covered)

    def info(self) -> dict:
        """The cluster-level summary, from one scatter to the fleet.

        A single ``info`` round-trip per shard answers every field —
        the wire ``info`` op against a front end costs N shard
        requests, not one per summary field.
        """
        infos = self._scatter({"op": "info"})
        coverage = self._coverage_hull(infos)
        return {
            "kind": self._spec.kind,
            "spec": self._spec.to_dict(),
            "bucket_width": self._bucket_width,
            "origin": self._origin,
            "spans": [list(span) for span in self._merged_spans(infos)],
            "coverage": None if coverage is None else list(coverage),
            "memory_words": sum(int(i["memory_words"]) for i in infos),
        }

    @property
    def spans(self) -> list[tuple[int, int]]:
        """Merged shard span cover (see :meth:`_merged_spans`)."""
        return self._merged_spans(self._scatter({"op": "info"}))

    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def coverage(self) -> tuple[int, int] | None:
        """Hull from the oldest to the newest span across shards."""
        return self._coverage_hull(self._scatter({"op": "info"}))

    @property
    def memory_words(self) -> int:
        """Total storage across every shard's bucket sketches."""
        return sum(
            int(info["memory_words"]) for info in self._scatter({"op": "info"})
        )

    def snapshot(self) -> dict:
        """Per-shard checkpoints plus the partition map that routed them.

        The partitioner config is part of the snapshot because the
        shard stores are only meaningful under the assignment that
        filled them — restoring onto a different shard count or seed
        would break the value-partition invariant.
        """
        responses = self._scatter({"op": "snapshot"})
        return {
            "kind": "cluster-snapshot",
            "partitioner": self._partitioner.to_dict(),
            "shards": [r["snapshot"] for r in responses],
        }

    def stats(self) -> dict:
        """Shard cache statistics, summed, plus the shard count."""
        totals: dict = {}
        for response in self._scatter({"op": "stats"}):
            for key, value in response["cache"].items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        totals["shards"] = self.num_shards
        return totals

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown_workers(self) -> int:
        """Send the wire ``shutdown`` op to every shard; count the acks."""
        acked = 0
        for client in self._clients:
            try:
                client.request({"op": "shutdown"})
                acked += 1
            except (OSError, ValueError):
                pass  # already gone; the spawner's signals handle the rest
        return acked

    def close(self) -> None:
        """Release the scatter pool and every shard connection."""
        self._pool.shutdown(wait=True)
        for client in self._clients:
            client.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterService(shards={self.addresses}, "
            f"kind={self._spec.kind!r}, width={self._bucket_width})"
        )
