"""repro — Tracking Join and Self-Join Sizes in Limited Storage.

A full, production-quality reproduction of Alon, Gibbons, Matias &
Szegedy (PODS 1999 / JCSS 2002): the tug-of-war (AMS) and sample-count
self-join trackers with insertion *and deletion* support, the
naive-sampling baseline, k-TW and sampling join signatures, the
analytic bounds, the 13 Table 1 data-set generators, and an experiment
harness regenerating every figure and table of the paper's evaluation.

On top of the algorithms sits the **engine** (:mod:`repro.engine`): a
common :class:`Sketch` protocol, a kind-keyed serialization registry
(:func:`dump_sketch` / :func:`load_sketch`), vectorised bulk ingestion
(:func:`ingest_stream`, batched ``replay``), and a sharded
build-and-merge path (:func:`sharded_build`) for parallel loading.
The **store** layer (:mod:`repro.store`) adds continuous maintenance:
:class:`WindowedSketchStore` buckets timestamped updates and answers
estimates over arbitrary time windows by merging bucket sketches on
the fly, and :class:`WindowedSignatureCatalog` lifts that to windowed
join-size estimates between relations.  The **service** layer
(:mod:`repro.service`) serves those estimates under concurrent load:
:class:`SketchService` / :class:`CatalogService` add reader–writer
snapshot isolation, a merged-window LRU cache with per-dirty-bucket
invalidation, and request coalescing, and
:class:`SketchServiceServer` (the ``repro serve`` command) exposes it
all as line-delimited JSON over TCP.  The **cluster** layer
(:mod:`repro.cluster`) scales that out across processes:
:class:`LocalCluster` spawns hash-partitioned shard workers and
:class:`ClusterService` (``repro serve --shards N``) routes ingest by
stable value-hash and answers windows by scatter–gather merge —
bit-identical to a monolithic store, because the sketches are linear.
The **planner** layer
(:mod:`repro.planner`) closes the paper's motivating loop: join-graph
plan enumeration (greedy and DPsize-style dynamic programming, the
``repro plan`` command) over pluggable cardinality policies — exact
statistics, tug-of-war sketch estimates, or sketch estimates inflated
by the Lemma 4.4 error bound for pessimistic planning.

Quick start::

    import numpy as np
    from repro import TugOfWarSketch, self_join_size

    stream = np.random.default_rng(0).zipf(1.6, size=100_000) % 10_000
    sketch = TugOfWarSketch(s1=256, s2=5, seed=42)
    sketch.update_from_stream(stream)          # or .insert(v) / .delete(v)
    print(sketch.estimate(), self_join_size(stream))

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
figure/table reproductions.
"""

from .cluster import (
    ClusterService,
    LocalCluster,
    ShardClient,
    ShardMergeUnsupportedError,
    ShardUnreachableError,
    gather_merge,
    partitioned_build,
)
from .core import (
    MERSENNE_PRIME_31,
    DistinctCountSketch,
    FkMomentSketch,
    FrequencyMomentTracker,
    FrequencyVector,
    JoinSignatureFamily,
    MultiJoinFamily,
    MultiJoinSignature,
    NaiveSamplingEstimator,
    PolynomialHashFamily,
    SampleCountFastQuery,
    SampleCountSketch,
    SampleJoinSignature,
    SignHashFamily,
    TugOfWarJoinSignature,
    TugOfWarSketch,
    UnsupportedMomentError,
    bounds,
    distinct_values,
    exact_moment,
    fk_estimate_offline,
    fk_sample_size_bound,
    join_size,
    median_of_means,
    naive_sampling_estimate_offline,
    sample_count_estimate_offline,
    sample_join_estimate,
    self_join_size,
    split_parameters,
)
from .engine import (
    ContiguousPartitioner,
    HashPartitioner,
    MergeUnsupportedError,
    Partitioner,
    Sketch,
    SketchPayloadError,
    UnknownSketchKindError,
    coalesce_operations,
    dump_sketch,
    dumps_sketch,
    ingest_operations,
    ingest_stream,
    load_sketch,
    loads_sketch,
    merge_sketches,
    shard_stream,
    sharded_build,
    sketch_kinds,
)
from .planner import (
    BoundAwareCardinalities,
    CrossProductError,
    ExactCardinalities,
    JoinGraph,
    PlanNode,
    SketchCardinalities,
    enumerate_dp,
    enumerate_greedy,
    evaluate_plan,
    plan_join,
    render_plan,
)
from .relational import (
    Relation,
    SampleCatalog,
    SignatureCatalog,
    UnknownRelationError,
    UnknownRelationSizeError,
    WindowedSignatureCatalog,
    choose_join_order,
    plan_cost,
)
from .service import CatalogService, KeyedSketchService, SketchService, SketchServiceServer
from .store import (
    KeyCardinalityError,
    KeyedSketchStore,
    SketchSpec,
    WindowAlignmentError,
    WindowedSketchStore,
)
from .streams import (
    Delete,
    Insert,
    OperationSequence,
    Query,
    ReservoirSample,
    canonical_sequence,
    replay,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core sketches and estimators
    "TugOfWarSketch",
    "SampleCountSketch",
    "SampleCountFastQuery",
    "NaiveSamplingEstimator",
    "sample_count_estimate_offline",
    "naive_sampling_estimate_offline",
    # exact computation
    "FrequencyVector",
    "self_join_size",
    "join_size",
    "distinct_values",
    # join signatures
    "JoinSignatureFamily",
    "TugOfWarJoinSignature",
    "SampleJoinSignature",
    "sample_join_estimate",
    "MultiJoinFamily",
    "MultiJoinSignature",
    # frequency moments
    "FrequencyMomentTracker",
    "FkMomentSketch",
    "DistinctCountSketch",
    "UnsupportedMomentError",
    "exact_moment",
    "fk_estimate_offline",
    "fk_sample_size_bound",
    # hashing
    "PolynomialHashFamily",
    "SignHashFamily",
    "MERSENNE_PRIME_31",
    # combination machinery
    "median_of_means",
    "split_parameters",
    # analytic bounds
    "bounds",
    # engine: protocol, serialization registry, ingestion, sharding
    "Sketch",
    "MergeUnsupportedError",
    "sketch_kinds",
    "dump_sketch",
    "load_sketch",
    "dumps_sketch",
    "loads_sketch",
    "UnknownSketchKindError",
    "SketchPayloadError",
    "coalesce_operations",
    "ingest_stream",
    "ingest_operations",
    "shard_stream",
    "merge_sketches",
    "sharded_build",
    "Partitioner",
    "ContiguousPartitioner",
    "HashPartitioner",
    # cluster: hash-partitioned shard workers, scatter–gather serving
    "ClusterService",
    "LocalCluster",
    "ShardClient",
    "ShardMergeUnsupportedError",
    "ShardUnreachableError",
    "gather_merge",
    "partitioned_build",
    # relational layer
    "Relation",
    "SignatureCatalog",
    "SampleCatalog",
    "WindowedSignatureCatalog",
    "UnknownRelationError",
    "UnknownRelationSizeError",
    "choose_join_order",
    "plan_cost",
    # planner: join graphs, enumerators, estimator policies
    "JoinGraph",
    "PlanNode",
    "render_plan",
    "evaluate_plan",
    "plan_join",
    "enumerate_greedy",
    "enumerate_dp",
    "ExactCardinalities",
    "SketchCardinalities",
    "BoundAwareCardinalities",
    "CrossProductError",
    # windowed store
    "SketchSpec",
    "WindowedSketchStore",
    "KeyedSketchStore",
    "KeyCardinalityError",
    "WindowAlignmentError",
    # estimation service
    "SketchService",
    "KeyedSketchService",
    "CatalogService",
    "SketchServiceServer",
    # streams
    "Insert",
    "Delete",
    "Query",
    "OperationSequence",
    "replay",
    "canonical_sequence",
    "ReservoirSample",
]
