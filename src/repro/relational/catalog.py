"""Signature catalogs: per-relation synopses answering pairwise joins.

The scheme of Section 4: "maintain a small signature of each relation
independently, such that join sizes can be quickly and accurately
estimated between any pair of relations using only these signatures" —
no per-pair state, so adding a relation costs one signature, not a row
of a quadratic matrix.

:class:`SignatureCatalog` uses k-TW signatures (Section 4.3);
:class:`SampleCatalog` uses Bernoulli sample signatures (Section 4.1).
Both expose the same interface so the optimizer demo and the join
benchmarks can swap them.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.join import JoinSignatureFamily, SampleJoinSignature

__all__ = ["SignatureCatalog", "SampleCatalog", "UnknownRelationError"]


class UnknownRelationError(LookupError):
    """An estimate was requested for a relation the catalog never saw.

    Deliberately *not* a ``KeyError``: the raw mapping miss this used
    to surface as looks like an internal bug, whereas an unregistered
    relation is a caller-level condition with an obvious fix — so the
    message names the relation, lists what *is* registered, and says
    how to register.
    """

    def __init__(self, name: str, registered: Iterable[str]):
        self.name = name
        self.registered = sorted(registered)
        known = ", ".join(self.registered) or "<none>"
        super().__init__(
            f"relation {name!r} is not registered in this catalog "
            f"(registered relations: {known}); call register({name!r}) "
            "before routing updates or estimates to it"
        )


class SignatureCatalog:
    """Tracks one k-TW join signature per registered relation.

    Parameters
    ----------
    k:
        Signature size (memory words per relation); all signatures
        share one :class:`~repro.core.join.JoinSignatureFamily` so any
        pair can be estimated.
    seed:
        Seed for the shared sign functions.
    """

    def __init__(self, k: int, seed: int | None = None):
        self._family = JoinSignatureFamily(k, seed=seed)
        self._signatures: dict[str, object] = {}

    # -- registration ------------------------------------------------------
    def register(self, name: str, values: Iterable[int] | np.ndarray | None = None):
        """Start tracking a relation; optionally bulk-load its values."""
        if name in self._signatures:
            raise KeyError(f"relation {name!r} already registered")
        sig = self._family.signature()
        if values is not None:
            sig.update_from_stream(np.asarray(values, dtype=np.int64))
        self._signatures[name] = sig
        return sig

    def drop(self, name: str) -> None:
        """Stop tracking a relation."""
        if name not in self._signatures:
            raise UnknownRelationError(name, self._signatures)
        del self._signatures[name]

    # -- incremental maintenance --------------------------------------------
    def insert(self, name: str, value: int) -> None:
        """Route insert(v) on a relation to its signature."""
        self._sig(name).insert(value)

    def delete(self, name: str, value: int) -> None:
        """Route delete(v) on a relation to its signature."""
        self._sig(name).delete(value)

    def insert_many(self, name: str, values: Iterable[int] | np.ndarray) -> None:
        """Bulk-insert a batch of tuples through the vectorised path.

        Equivalent to per-tuple :meth:`insert` calls but the signature
        folds the whole batch in with chunked matrix products.
        """
        self._sig(name).update_from_stream(np.asarray(values, dtype=np.int64))

    def update_from_frequencies(
        self,
        name: str,
        values: Iterable[int] | np.ndarray,
        counts: Iterable[int] | np.ndarray,
    ) -> None:
        """Apply a signed histogram of tuple changes to one relation."""
        self._sig(name).update_from_frequencies(values, counts)

    # -- estimation ----------------------------------------------------------
    def join_estimate(self, left: str, right: str) -> float:
        """k-TW estimate of |left join right| from signatures alone."""
        return self._sig(left).join_estimate(self._sig(right))

    def self_join_estimate(self, name: str) -> float:
        """k-TW estimate of SJ(name)."""
        return self._sig(name).self_join_estimate()

    def join_error_bound(self, left: str, right: str) -> float:
        """Lemma 4.4 standard error using the *estimated* self-joins.

        sqrt(2 SJ(F) SJ(G) / k) with the signature's own SJ estimates
        plugged in — the bound a real optimizer could compute online.
        """
        sj_l = max(0.0, self.self_join_estimate(left))
        sj_r = max(0.0, self.self_join_estimate(right))
        return self._sig(left).error_bound(sj_l, sj_r)

    # -- introspection ---------------------------------------------------------
    @property
    def relations(self) -> list[str]:
        """Registered relation names (sorted)."""
        return sorted(self._signatures)

    @property
    def k(self) -> int:
        """Words per relation signature."""
        return self._family.k

    @property
    def memory_words(self) -> int:
        """Total catalog storage: k words per registered relation."""
        return self._family.k * len(self._signatures)

    def _sig(self, name: str):
        sig = self._signatures.get(name)
        if sig is None:
            raise UnknownRelationError(name, self._signatures)
        return sig

    def __contains__(self, name: str) -> bool:
        return name in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SignatureCatalog(k={self.k}, relations={len(self)})"


class SampleCatalog:
    """Tracks one Bernoulli sample signature per relation (Section 4.1)."""

    def __init__(self, p: float, seed: int | None = None):
        if not 0.0 < p <= 1.0:
            raise ValueError(f"sampling probability must be in (0, 1], got {p}")
        self.p = float(p)
        self._seed_seq = np.random.SeedSequence(seed)
        self._signatures: dict[str, SampleJoinSignature] = {}

    def register(self, name: str, values: Iterable[int] | np.ndarray | None = None):
        """Start tracking a relation; optionally bulk-load its values."""
        if name in self._signatures:
            raise KeyError(f"relation {name!r} already registered")
        child_seed = self._seed_seq.spawn(1)[0]
        sig = SampleJoinSignature(self.p, seed=int(child_seed.generate_state(1)[0]))
        if values is not None:
            sig.update_from_stream(np.asarray(values, dtype=np.int64))
        self._signatures[name] = sig
        return sig

    def drop(self, name: str) -> None:
        """Stop tracking a relation."""
        if name not in self._signatures:
            raise UnknownRelationError(name, self._signatures)
        del self._signatures[name]

    def insert(self, name: str, value: int) -> None:
        """Route insert(v) on a relation to its signature."""
        self._sig(name).insert(value)

    def delete(self, name: str, value: int) -> None:
        """Route delete(v) on a relation to its signature."""
        self._sig(name).delete(value)

    def insert_many(self, name: str, values: Iterable[int] | np.ndarray) -> None:
        """Bulk-insert a batch of tuples via one vectorised Bernoulli draw."""
        self._sig(name).update_from_stream(np.asarray(values, dtype=np.int64))

    def join_estimate(self, left: str, right: str) -> float:
        """t_cross estimate of |left join right|."""
        return self._sig(left).join_estimate(self._sig(right))

    def self_join_estimate(self, name: str) -> float:
        """Scaled sample self-join estimate of SJ(name)."""
        return self._sig(name).self_join_estimate()

    @property
    def relations(self) -> list[str]:
        """Registered relation names (sorted)."""
        return sorted(self._signatures)

    @property
    def memory_words(self) -> int:
        """Total stored sample values across relations."""
        return sum(sig.memory_words for sig in self._signatures.values())

    def _sig(self, name: str) -> SampleJoinSignature:
        sig = self._signatures.get(name)
        if sig is None:
            raise UnknownRelationError(name, self._signatures)
        return sig

    def __contains__(self, name: str) -> bool:
        return name in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SampleCatalog(p={self.p}, relations={len(self)})"
