"""A toy greedy join-order chooser driven by size estimates.

The paper's motivation: "Query optimizers rely on fast, high-quality
estimates of join sizes in order to select between various join plans."
This module closes that loop with the smallest useful optimizer — a
greedy left-deep join-order chooser whose only input is a
``join_estimate(left, right)`` oracle, so it runs identically on exact
statistics, a :class:`~repro.relational.catalog.SignatureCatalog`, or a
:class:`~repro.relational.catalog.SampleCatalog`.  The join-estimation
example and benchmark use it to show that k-TW estimates select the
same (or nearly the same) plan as exact statistics while the sample
catalog at equal storage often does not.

Cost model: the classic sum of intermediate result sizes.  Estimating
the size of a multi-way intermediate from pairwise signatures uses the
standard independence heuristic (product of pairwise selectivities),
which is exactly what real optimizers do with pairwise statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

__all__ = [
    "JoinPlan",
    "choose_join_order",
    "plan_cost",
    "EstimatingCatalog",
    "UnknownRelationSizeError",
]


class EstimatingCatalog(Protocol):
    """Anything that can estimate pairwise join sizes by relation name."""

    def join_estimate(self, left: str, right: str) -> float:
        """Estimated |left join right| for two registered relations."""
        ...


class UnknownRelationSizeError(LookupError):
    """A plan was requested over a relation with no recorded size.

    Deliberately *not* a ``KeyError`` (same policy as
    :class:`~repro.relational.catalog.UnknownRelationError`): the raw
    mapping miss this used to surface as looks like an internal bug,
    whereas a missing cardinality is a caller-level condition with an
    obvious fix — so the message names the relation, lists what *is*
    recorded, and says what to supply.
    """

    def __init__(self, name: str, sizes: Mapping[str, int]):
        self.name = name
        self.recorded = sorted(sizes)
        known = ", ".join(self.recorded) or "<none>"
        super().__init__(
            f"no size recorded for relation {name!r} (sizes recorded for: "
            f"{known}); every joined relation needs an entry in `sizes` — "
            "cardinalities are one counter each, tracked exactly"
        )


def _checked_names(
    relations: Sequence[str],
    sizes: Mapping[str, int],
    what: str,
    dedupe: bool = True,
) -> list[str]:
    """Relation names validated against ``sizes``, order preserved.

    ``dedupe=True`` collapses repeats (a relation set, as
    :func:`choose_join_order` accepts); ``dedupe=False`` rejects them
    (an explicit join *order* repeating a relation is a caller error —
    silently dropping the repeat would score a different plan than the
    one passed in).
    """
    names = list(dict.fromkeys(relations)) if dedupe else list(relations)
    if not dedupe and len(set(names)) != len(names):
        raise ValueError(f"{what} order repeats a relation: {names}")
    if len(names) < 2:
        raise ValueError(f"{what} needs at least two relations, got {names}")
    for name in names:
        if name not in sizes:
            raise UnknownRelationSizeError(name, sizes)
        if int(sizes[name]) < 0:
            raise ValueError(
                f"relation {name!r} has negative size {sizes[name]}"
            )
    return names


def _checked_estimate(estimate: float, left: str, right: str) -> float:
    """A pairwise estimate clamped to >= 0, rejecting NaN/inf.

    A degenerate (non-finite) estimate would silently poison every
    comparison in the greedy loop — NaN compares false against
    everything — so it is rejected here with the offending pair named
    rather than surfacing later as a nonsensical plan.
    """
    est = float(estimate)
    if not math.isfinite(est):
        raise ValueError(
            f"catalog returned a non-finite join estimate for "
            f"({left!r}, {right!r}): {est!r}"
        )
    return max(0.0, est)


@dataclass(frozen=True)
class JoinPlan:
    """A left-deep join order with its estimated cost."""

    order: tuple[str, ...]
    estimated_cost: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " ⋈ ".join(self.order) + f"  (est. cost {self.estimated_cost:.3g})"


def _pairwise_selectivity(
    catalog: EstimatingCatalog, sizes: Mapping[str, int], left: str, right: str
) -> float:
    """Estimated join selectivity: |L join R| / (|L| |R|), clamped to >= 0."""
    denom = sizes[left] * sizes[right]
    if denom == 0:
        return 0.0
    return _checked_estimate(catalog.join_estimate(left, right), left, right) / denom


def choose_join_order(
    relations: Sequence[str],
    sizes: Mapping[str, int],
    catalog: EstimatingCatalog,
) -> JoinPlan:
    """Greedy left-deep join ordering from pairwise estimates.

    Starts from the pair with the smallest estimated join size, then
    repeatedly appends the relation minimising the estimated size of
    the next intermediate (independence heuristic: intermediate
    cardinality times the product of the new relation's selectivities
    against every relation already joined).

    Parameters
    ----------
    relations:
        Names of the relations to join (at least two).
    sizes:
        Exact (or estimated) cardinalities |R| per relation — these are
        cheap to track exactly (one counter), as the paper assumes.
    catalog:
        Pairwise join-size estimator.

    Returns
    -------
    JoinPlan
        The chosen order and its estimated cost (sum of estimated
        intermediate sizes).

    Raises
    ------
    UnknownRelationSizeError
        If a relation has no entry in ``sizes``.
    ValueError
        For degenerate inputs: fewer than two distinct relations, a
        negative size, or a catalog producing non-finite estimates.
    """
    names = _checked_names(relations, sizes, "choose_join_order")

    # Seed: cheapest pair.  Every estimate is validated finite, so the
    # minimum always exists (no assert needed — the previous assert
    # here could only fire on a degenerate catalog, and vanished
    # entirely under `python -O`).
    best_pair = names[0], names[1]
    best_size = None
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            est = _checked_estimate(catalog.join_estimate(a, b), a, b)
            if best_size is None or est < best_size:
                best_size = est
                best_pair = (a, b)
    order = [best_pair[0], best_pair[1]]
    remaining = [n for n in names if n not in order]
    intermediate = best_size
    cost = intermediate

    while remaining:
        best_next = remaining[0]
        best_next_size = None
        for cand in remaining:
            sel = 1.0
            for joined in order:
                sel *= _pairwise_selectivity(catalog, sizes, joined, cand)
            next_size = intermediate * sizes[cand] * sel
            if best_next_size is None or next_size < best_next_size:
                best_next_size = next_size
                best_next = cand
        order.append(best_next)
        remaining.remove(best_next)
        intermediate = best_next_size
        cost += intermediate

    return JoinPlan(order=tuple(order), estimated_cost=cost)


def plan_cost(
    order: Sequence[str],
    sizes: Mapping[str, int],
    join_size: Callable[[str, str], float],
) -> float:
    """Evaluate a left-deep order under the sum-of-intermediates model.

    ``join_size`` supplies *true* pairwise join sizes (the independence
    heuristic is applied for deeper intermediates, so plans chosen from
    estimates and from exact statistics are scored consistently).

    Raises :class:`UnknownRelationSizeError` for a relation missing
    from ``sizes`` and ``ValueError`` for degenerate inputs, exactly
    as :func:`choose_join_order` does.
    """
    names = _checked_names(order, sizes, "plan_cost", dedupe=False)
    intermediate = _checked_estimate(join_size(names[0], names[1]), names[0], names[1])
    cost = intermediate
    joined = [names[0], names[1]]
    for cand in names[2:]:
        sel = 1.0
        for j in joined:
            denom = sizes[j] * sizes[cand]
            sel *= (
                (_checked_estimate(join_size(j, cand), j, cand) / denom)
                if denom
                else 0.0
            )
        intermediate = intermediate * sizes[cand] * sel
        cost += intermediate
        joined.append(cand)
    return cost
