"""The legacy join-ordering API, as a thin adapter over :mod:`repro.planner`.

The paper's motivation: "Query optimizers rely on fast, high-quality
estimates of join sizes in order to select between various join plans."
The first version of this module closed that loop with the smallest
useful optimizer — a greedy left-deep chooser over a flat size map that
implicitly treated *every* relation pair as joinable.  Plan enumeration
now lives in :mod:`repro.planner` (join graphs, greedy and
dynamic-programming enumerators, pluggable estimator policies); this
module keeps the original :func:`choose_join_order` / :func:`plan_cost`
surface for existing callers, delegating to the planner:

* with no ``edges`` argument the old all-pairs behaviour is preserved
  bit for bit (the planner runs over a clique graph);
* passing ``edges`` makes the join structure explicit — orders that
  would form a cross product are rejected with a typed
  :class:`~repro.planner.graph.CrossProductError` unless
  ``allow_cross_products=True``.

Cost model: the classic sum of intermediate result sizes.  Estimating
the size of a multi-way intermediate from pairwise signatures uses the
standard independence heuristic (product of pairwise selectivities),
which is exactly what real optimizers do with pairwise statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..planner.enumerators import enumerate_greedy
from ..planner.estimators import CardinalityEstimator as EstimatingCatalog
from ..planner.estimators import checked_estimate as _checked_estimate
from ..planner.graph import (
    CrossProductError,
    JoinGraph,
    UnknownGraphRelationError,
)
from ..planner.plan import PlanNode, render_plan

__all__ = [
    "JoinPlan",
    "choose_join_order",
    "plan_cost",
    "EstimatingCatalog",
    "CrossProductError",
    "UnknownRelationSizeError",
]


class UnknownRelationSizeError(LookupError):
    """A plan was requested over a relation with no recorded size.

    Deliberately *not* a ``KeyError`` (same policy as
    :class:`~repro.relational.catalog.UnknownRelationError`): the raw
    mapping miss this used to surface as looks like an internal bug,
    whereas a missing cardinality is a caller-level condition with an
    obvious fix — so the message names the relation, lists what *is*
    recorded, and says what to supply.
    """

    def __init__(self, name: str, sizes: Mapping[str, int]):
        self.name = name
        self.recorded = sorted(sizes)
        known = ", ".join(self.recorded) or "<none>"
        super().__init__(
            f"no size recorded for relation {name!r} (sizes recorded for: "
            f"{known}); every joined relation needs an entry in `sizes` — "
            "cardinalities are one counter each, tracked exactly"
        )


def _checked_names(
    relations: Sequence[str],
    sizes: Mapping[str, int],
    what: str,
    dedupe: bool = True,
) -> list[str]:
    """Relation names validated against ``sizes``, order preserved.

    ``dedupe=True`` collapses repeats (a relation set, as
    :func:`choose_join_order` accepts); ``dedupe=False`` rejects them
    (an explicit join *order* repeating a relation is a caller error —
    silently dropping the repeat would score a different plan than the
    one passed in).
    """
    names = list(dict.fromkeys(relations)) if dedupe else list(relations)
    if not dedupe and len(set(names)) != len(names):
        raise ValueError(f"{what} order repeats a relation: {names}")
    if len(names) < 2:
        raise ValueError(f"{what} needs at least two relations, got {names}")
    for name in names:
        if name not in sizes:
            raise UnknownRelationSizeError(name, sizes)
        if int(sizes[name]) < 0:
            raise ValueError(
                f"relation {name!r} has negative size {sizes[name]}"
            )
    return names


def _build_graph(
    names: Sequence[str],
    sizes: Mapping[str, int],
    edges: Iterable[tuple[str, str]] | None,
) -> JoinGraph:
    """The planner graph behind one legacy call.

    ``edges=None`` reproduces the historical all-pairs assumption as an
    explicit clique; an edge list restricts joinability to exactly the
    declared pairs (unknown endpoints raise the graph's typed error).
    """
    ordered = {name: int(sizes[name]) for name in names}
    if edges is None:
        return JoinGraph.clique(ordered)
    return JoinGraph(ordered, edges)


@dataclass(frozen=True)
class JoinPlan:
    """A chosen join order with its estimated cost.

    ``tree`` carries the planner's annotated :class:`PlanNode` when the
    plan came from an enumerator; hand-built instances may omit it.
    """

    order: tuple[str, ...]
    estimated_cost: float
    tree: Optional[PlanNode] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        if self.tree is not None:
            return render_plan(self.tree)
        return " ⋈ ".join(self.order) + f"  (est. cost {self.estimated_cost:.3g})"


def choose_join_order(
    relations: Sequence[str],
    sizes: Mapping[str, int],
    catalog: EstimatingCatalog,
    edges: Iterable[tuple[str, str]] | None = None,
    allow_cross_products: bool = False,
) -> JoinPlan:
    """Greedy left-deep join ordering from pairwise estimates.

    Starts from the joinable pair with the smallest estimated join
    size, then repeatedly appends the relation minimising the estimated
    size of the next intermediate (independence heuristic: intermediate
    cardinality times the product of the new relation's selectivities
    against every joined relation it shares an edge with).

    Parameters
    ----------
    relations:
        Names of the relations to join (at least two).
    sizes:
        Exact (or estimated) cardinalities |R| per relation — these are
        cheap to track exactly (one counter), as the paper assumes.
    catalog:
        Pairwise join-size estimator.
    edges:
        Equi-join edges as ``(left, right)`` name pairs.  ``None``
        (the default) keeps the historical behaviour of treating every
        pair as joinable.
    allow_cross_products:
        With ``edges`` given, whether steps that join unconnected
        relation sets are allowed (costed as cartesian products) or
        rejected with :class:`CrossProductError`.

    Returns
    -------
    JoinPlan
        The chosen order, its estimated cost (sum of estimated
        intermediate sizes), and the annotated plan tree.

    Raises
    ------
    UnknownRelationSizeError
        If a relation has no entry in ``sizes``.
    CrossProductError
        If ``edges`` leaves no cross-product-free way to join
        everything and ``allow_cross_products`` is False.
    ValueError
        For degenerate inputs: fewer than two distinct relations, a
        negative size, or a catalog producing non-finite estimates.
    """
    names = _checked_names(relations, sizes, "choose_join_order")
    graph = _build_graph(names, sizes, edges)
    tree = enumerate_greedy(
        graph, catalog, allow_cross_products=allow_cross_products
    )
    return JoinPlan(order=tree.order(), estimated_cost=tree.cost, tree=tree)


def plan_cost(
    order: Sequence[str],
    sizes: Mapping[str, int],
    join_size: Callable[[str, str], float],
    edges: Iterable[tuple[str, str]] | None = None,
    allow_cross_products: bool = False,
) -> float:
    """Evaluate a left-deep order under the sum-of-intermediates model.

    ``join_size`` supplies *true* pairwise join sizes (the independence
    heuristic is applied for deeper intermediates, so plans chosen from
    estimates and from exact statistics are scored consistently).  With
    ``edges`` given, only declared edges contribute selectivities, and
    a step joining a relation with no edge into the joined prefix
    raises :class:`CrossProductError` unless ``allow_cross_products``
    is True (the step then grows the intermediate cartesianly).

    Raises :class:`UnknownRelationSizeError` for a relation missing
    from ``sizes`` and ``ValueError`` for degenerate inputs, exactly
    as :func:`choose_join_order` does.
    """
    names = _checked_names(order, sizes, "plan_cost", dedupe=False)
    if edges is None:
        joinable = None
    else:
        # The same validation choose_join_order gets from its graph: a
        # typo'd endpoint must raise, not silently become "no edge"
        # (which would score a different plan than the one declared).
        known = set(names)
        joinable = {frozenset(pair) for pair in edges}
        for pair in joinable:
            if len(pair) != 2:
                raise ValueError(
                    f"join edges must name two distinct relations, got "
                    f"{sorted(pair)}"
                )
            for endpoint in pair:
                if endpoint not in known:
                    raise UnknownGraphRelationError(endpoint, known)

    def has_edge(a: str, b: str) -> bool:
        return joinable is None or frozenset((a, b)) in joinable

    first, second = names[0], names[1]
    if has_edge(first, second):
        intermediate = _checked_estimate(join_size(first, second), first, second)
    elif allow_cross_products:
        intermediate = float(sizes[first]) * float(sizes[second])
    else:
        raise CrossProductError([first], [second])
    cost = intermediate
    joined = [first, second]
    for cand in names[2:]:
        contributing = [j for j in joined if has_edge(j, cand)]
        if joinable is not None and not contributing and not allow_cross_products:
            raise CrossProductError(joined, [cand])
        sel = 1.0
        for j in contributing:
            denom = sizes[j] * sizes[cand]
            sel *= (
                (_checked_estimate(join_size(j, cand), j, cand) / denom)
                if denom
                else 0.0
            )
        intermediate = intermediate * sizes[cand] * sel
        cost += intermediate
        joined.append(cand)
    return cost
