"""Windowed signature catalogs: join estimates over time windows.

A plain :class:`~repro.relational.catalog.SignatureCatalog` answers
"how big is ``F join G`` *right now*"; a statistics-maintenance loop in
a real optimizer also needs "how big was it over the last hour" and
"how big is it restricted to this day's arrivals".  The windowed
catalog supplies that: every relation is backed by a
:class:`~repro.store.windowed.WindowedSketchStore` of tug-of-war
sketches built from one shared seed, so the window-merged sketches of
any two relations are sign-compatible and their inner product is the
Section 4.3 join-size estimate — restricted to the requested window.

The windowed guarantee inherits the store's: the merged sketch of a
window is bit-identical to a sketch maintained over just that window's
tuples, so windowed estimates are exactly the estimates a per-window
catalog would have produced, at a fraction of the state.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.bounds import ktw_join_error_bound
from ..core.tugofwar import TugOfWarSketch
from ..store.spec import SketchSpec
from ..store.windowed import WindowedSketchStore
from .catalog import UnknownRelationError

__all__ = ["WindowedSignatureCatalog"]


class WindowedSignatureCatalog:
    """One windowed tug-of-war store per relation; windowed join estimates.

    Parameters
    ----------
    k:
        Signature words per bucket, split as ``s1 = k // s2`` grouped
        estimators (the catalog medians over ``s2`` groups, the
        (s1, s2)-grid generalisation of the paper's k-TW mean).  When
        ``k`` is not a multiple of ``s2`` the remainder words are not
        allocated; the :attr:`k` property always reports the actual
        allocation ``s1 * s2``.
    bucket_width:
        Time-bucket width shared by every relation's store, so windows
        line up across relations.
    s2:
        Number of median groups (1 reproduces the literal k-TW mean).
    seed:
        Seed of the sign families; shared across relations and buckets
        (required for cross-relation inner products and bucket merges).
    origin:
        Timestamp where bucket 0 begins.
    retention_buckets, retention_policy:
        Per-relation retention, forwarded to each store.
    """

    def __init__(
        self,
        k: int,
        bucket_width: int,
        s2: int = 5,
        seed: int | None = None,
        origin: int = 0,
        retention_buckets: int | None = None,
        retention_policy: str = "compact",
    ):
        if k < s2 or s2 < 1:
            raise ValueError(f"need k >= s2 >= 1, got k={k}, s2={s2}")
        self._spec = SketchSpec(
            "tugofwar", {"s1": int(k) // int(s2), "s2": int(s2), "seed": seed}
        )
        self.bucket_width = int(bucket_width)
        self.origin = int(origin)
        self.retention_buckets = retention_buckets
        self.retention_policy = retention_policy
        self._stores: dict[str, WindowedSketchStore] = {}

    # -- registration ------------------------------------------------------
    def register(self, name: str) -> WindowedSketchStore:
        """Start tracking a relation (its store begins empty)."""
        if name in self._stores:
            raise KeyError(f"relation {name!r} already registered")
        store = WindowedSketchStore(
            self._spec,
            bucket_width=self.bucket_width,
            origin=self.origin,
            retention_buckets=self.retention_buckets,
            retention_policy=self.retention_policy,
        )
        self._stores[name] = store
        return store

    def drop(self, name: str) -> None:
        """Stop tracking a relation and free its buckets."""
        if name not in self._stores:
            raise UnknownRelationError(name, self._stores)
        del self._stores[name]

    # -- incremental maintenance -------------------------------------------
    def ingest(
        self,
        name: str,
        timestamps: np.ndarray | Iterable[int],
        values: np.ndarray | Iterable[int],
        counts: np.ndarray | Iterable[int] | None = None,
        max_workers: int | None = None,
    ) -> None:
        """Route a timestamped tuple batch to one relation's buckets."""
        self._store(name).ingest(
            timestamps, values, counts=counts, max_workers=max_workers
        )

    # -- windowed estimation -----------------------------------------------
    def window_bounds(
        self,
        t0: int,
        t1: int,
        names: Iterable[str] | None = None,
        align: str = "strict",
    ) -> tuple[int, int]:
        """The common window a query over ``names`` actually covers.

        With ``align="outer"`` each relation's store may need to expand
        the window over its own (possibly compacted) spans; estimates
        must compare sketches of *one* shared window, so the expansion
        is iterated across all the named relations to a fixpoint.  With
        ``align="strict"`` this simply validates the window against
        every store.
        """
        targets = self.relations if names is None else list(names)
        lo, hi = int(t0), int(t1)
        changed = True
        while changed:
            changed = False
            for name in targets:
                nlo, nhi = self._store(name).window_bounds(lo, hi, align)
                if (nlo, nhi) != (lo, hi):
                    lo, hi = nlo, nhi
                    changed = True
        return lo, hi

    def join_estimate(
        self, left: str, right: str, t0: int, t1: int, align: str = "strict"
    ) -> float:
        """Estimated ``|left join right|`` over tuples in ``[t0, t1)``.

        Both relations are queried over the *same* effective window —
        under ``align="outer"`` that is the common expansion reported
        by :meth:`window_bounds`, never two different per-relation
        windows.
        """
        lo, hi = self.window_bounds(t0, t1, names=(left, right), align=align)
        lhs = self._window_sketch(left, lo, hi, "outer")
        rhs = self._window_sketch(right, lo, hi, "outer")
        return lhs.inner_product(rhs)

    def self_join_estimate(
        self, name: str, t0: int, t1: int, align: str = "strict"
    ) -> float:
        """Estimated SJ of one relation over ``[t0, t1)``."""
        return self._window_sketch(name, t0, t1, align).estimate()

    def join_error_bound(
        self, left: str, right: str, t0: int, t1: int, align: str = "strict"
    ) -> float:
        """Lemma 4.4 standard error over the window, from estimated SJs.

        ``sqrt(2 SJ(F) SJ(G) / k)`` with the windowed sketches' own
        self-join estimates plugged in — computable online, per window,
        over the same common window :meth:`join_estimate` uses.
        """
        lo, hi = self.window_bounds(t0, t1, names=(left, right), align=align)
        sj_l = max(0.0, self.self_join_estimate(left, lo, hi, "outer"))
        sj_r = max(0.0, self.self_join_estimate(right, lo, hi, "outer"))
        return ktw_join_error_bound(sj_l, sj_r, self.k)

    def _window_sketch(
        self, name: str, t0: int, t1: int, align: str
    ) -> TugOfWarSketch:
        return self._store(name).query(t0, t1, align=align)

    # -- introspection -----------------------------------------------------
    @property
    def k(self) -> int:
        """Signature words actually allocated per bucket (s1 * s2).

        May be below the constructor's ``k`` when it was not a
        multiple of ``s2`` (the remainder words are dropped).
        """
        return int(self._spec.params["s1"]) * int(self._spec.params["s2"])

    @property
    def relations(self) -> list[str]:
        """Registered relation names (sorted)."""
        return sorted(self._stores)

    @property
    def memory_words(self) -> int:
        """Total storage across every relation's buckets."""
        return sum(store.memory_words for store in self._stores.values())

    def store(self, name: str) -> WindowedSketchStore:
        """Direct access to one relation's store (compaction, snapshots)."""
        return self._store(name)

    def _store(self, name: str) -> WindowedSketchStore:
        store = self._stores.get(name)
        if store is None:
            raise UnknownRelationError(name, self._stores)
        return store

    def __contains__(self, name: str) -> bool:
        return name in self._stores

    def __len__(self) -> int:
        return len(self._stores)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WindowedSignatureCatalog(k={self.k}, width={self.bucket_width}, "
            f"relations={len(self)})"
        )
