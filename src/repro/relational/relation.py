"""A named relation restricted to its joining attribute.

The paper (footnote 2) restricts attention to equality joins on one
attribute A; a relation is then fully described — for join-size
purposes — by the multiset of its A-values.  :class:`Relation` wraps a
:class:`~repro.core.frequency.FrequencyVector` with a name and exact
statistics; it is the ground-truth object the signature catalogs are
validated against.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.bounds import join_size_upper_bound
from ..core.frequency import FrequencyVector

__all__ = ["Relation"]


class Relation:
    """A named multiset of joining-attribute values with exact stats."""

    __slots__ = ("name", "_freq")

    def __init__(self, name: str, values: Iterable[int] | np.ndarray | None = None):
        if not name:
            raise ValueError("relation name must be non-empty")
        self.name = str(name)
        self._freq = (
            FrequencyVector.from_stream(values)
            if values is not None
            else FrequencyVector()
        )

    # -- updates ---------------------------------------------------------
    def insert(self, value: int) -> None:
        """Insert a tuple with joining-attribute value v."""
        self._freq.insert(value)

    def delete(self, value: int) -> None:
        """Delete a tuple with joining-attribute value v."""
        self._freq.delete(value)

    def insert_many(self, values: Iterable[int] | np.ndarray) -> None:
        """Bulk-insert a batch of tuples via one vectorised histogram.

        The engine-refactor fast path for loading relations: equivalent
        to per-tuple :meth:`insert` calls, one numpy histogram instead.
        """
        self._freq.update_from_stream(values)

    def update_from_frequencies(
        self, values: Iterable[int] | np.ndarray, counts: Iterable[int] | np.ndarray
    ) -> None:
        """Apply a signed histogram of tuple changes (bulk insert/delete)."""
        self._freq.update_from_frequencies(values, counts)

    # -- exact statistics --------------------------------------------------
    @property
    def size(self) -> int:
        """Number of tuples |R|."""
        return self._freq.total

    @property
    def distinct(self) -> int:
        """Number of distinct joining-attribute values."""
        return self._freq.distinct

    def self_join_size(self) -> int:
        """Exact SJ(R) on the joining attribute."""
        return self._freq.self_join_size()

    def join_size(self, other: "Relation") -> int:
        """Exact |self join other| on the joining attribute."""
        if not isinstance(other, Relation):
            raise TypeError(f"expected Relation, got {type(other).__name__}")
        return self._freq.join_size(other._freq)

    def join_size_bound(self, other: "Relation") -> float:
        """Fact 1.1 upper bound from the two exact self-join sizes."""
        return join_size_upper_bound(self.self_join_size(), other.self_join_size())

    @property
    def frequencies(self) -> FrequencyVector:
        """The underlying frequency vector (shared, not a copy)."""
        return self._freq

    def values_array(self) -> np.ndarray:
        """Expand back to a value stream (sorted); for test comparisons."""
        vals, counts = self._freq.as_arrays()
        return np.repeat(vals, counts)

    def __len__(self) -> int:
        return self._freq.total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, size={self.size}, distinct={self.distinct})"
