"""Relational substrate: relations, signature catalogs, plan selection.

The paper motivates join-size tracking with query optimization: an
optimizer must choose between join plans using fast, high-quality size
estimates, without touching base data at estimation time.  This package
provides the minimal relational layer that exercises the signatures the
way a database would:

* :class:`Relation` — a named multiset of joining-attribute values with
  exact statistics (the ground truth);
* :class:`SignatureCatalog` — tracks one k-TW signature per relation
  (maintained incrementally under inserts/deletes) and answers
  pairwise join-size estimates from signatures alone, avoiding the
  quadratic blow-up of per-pair state;
* :class:`~repro.relational.windowed.WindowedSignatureCatalog` — the
  same signature scheme with a time axis: per-relation windowed sketch
  stores (see :mod:`repro.store`) answering join estimates restricted
  to any bucket-aligned time window;
* :func:`~repro.relational.optimizer.choose_join_order` /
  :func:`~repro.relational.optimizer.plan_cost` — the legacy greedy
  join-ordering surface, now a thin adapter over the
  :mod:`repro.planner` subsystem (join graphs, greedy + DP
  enumerators, pluggable exact / sketch / bound-aware estimator
  policies), used to demonstrate end-to-end that better estimates pick
  better plans.
"""

from .catalog import SampleCatalog, SignatureCatalog, UnknownRelationError
from .optimizer import (
    CrossProductError,
    JoinPlan,
    UnknownRelationSizeError,
    choose_join_order,
    plan_cost,
)
from .relation import Relation
from .windowed import WindowedSignatureCatalog

__all__ = [
    "Relation",
    "SignatureCatalog",
    "SampleCatalog",
    "WindowedSignatureCatalog",
    "UnknownRelationError",
    "UnknownRelationSizeError",
    "CrossProductError",
    "JoinPlan",
    "choose_join_order",
    "plan_cost",
]
