"""The keyed sketch fleet: one windowed store per logical stream.

The single-stream :class:`~repro.store.windowed.WindowedSketchStore`
answers "the estimate over window W"; real serving traffic is *keyed* —
one logical sketch per tenant / topic / metric.  This module lifts the
windowed machinery to that fleet dimension: a
:class:`KeyedSketchStore` lazily materialises one windowed store per
key, all built from one shared :class:`~repro.store.spec.SketchSpec`
template and one shared :class:`~repro.store.buckets.BucketLayout`, so
every key agrees on bucket boundaries, every per-key sketch carries
the same seed (the precondition for cluster merge), and a per-key
answer is bit-identical to a dedicated single-stream store fed only
that key's events.

Keys are strings (tenant ids, metric names); cardinality is bounded by
``max_keys`` with a typed :class:`KeyCardinalityError` so a runaway
key space degrades into a clear refusal instead of unbounded memory.
Snapshot/restore works per key (a tenant can be checkpointed or
migrated alone) and for the whole fleet (``to_dict`` kind
``"keyed-store"``).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..engine.protocol import Sketch
from ..engine.registry import SketchPayloadError, UnknownSketchKindError
from .buckets import BucketLayout
from .spec import SketchSpec
from .windowed import WindowedSketchStore

__all__ = ["KeyedSketchStore", "KeyCardinalityError"]

#: Keys travel the binary wire with a u16 length prefix.
_MAX_KEY_BYTES = 65535


class KeyCardinalityError(ValueError):
    """Raised when ingesting a new key would exceed ``max_keys``.

    Subclasses ``ValueError`` so the service surface's handled-error
    table and the CLI's exit-2 contract pick it up unchanged.
    """


def validate_key(key: object) -> str:
    """Validate a fleet key: a non-empty, wire-encodable string."""
    if not isinstance(key, str) or not key:
        raise ValueError(
            f"key must be a non-empty string, got {key!r}"
        )
    if len(key.encode("utf-8")) > _MAX_KEY_BYTES:
        raise ValueError(
            f"key exceeds {_MAX_KEY_BYTES} UTF-8 bytes"
        )
    return key


class KeyedSketchStore:
    """A lazy ``key -> WindowedSketchStore`` fleet over one template.

    Parameters
    ----------
    spec:
        The shared :class:`~repro.store.spec.SketchSpec` every per-key
        bucket sketch is built from.  One seed for the whole fleet:
        sketches of the *same key* on different shards must merge.
    bucket_width, origin:
        The shared time-axis geometry (see
        :class:`~repro.store.buckets.BucketLayout`); a prebuilt layout
        may be passed as ``bucket_width``.
    retention_buckets, retention_policy:
        Applied independently inside every per-key store, exactly as
        in :class:`~repro.store.windowed.WindowedSketchStore`.
    max_keys:
        Upper bound on the number of distinct keys ever materialised;
        ``None`` means unbounded.  Exceeding it raises
        :class:`KeyCardinalityError` before any state changes.

    Examples
    --------
    >>> fleet = KeyedSketchStore(
    ...     SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 1}),
    ...     bucket_width=10,
    ... )
    >>> fleet.ingest("tenant-a", [3, 14], [5, 9])
    >>> fleet.ingest("tenant-b", [3], [5])
    >>> fleet.key_count
    2
    >>> round(fleet.estimate("tenant-b", 0, 10), 1)
    1.0
    """

    def __init__(
        self,
        spec: SketchSpec,
        bucket_width: int,
        origin: int = 0,
        retention_buckets: int | None = None,
        retention_policy: str = "compact",
        max_keys: int | None = None,
    ):
        if not isinstance(spec, SketchSpec):
            raise TypeError(f"spec must be a SketchSpec, got {type(spec).__name__}")
        self.spec = spec
        self.layout = (
            bucket_width
            if isinstance(bucket_width, BucketLayout)
            else BucketLayout(bucket_width, origin)
        )
        if max_keys is not None and int(max_keys) < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys}")
        self.max_keys = None if max_keys is None else int(max_keys)
        self.retention_buckets = retention_buckets
        self.retention_policy = retention_policy
        # Fail fast on bad retention settings (and non-mergeable kinds
        # under compact retention): the first key may only arrive hours
        # into serving, far from the misconfiguration.
        self._build_store()
        self._stores: dict[str, WindowedSketchStore] = {}

    def _build_store(self) -> WindowedSketchStore:
        return WindowedSketchStore(
            self.spec,
            self.layout,
            retention_buckets=self.retention_buckets,
            retention_policy=self.retention_policy,
        )

    # ------------------------------------------------------------------
    # Key management
    # ------------------------------------------------------------------
    @property
    def bucket_width(self) -> int:
        """Width of one time bucket (shared by every key)."""
        return self.layout.bucket_width

    @property
    def origin(self) -> int:
        """Timestamp where bucket 0 begins (shared by every key)."""
        return self.layout.origin

    @property
    def keys(self) -> list[str]:
        """Every materialised key, sorted."""
        return sorted(self._stores)

    @property
    def key_count(self) -> int:
        """Number of materialised keys."""
        return len(self._stores)

    def store_for(self, key: str, create: bool = False) -> WindowedSketchStore | None:
        """The per-key windowed store, or None for an unseen key.

        With ``create=True`` an unseen key materialises a fresh empty
        store from the shared template — unless that would exceed
        ``max_keys``, which raises :class:`KeyCardinalityError` with
        nothing changed.
        """
        key = validate_key(key)
        store = self._stores.get(key)
        if store is not None or not create:
            return store
        if self.max_keys is not None and len(self._stores) >= self.max_keys:
            raise KeyCardinalityError(
                f"cannot materialise key {key!r}: the fleet already holds "
                f"max_keys={self.max_keys} keys"
            )
        store = self._build_store()
        self._stores[key] = store
        return store

    def drop(self, key: str) -> bool:
        """Forget a key and its whole history; True if it existed."""
        return self._stores.pop(validate_key(key), None) is not None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        key: str,
        timestamps: np.ndarray | Iterable[int],
        values: np.ndarray | Iterable[int],
        counts: np.ndarray | Iterable[int] | None = None,
        max_workers: int | None = None,
    ) -> None:
        """Route one key's timestamped batch into its windowed store.

        Semantics are exactly
        :meth:`~repro.store.windowed.WindowedSketchStore.ingest` on the
        key's own store; other keys are untouched (cross-key isolation
        is structural — there is no shared mutable state between per-key
        stores beyond the immutable template).
        """
        store = self.store_for(key, create=True)
        store.ingest(timestamps, values, counts=counts, max_workers=max_workers)

    # ------------------------------------------------------------------
    # Queries (an unseen key is an empty stream, not an error)
    # ------------------------------------------------------------------
    def window_bounds(
        self, key: str, t0: int, t1: int, align: str = "strict"
    ) -> tuple[int, int]:
        """The window a query for ``key`` would actually cover."""
        store = self.store_for(key)
        if store is None:
            return self.layout.align_spans(t0, t1, align, [])
        return store.window_bounds(t0, t1, align=align)

    def query(self, key: str, t0: int, t1: int, align: str = "strict") -> Sketch:
        """The sketch of ``key``'s events in ``[t0, t1)``.

        An unseen key answers with the template's empty sketch — the
        same answer a dedicated store that never saw an event would
        give, which keeps keyed cluster scatter–gather well defined
        (most shards have never seen most keys).
        """
        store = self.store_for(key)
        if store is None:
            self.layout.align_spans(t0, t1, align, [])  # validate the window
            return self.spec.build()
        return store.query(t0, t1, align=align)

    def estimate(self, key: str, t0: int, t1: int, align: str = "strict") -> float:
        """Estimate over the window for one key (merge-on-query)."""
        return float(self.query(key, t0, t1, align=align).estimate())

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def compact(self, before: int | None = None, key: str | None = None) -> int:
        """Fold old spans (one key, or every key); returns spans folded."""
        if key is not None:
            store = self.store_for(key)
            return 0 if store is None else store.compact(before=before)
        if before is not None:
            self.layout.boundary_bucket(before)  # validate once up front
        return sum(s.compact(before=before) for s in self._stores.values())

    def evict(self, before: int, key: str | None = None) -> int:
        """Drop old spans (one key, or every key); returns spans dropped."""
        if key is not None:
            store = self.store_for(key)
            return 0 if store is None else store.evict(before)
        self.layout.boundary_bucket(before)  # validate once up front
        return sum(s.evict(before) for s in self._stores.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def span_count(self) -> int:
        """Total bucket spans across every key."""
        return sum(s.span_count for s in self._stores.values())

    @property
    def coverage(self) -> tuple[int, int] | None:
        """Timestamp hull across every key, or None if all empty."""
        ranges = [s.coverage for s in self._stores.values() if s.coverage]
        if not ranges:
            return None
        return min(lo for lo, _ in ranges), max(hi for _, hi in ranges)

    @property
    def memory_words(self) -> int:
        """Total storage across every key's bucket sketches."""
        return sum(s.memory_words for s in self._stores.values())

    def items_by_key(self) -> dict[str, int]:
        """Net logical item count (inserts minus deletes) per key.

        The load-skew signal: cluster ``stats()`` aggregates this per
        shard so hot keys are observable before they hurt.
        """
        return {key: _store_items(store) for key, store in self._stores.items()}

    def __len__(self) -> int:
        return len(self._stores)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KeyedSketchStore(kind={self.spec.kind!r}, "
            f"width={self.bucket_width}, keys={self.key_count}, "
            f"spans={self.span_count})"
        )

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self, key: str) -> dict:
        """One key's full windowed-store payload (empty store if unseen)."""
        store = self.store_for(key)
        return (store if store is not None else self._build_store()).to_dict()

    def restore(self, key: str, payload: Mapping) -> None:
        """Replace one key's history with a snapshot payload.

        The payload must be a windowed-store snapshot matching the
        fleet's template (same spec, width, origin); restoring a new
        key counts against ``max_keys``.
        """
        key = validate_key(key)
        store = WindowedSketchStore.from_dict(payload)
        if (
            store.spec != self.spec
            or store.bucket_width != self.bucket_width
            or store.origin != self.origin
        ):
            raise ValueError(
                "snapshot does not match the fleet template: it was taken "
                f"from a {store.spec.kind!r} store with width "
                f"{store.bucket_width}, origin {store.origin}"
            )
        if (
            key not in self._stores
            and self.max_keys is not None
            and len(self._stores) >= self.max_keys
        ):
            raise KeyCardinalityError(
                f"cannot restore key {key!r}: the fleet already holds "
                f"max_keys={self.max_keys} keys"
            )
        self._stores[key] = store

    def to_dict(self) -> dict:
        """Serialise the whole fleet (template + every per-key store)."""
        return {
            "kind": "keyed-store",
            "spec": self.spec.to_dict(),
            "bucket_width": self.bucket_width,
            "origin": self.origin,
            "retention_buckets": self.retention_buckets,
            "retention_policy": self.retention_policy,
            "max_keys": self.max_keys,
            "stores": {
                key: self._stores[key].to_dict() for key in self.keys
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "KeyedSketchStore":
        """Reconstruct a fleet from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping):
            raise SketchPayloadError(
                f"store payload must be a mapping, got {type(payload).__name__}"
            )
        if payload.get("kind") != "keyed-store":
            raise SketchPayloadError(
                f"not a keyed-store payload: kind={payload.get('kind')!r}"
            )
        try:
            fleet = cls(
                SketchSpec.from_dict(payload["spec"]),
                bucket_width=int(payload["bucket_width"]),
                origin=int(payload.get("origin", 0)),
                retention_buckets=payload.get("retention_buckets"),
                retention_policy=payload.get("retention_policy", "compact"),
                max_keys=payload.get("max_keys"),
            )
            stores = payload.get("stores", {})
            if not isinstance(stores, Mapping):
                raise SketchPayloadError(
                    "corrupt keyed-store payload: 'stores' must be a mapping"
                )
            for key in sorted(stores):
                fleet.restore(validate_key(key), stores[key])
        except (SketchPayloadError, UnknownSketchKindError, KeyCardinalityError):
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SketchPayloadError(
                f"corrupt keyed-store payload: {exc}"
            ) from exc
        return fleet


def _store_items(store: WindowedSketchStore) -> int:
    """Net logical items of one windowed store, summed across spans.

    Every built-in kind tracks its multiset size (``n``; the exact
    frequency vector calls it ``total``); a kind without either counts
    as zero rather than failing stats.
    """
    total = 0
    for span in store._spans:
        n = getattr(span.sketch, "n", None)
        if n is None:
            n = getattr(span.sketch, "total", 0)
        total += int(n)
    return total
