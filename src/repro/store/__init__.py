"""The windowed sketch store: continuous maintenance over time buckets.

This package is the maintenance layer the paper's title promises:
estimates that stay available as the data evolves.  It builds on the
engine (:mod:`repro.engine`) — every bucket is a registry-known sketch
fed through the vectorised ingestion paths — and adds the time axis:

* :mod:`repro.store.spec` — :class:`SketchSpec`, the serialisable
  recipe from which every bucket sketch of one store is built (same
  kind, same parameters, same seed — the precondition for merging);
* :mod:`repro.store.windowed` — :class:`WindowedSketchStore`, the
  partitioned time-bucketed store: timestamp-routed insert/delete
  batches (out-of-order tolerated), merge-on-query estimates over
  bucket-aligned ``[t0, t1)`` windows, compaction/eviction retention,
  and whole-store snapshot/restore through the serialization registry.
"""

from .buckets import BucketLayout
from .keyed import KeyCardinalityError, KeyedSketchStore
from .spec import SketchSpec
from .windowed import BucketSpan, WindowAlignmentError, WindowedSketchStore

__all__ = [
    "SketchSpec",
    "WindowedSketchStore",
    "KeyedSketchStore",
    "KeyCardinalityError",
    "WindowAlignmentError",
    "BucketSpan",
    "BucketLayout",
]
