"""The bucket/span arithmetic core shared by every windowed store.

Extracted from :class:`~repro.store.windowed.WindowedSketchStore` so
the keyed fleet (:class:`~repro.store.keyed.KeyedSketchStore`) can
reuse the exact same time-axis geometry — bucket indexing, boundary
checks, strict/outer window alignment — without duplicating the rules
or instantiating a throwaway store.  One :class:`BucketLayout` is the
single source of truth for "where does timestamp t live" and "is this
window answerable"; every per-key store of a keyed fleet shares one
layout, which is what makes per-key answers comparable and cluster
scatter–gather well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..engine.protocol import Sketch

__all__ = ["BucketLayout", "BucketSpan", "WindowAlignmentError"]


class WindowAlignmentError(ValueError):
    """Raised when a window boundary falls inside a bucket span.

    A span's sketch summarises every event in the span; it cannot be
    split at query time.  Pass ``align="outer"`` to expand the window
    to the smallest span-aligned superset instead.
    """


@dataclass(eq=False)
class BucketSpan:
    """A half-open range of bucket indices summarised by one sketch."""

    start: int  # first bucket index covered (inclusive)
    end: int  # one past the last bucket index covered
    sketch: Sketch

    def covers(self, bucket: int) -> bool:
        """Whether ``bucket`` falls inside this span."""
        return self.start <= bucket < self.end


@dataclass(frozen=True)
class BucketLayout:
    """The time-axis geometry of a windowed store: width and origin.

    Immutable and shared freely: a keyed fleet hands the same layout
    to every per-key store so all of them agree on bucket boundaries.
    """

    bucket_width: int
    origin: int = 0

    def __post_init__(self):
        object.__setattr__(self, "bucket_width", int(self.bucket_width))
        object.__setattr__(self, "origin", int(self.origin))
        if self.bucket_width < 1:
            raise ValueError(
                f"bucket_width must be >= 1, got {self.bucket_width}"
            )

    def bucket_of(self, timestamp: int) -> int:
        """The bucket index containing ``timestamp`` (floor semantics)."""
        return (int(timestamp) - self.origin) // self.bucket_width

    def bucket_bounds(self, bucket: int) -> tuple[int, int]:
        """The half-open timestamp range ``[t0, t1)`` of one bucket."""
        t0 = self.origin + int(bucket) * self.bucket_width
        return t0, t0 + self.bucket_width

    def boundary_bucket(self, t: int) -> int:
        """The bucket starting at ``t``; raises unless ``t`` is a boundary."""
        offset = int(t) - self.origin
        if offset % self.bucket_width:
            raise WindowAlignmentError(
                f"timestamp {t} is not a bucket boundary (width "
                f"{self.bucket_width}, origin {self.origin})"
            )
        return offset // self.bucket_width

    def window_buckets(self, t0: int, t1: int, align: str) -> tuple[int, int]:
        """Convert a timestamp window to a half-open bucket range."""
        t0, t1 = int(t0), int(t1)
        if t1 <= t0:
            raise ValueError(f"empty window: [{t0}, {t1})")
        if align not in ("strict", "outer"):
            raise ValueError(f"align must be 'strict' or 'outer', got {align!r}")
        b0 = (t0 - self.origin) // self.bucket_width
        b1 = -((-(t1 - self.origin)) // self.bucket_width)  # ceil division
        if align == "strict":
            lo, _ = self.bucket_bounds(b0)
            _, hi = self.bucket_bounds(b1 - 1)
            if lo != t0 or hi != t1:
                raise WindowAlignmentError(
                    f"window [{t0}, {t1}) is not aligned to bucket boundaries "
                    f"(width {self.bucket_width}, origin {self.origin}); the "
                    f"covering aligned window is [{lo}, {hi}) — pass "
                    f'align="outer" to use it'
                )
        return b0, b1

    def align_spans(
        self,
        t0: int,
        t1: int,
        align: str,
        spans: Sequence[tuple[int, int]],
    ) -> tuple[int, int]:
        """The timestamp window a span-respecting query actually covers.

        Expands ``[t0, t1)`` to bucket boundaries (under ``align``
        rules) and then to whole spans from ``spans`` (bucket-index
        pairs, as :attr:`WindowedSketchStore.bucket_spans` reports);
        under ``align="strict"`` a window that would split a span is a
        :class:`WindowAlignmentError`.
        """
        b0, b1 = self.window_buckets(t0, t1, align)
        for start, end in spans:
            if start >= b1 or end <= b0:
                continue
            if start < b0 or end > b1:
                if align == "strict":
                    s0, _ = self.bucket_bounds(start)
                    _, s1 = self.bucket_bounds(end - 1)
                    raise WindowAlignmentError(
                        f"window [{t0}, {t1}) splits the compacted span "
                        f"[{s0}, {s1}); cover the whole span or pass "
                        f'align="outer"'
                    )
                b0 = min(b0, start)
                b1 = max(b1, end)
        lo, _ = self.bucket_bounds(b0)
        _, hi = self.bucket_bounds(b1 - 1)
        return lo, hi
