"""Sketch specifications: reproducible construction of bucket sketches.

A windowed store must be able to create a fresh sketch for any time
bucket at any moment — when the first event of a new bucket arrives,
when an out-of-order event opens an old bucket, when a snapshot is
restored on another host.  All those sketches must be *identically
configured* (same kind, same parameters, and for mergeable kinds the
same hash seed) or the merge-on-query step would correctly refuse to
combine them.

:class:`SketchSpec` captures that configuration as data: a registry
``kind`` (see :mod:`repro.engine.registry`) plus the keyword arguments
of the sketch's constructor.  It is the unit of store configuration,
serialises alongside the buckets, and answers the two algebraic
questions the store routes on (``is_linear``, ``is_mergeable``)
without instantiating anything.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..engine.protocol import Sketch
from ..engine.registry import SketchPayloadError, sketch_class

__all__ = ["SketchSpec"]


@dataclass(frozen=True)
class SketchSpec:
    """A recipe for building identically-configured sketches.

    Parameters
    ----------
    kind:
        A registered sketch kind (``"tugofwar"``, ``"frequency"``, ...).
    params:
        Constructor keyword arguments, JSON-compatible.  For mergeable
        kinds the ``seed`` entry is what makes every bucket sketch of
        one store combinable.

    Examples
    --------
    >>> spec = SketchSpec("tugofwar", {"s1": 64, "s2": 5, "seed": 7})
    >>> a, b = spec.build(), spec.build()
    >>> a.merge(b).n
    0
    """

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        cls = sketch_class(self.kind)  # fail fast on unknown kinds
        params = dict(self.params)
        # A mergeable kind whose constructor is seeded *must* build
        # every sketch from one concrete seed, or no two builds could
        # ever merge.  An absent/None seed is pinned to fresh entropy
        # here, once, so the spec (and everything serialised from it)
        # stays reproducible from this point on.
        if (
            self.is_mergeable
            and "seed" in inspect.signature(cls).parameters
            and params.get("seed") is None
        ):
            params["seed"] = int(np.random.SeedSequence().generate_state(1)[0])
        object.__setattr__(self, "params", params)

    def build(self) -> Sketch:
        """A fresh, empty sketch of this specification."""
        return sketch_class(self.kind)(**self.params)

    @property
    def is_mergeable(self) -> bool:
        """Whether sketches of this kind can be combined with ``merge``."""
        return sketch_class(self.kind).merge is not Sketch.merge

    @property
    def is_linear(self) -> bool:
        """Whether the sketch state is linear in the frequency vector."""
        return bool(sketch_class(self.kind).is_linear)

    def to_dict(self) -> dict:
        """Serialise the spec to a JSON-compatible payload."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SketchSpec":
        """Reconstruct a spec from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping) or "kind" not in payload:
            raise SketchPayloadError(
                "sketch spec payload must be a mapping with a 'kind' key"
            )
        return cls(str(payload["kind"]), dict(payload.get("params", {})))
