"""The windowed sketch store: time-bucketed continuous maintenance.

The paper's setting is *maintenance*: estimates must stay available as
the data evolves, not just after a one-shot build.  This module adds
the time dimension.  A :class:`WindowedSketchStore` partitions the
timestamp axis into fixed-width buckets, keeps one sketch (of any
registry-known kind, see :class:`~repro.store.spec.SketchSpec`) per
non-empty bucket, and answers estimates over arbitrary bucket-aligned
windows ``[t0, t1)`` by merging the covered bucket sketches on the
fly.  Because mergeable sketches combine exactly (tug-of-war counters
add — linearity), the merged window sketch is **bit-identical** to a
monolithic sketch built over the same window, which the test suite and
``benchmarks/bench_engine.py`` assert.

Design points:

* **Routing.**  Ingestion takes parallel ``(timestamps, values)``
  arrays (plus optional signed ``counts`` for insert/delete batches),
  groups them by bucket with one stable argsort — so out-of-order
  arrivals land in the right bucket and within-bucket arrival order is
  preserved for order-sensitive samplers — and feeds each bucket
  through the vectorised :mod:`repro.engine.ingest` paths.
* **Spans.**  Buckets are stored as half-open *spans* of bucket
  indices.  A fresh bucket is a width-one span; compaction merges old
  spans into one wide span.  Queries must cover whole spans (a sketch
  cannot be split), which is exactly the bucket-alignment rule.
* **Merge-on-query.**  ``query(t0, t1)`` merges the covered span
  sketches with :func:`repro.engine.sharded.merge_sketches` and never
  mutates the store; single-span queries of non-mergeable kinds are
  answered from a serialisation round-trip copy.
* **Retention.**  ``compact`` folds history older than a horizon into
  one span (still queryable as part of any window containing it);
  ``evict`` forgets it.  Both can run automatically after ingestion
  via the ``retention_buckets`` / ``retention_policy`` settings.
* **Snapshot/restore.**  The whole store round-trips through
  ``to_dict`` / ``from_dict`` using the engine serialization registry,
  RNG state included, so a restored store continues bit-identically.
"""

from __future__ import annotations

import bisect
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Mapping

import numpy as np

from ..engine.ingest import ingest_stream
from ..engine.protocol import Sketch
from ..engine.registry import (
    SketchPayloadError,
    UnknownSketchKindError,
    dump_sketch,
    load_sketch,
)
from ..engine.sharded import merge_sketches
from .buckets import BucketLayout, BucketSpan, WindowAlignmentError
from .spec import SketchSpec

__all__ = ["WindowedSketchStore", "WindowAlignmentError", "BucketSpan"]


class WindowedSketchStore:
    """Time-bucketed sketches with vectorised ingestion and merge-on-query.

    Parameters
    ----------
    spec:
        The :class:`~repro.store.spec.SketchSpec` every bucket sketch
        is built from.  Mergeable kinds must carry an explicit seed in
        their params so bucket sketches are combinable.
    bucket_width:
        Width of one time bucket (integer time units, >= 1).  A
        prebuilt :class:`~repro.store.buckets.BucketLayout` may be
        passed instead (``origin`` is then ignored); a keyed fleet
        hands one shared layout to every per-key store.
    origin:
        Timestamp where bucket 0 begins; bucket boundaries are
        ``origin + k * bucket_width``.
    retention_buckets:
        If set, history older than this many buckets behind the newest
        ingested bucket is compacted or evicted after every ingest.
    retention_policy:
        ``"compact"`` folds expired spans into one span (history stays
        queryable in windows that contain it); ``"evict"`` drops them.

    Examples
    --------
    >>> store = WindowedSketchStore(
    ...     SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 1}),
    ...     bucket_width=10,
    ... )
    >>> store.ingest([3, 27, 14], [5, 5, 9])   # out of order is fine
    >>> round(store.estimate(0, 30), 1) >= 0
    True
    """

    def __init__(
        self,
        spec: SketchSpec,
        bucket_width: int,
        origin: int = 0,
        retention_buckets: int | None = None,
        retention_policy: str = "compact",
    ):
        if not isinstance(spec, SketchSpec):
            raise TypeError(f"spec must be a SketchSpec, got {type(spec).__name__}")
        self.spec = spec
        self.layout = (
            bucket_width
            if isinstance(bucket_width, BucketLayout)
            else BucketLayout(bucket_width, origin)
        )
        if retention_buckets is not None and int(retention_buckets) < 1:
            raise ValueError(
                f"retention_buckets must be >= 1, got {retention_buckets}"
            )
        self.retention_buckets = (
            None if retention_buckets is None else int(retention_buckets)
        )
        if retention_policy not in ("compact", "evict"):
            raise ValueError(
                f"retention_policy must be 'compact' or 'evict', got "
                f"{retention_policy!r}"
            )
        if (
            self.retention_buckets is not None
            and retention_policy == "compact"
            and not spec.is_mergeable
        ):
            # Caught here, not mid-ingest: retention runs after every
            # batch, so a non-mergeable kind would otherwise blow up
            # only once enough buckets exist — with the batch already
            # half-applied.
            raise ValueError(
                f"retention_policy='compact' cannot be used with the "
                f"non-mergeable sketch kind {spec.kind!r}; use "
                "retention_policy='evict'"
            )
        self.retention_policy = retention_policy
        self._spans: List[BucketSpan] = []  # sorted by start, non-overlapping

    # ------------------------------------------------------------------
    # Bucket arithmetic (delegated to the shared BucketLayout core)
    # ------------------------------------------------------------------
    @property
    def bucket_width(self) -> int:
        """Width of one time bucket (integer time units)."""
        return self.layout.bucket_width

    @property
    def origin(self) -> int:
        """Timestamp where bucket 0 begins."""
        return self.layout.origin

    def bucket_of(self, timestamp: int) -> int:
        """The bucket index containing ``timestamp`` (floor semantics)."""
        return self.layout.bucket_of(timestamp)

    def bucket_bounds(self, bucket: int) -> tuple[int, int]:
        """The half-open timestamp range ``[t0, t1)`` of one bucket."""
        return self.layout.bucket_bounds(bucket)

    def _boundary_bucket(self, t: int) -> int:
        """The bucket starting at ``t``; raises unless ``t`` is a boundary."""
        return self.layout.boundary_bucket(t)

    def _window_buckets(self, t0: int, t1: int, align: str) -> tuple[int, int]:
        """Convert a timestamp window to a half-open bucket range."""
        return self.layout.window_buckets(t0, t1, align)

    def _spans_in(self, b0: int, b1: int) -> List[BucketSpan]:
        return [s for s in self._spans if s.start < b1 and s.end > b0]

    def _span_for_bucket(self, bucket: int) -> BucketSpan:
        """The span holding ``bucket``, creating a width-one span if new.

        Late arrivals older than a compacted span fold directly into
        that span's sketch, so spans never overlap.  The span list is
        kept sorted by start, so lookup and insertion are O(log S) —
        long-lived stores accumulate thousands of spans and a linear
        scan here would make continuous ingestion quadratic.
        """
        i = bisect.bisect_right(self._spans, bucket, key=lambda s: s.start) - 1
        if i >= 0 and self._spans[i].covers(bucket):
            return self._spans[i]
        span = BucketSpan(bucket, bucket + 1, self.spec.build())
        self._spans.insert(i + 1, span)
        return span

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        timestamps: np.ndarray | Iterable[int],
        values: np.ndarray | Iterable[int],
        counts: np.ndarray | Iterable[int] | None = None,
        max_workers: int | None = None,
    ) -> None:
        """Route a timestamped batch to its buckets and bulk-load each.

        Parameters
        ----------
        timestamps, values:
            Parallel 1-D integer arrays; any timestamp order (late and
            out-of-order arrivals are routed by value, not position).
        counts:
            Optional signed multiplicities: entry i applies ``counts[i]``
            occurrences of ``values[i]`` (negative = deletions, applied
            through each sketch's own delete semantics).  Omitted means
            one insertion per entry.  Deletions are *retractions*: they
            must carry the timestamp of the insert they reverse, so
            they route to the bucket that holds it — a bucket sketch
            summarises only its own events.  As in the paper's tracking
            model, validity of the delete stream is the caller's
            responsibility; detection of a mis-routed delete is
            best-effort (guaranteed for the exact ``frequency`` kind,
            but a linear sketch only notices when a bucket's total
            count would go negative).  A detected violation (or any
            sketch-level precondition failure) raises ``ValueError``
            with the offending bucket named; updates to other buckets
            of the batch may already be applied, so treat a failed
            batch as a reason to restore from the last snapshot.
        max_workers:
            If set, distinct buckets are loaded concurrently on that
            many threads.  Mergeable kinds build a per-bucket *delta*
            sketch and combine it with
            :func:`~repro.engine.sharded.merge_sketches`, so the result
            is bit-identical to the serial path; non-mergeable kinds
            are updated in place (each bucket is touched by exactly one
            worker, so this too matches the serial result bit for bit).
        """
        ts = np.asarray(timestamps, dtype=np.int64)
        vals = np.asarray(values, dtype=np.int64)
        if ts.ndim != 1 or vals.ndim != 1 or ts.shape != vals.shape:
            raise ValueError(
                f"timestamps {ts.shape} and values {vals.shape} must be "
                "equal-length 1-D arrays"
            )
        cnts = None
        if counts is not None:
            cnts = np.asarray(counts, dtype=np.int64)
            if cnts.shape != vals.shape:
                raise ValueError(
                    f"counts {cnts.shape} must match values {vals.shape}"
                )
        if ts.size == 0:
            return

        buckets = (ts - self.origin) // self.bucket_width
        if bool((buckets == buckets[0]).all()):
            # Arrival-batched streams routinely land a whole batch in
            # one bucket; the stable sort below would be the identity
            # permutation, so skip it (and the fancy-index copies).
            starts = np.array([0])
            ends = np.array([buckets.size])
        else:
            # Stable sort: groups by bucket while preserving arrival
            # order within each bucket (order matters for the samplers).
            order = np.argsort(buckets, kind="stable")
            buckets = buckets[order]
            vals = vals[order]
            if cnts is not None:
                cnts = cnts[order]
            cuts = np.flatnonzero(np.diff(buckets)) + 1
            starts = np.concatenate(([0], cuts))
            ends = np.concatenate((cuts, [buckets.size]))

        # One job per *span*, not per bucket: several bucket groups can
        # resolve to the same compacted span, and a span must only ever
        # be touched by one worker (concurrent read-merge-write on the
        # same span would drop updates).  Segments stay in bucket order
        # within each job, matching the serial processing order.
        jobs: dict[int, tuple[BucketSpan, list]] = {}
        for lo, hi in zip(starts.tolist(), ends.tolist()):
            span = self._span_for_bucket(int(buckets[lo]))  # serial phase
            segments = jobs.setdefault(id(span), (span, []))[1]
            segments.append((vals[lo:hi], None if cnts is None else cnts[lo:hi]))

        if max_workers is None:
            for span, segments in jobs.values():
                self._load_span(span, segments)
        else:
            if max_workers < 1:
                raise ValueError(f"max_workers must be >= 1, got {max_workers}")
            mergeable = self.spec.is_mergeable

            def run(job) -> None:
                span, segments = job
                # Delta-build only works when the job is insert-only: a
                # net-negative histogram cannot be applied to an empty
                # delta (the sketch rightly rejects going below zero),
                # while the span's own sketch holds the occurrences
                # being deleted.  Each span is owned by exactly one
                # worker, so in-place updates are just as safe.
                insert_only = all(
                    c is None or int(c.min(initial=0)) >= 0 for _, c in segments
                )
                if mergeable and insert_only:
                    delta = self.spec.build()
                    for v, c in segments:
                        self._load_into(delta, v, c)
                    span.sketch = merge_sketches([span.sketch, delta])
                else:
                    self._load_span(span, segments)

            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                list(pool.map(run, jobs.values()))
        self._apply_retention()

    @staticmethod
    def _load_into(sketch: Sketch, values: np.ndarray, counts) -> None:
        if counts is None:
            ingest_stream(sketch, values)
        else:
            sketch.update_from_frequencies(values, counts)

    def _load_span(self, span: BucketSpan, segments: list) -> None:
        """Apply a job's segments to one span, naming it on failure.

        A sketch-level rejection (most commonly a delete routed to a
        bucket that never saw the insert) is re-raised as ``ValueError``
        with the span's timestamp range so the caller can locate the
        offending events.  ``KeyError`` is included because the exact
        ``frequency`` kind signals unmatched deletes that way, and
        ``NotImplementedError`` because insertion-only kinds reject
        deletion counts with it.
        """
        for v, c in segments:
            try:
                self._load_into(span.sketch, v, c)
            except (ValueError, KeyError, NotImplementedError) as exc:
                lo, _ = self.bucket_bounds(span.start)
                _, hi = self.bucket_bounds(span.end - 1)
                reason = exc.args[0] if exc.args else exc
                raise ValueError(
                    f"bucket span [{lo}, {hi}): {reason} (deletions must "
                    "carry the timestamp of the insert they reverse)"
                ) from exc

    def _apply_retention(self) -> None:
        if self.retention_buckets is None or not self._spans:
            return
        horizon = max(s.end for s in self._spans) - self.retention_buckets
        if self.retention_policy == "evict":
            self._evict_spans(horizon)
        else:
            self._compact_spans(horizon)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def window_bounds(
        self, t0: int, t1: int, align: str = "strict"
    ) -> tuple[int, int]:
        """The timestamp window a query would actually cover.

        Expands ``[t0, t1)`` to bucket boundaries (under ``align``
        rules) and then to whole spans, so the caller knows the exact
        range the returned estimate summarises.
        """
        return self.layout.align_spans(t0, t1, align, self.bucket_spans)

    def query(self, t0: int, t1: int, align: str = "strict") -> Sketch:
        """The sketch of every event in the window ``[t0, t1)``.

        Merges the covered span sketches on the fly; the store is
        never mutated and the result is an independent sketch.  For
        mergeable kinds it is bit-identical to a monolithic sketch of
        the window's events.  A window covering several spans of a
        non-mergeable kind raises
        :class:`~repro.engine.protocol.MergeUnsupportedError`.
        """
        lo, hi = self.window_bounds(t0, t1, align)
        return self.query_resolved(lo, hi)

    def query_resolved(self, lo: int, hi: int) -> Sketch:
        """:meth:`query` for an already-resolved span-aligned window.

        ``(lo, hi)`` must come from :meth:`window_bounds`; callers that
        need both the resolved window and its sketch (the estimation
        service caches the pair) use this to resolve once instead of
        twice.
        """
        b0 = (lo - self.origin) // self.bucket_width
        b1 = (hi - self.origin) // self.bucket_width
        spans = self._spans_in(b0, b1)
        if not spans:
            return self.spec.build()
        if len(spans) == 1 and not self.spec.is_mergeable:
            # Detached copy through the serialization registry, so the
            # caller cannot mutate the stored bucket.
            return load_sketch(dump_sketch(spans[0].sketch))
        if len(spans) == 1:
            return merge_sketches([self.spec.build(), spans[0].sketch])
        return merge_sketches([s.sketch for s in spans])

    def estimate(self, t0: int, t1: int, align: str = "strict") -> float:
        """Self-join estimate over the window (merge-on-query)."""
        return float(self.query(t0, t1, align=align).estimate())

    # ------------------------------------------------------------------
    # Retention: compaction and eviction
    # ------------------------------------------------------------------
    def compact(self, before: int | None = None) -> int:
        """Merge spans strictly older than ``before`` into one span.

        ``before`` must lie on a bucket boundary (``None`` compacts all
        spans).  Only spans *entirely* before the horizon are touched.
        Returns the number of spans that were folded together (0 if
        fewer than two qualified).
        """
        horizon = None if before is None else self._boundary_bucket(before)
        return self._compact_spans(horizon)

    def _compact_spans(self, horizon: int | None) -> int:
        old = [
            s for s in self._spans if horizon is None or s.end <= horizon
        ]
        if len(old) < 2:
            return 0
        if not self.spec.is_mergeable:
            raise TypeError(
                f"cannot compact {self.spec.kind!r} buckets: the kind does "
                "not support merging (use retention_policy='evict')"
            )
        merged = BucketSpan(
            min(s.start for s in old),
            max(s.end for s in old),
            merge_sketches([s.sketch for s in old]),
        )
        old_ids = {id(s) for s in old}
        kept = [s for s in self._spans if id(s) not in old_ids]
        self._spans = sorted(kept + [merged], key=lambda s: s.start)
        return len(old)

    def evict(self, before: int) -> int:
        """Drop spans entirely older than ``before`` (a bucket boundary).

        Evicted history is forgotten: subsequent windows that would
        have covered it simply see no events there.  Returns the
        number of spans dropped.
        """
        return self._evict_spans(self._boundary_bucket(before))

    def _evict_spans(self, horizon: int) -> int:
        old = [s for s in self._spans if s.end <= horizon]
        self._spans = [s for s in self._spans if s.end > horizon]
        return len(old)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[tuple[int, int]]:
        """Timestamp ranges ``[t0, t1)`` of the stored spans, in order."""
        return [
            (self.bucket_bounds(s.start)[0], self.bucket_bounds(s.end - 1)[1])
            for s in self._spans
        ]

    @property
    def bucket_spans(self) -> list[tuple[int, int]]:
        """Bucket-index ranges ``[b0, b1)`` of the stored spans, in order.

        The bucket-level twin of :attr:`spans`; the estimation service
        diffs this structure around mutations to invalidate exactly the
        cached windows a mutation could have changed.
        """
        return [(s.start, s.end) for s in self._spans]

    def covering_span(self, bucket: int) -> tuple[int, int] | None:
        """The bucket-index span holding ``bucket``, or None if uncovered.

        Because a span's sketch cannot be split, any mutation that
        touches one bucket of a span affects every query whose window
        intersects the *whole* span — which is why cache invalidation
        works on covering spans, not raw buckets.
        """
        b = int(bucket)
        i = bisect.bisect_right(self._spans, b, key=lambda s: s.start) - 1
        if i >= 0 and self._spans[i].covers(b):
            return self._spans[i].start, self._spans[i].end
        return None

    @property
    def span_count(self) -> int:
        """Number of stored bucket spans."""
        return len(self._spans)

    @property
    def coverage(self) -> tuple[int, int] | None:
        """Timestamp range from oldest to newest span, or None if empty."""
        if not self._spans:
            return None
        lo, _ = self.bucket_bounds(self._spans[0].start)
        _, hi = self.bucket_bounds(self._spans[-1].end - 1)
        return lo, hi

    @property
    def memory_words(self) -> int:
        """Total storage across bucket sketches (paper cost model)."""
        return sum(s.sketch.memory_words for s in self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WindowedSketchStore(kind={self.spec.kind!r}, "
            f"width={self.bucket_width}, spans={len(self._spans)}, "
            f"coverage={self.coverage})"
        )

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise the whole store (config + every bucket sketch)."""
        return {
            "kind": "windowed-store",
            "spec": self.spec.to_dict(),
            "bucket_width": self.bucket_width,
            "origin": self.origin,
            "retention_buckets": self.retention_buckets,
            "retention_policy": self.retention_policy,
            "spans": [
                [s.start, s.end, dump_sketch(s.sketch)] for s in self._spans
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "WindowedSketchStore":
        """Reconstruct a store from :meth:`to_dict` output.

        Bucket sketches are restored through the serialization
        registry, RNG state included, so continued ingestion is
        bit-identical to a store that was never snapshotted.
        """
        if not isinstance(payload, Mapping):
            raise SketchPayloadError(
                f"store payload must be a mapping, got {type(payload).__name__}"
            )
        if payload.get("kind") != "windowed-store":
            raise SketchPayloadError(
                f"not a windowed-store payload: kind={payload.get('kind')!r}"
            )
        try:
            store = cls(
                SketchSpec.from_dict(payload["spec"]),
                bucket_width=int(payload["bucket_width"]),
                origin=int(payload.get("origin", 0)),
                retention_buckets=payload.get("retention_buckets"),
                retention_policy=payload.get("retention_policy", "compact"),
            )
            spans = [
                BucketSpan(int(b0), int(b1), load_sketch(sketch))
                for b0, b1, sketch in payload["spans"]
            ]
        except (SketchPayloadError, UnknownSketchKindError):
            raise  # already actionable; don't bury under a generic wrapper
        except (KeyError, TypeError, ValueError) as exc:
            raise SketchPayloadError(f"corrupt windowed-store payload: {exc}") from exc
        spans.sort(key=lambda s: s.start)
        for span in spans:
            if span.end <= span.start:
                raise SketchPayloadError(
                    f"corrupt windowed-store payload: empty span "
                    f"[{span.start}, {span.end})"
                )
        for a, b in zip(spans, spans[1:]):
            if b.start < a.end:
                raise SketchPayloadError(
                    f"corrupt windowed-store payload: spans "
                    f"[{a.start}, {a.end}) and [{b.start}, {b.end}) overlap"
                )
        store._spans = spans
        return store
