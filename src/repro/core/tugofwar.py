"""The tug-of-war (AMS) sketch for tracking self-join sizes.

Section 2.2 of the paper.  The sketch keeps ``s = s1 * s2`` atomic
counters ``Z_{i,j} = sum_v eps_{i,j}(v) * f_v`` where each ``eps`` is a
4-wise independent +/-1 mapping of the value domain.  Every member of
the multiset "pulls the rope" in the direction its value hashes to;
[AMS99] shows ``E[Z^2] = SJ(R)`` and ``Var[Z^2] <= 2 SJ(R)^2``, so the
median of s2 means of s1 squared counters is within ``4 / sqrt(s1)``
relative error with probability ``1 - 2^(-s2/2)`` (Theorem 2.2).

The tracking extension is immediate and exact: insert(v) adds
``eps(v)`` to every counter, delete(v) subtracts it.  The sketch is a
linear function of the frequency vector, which also gives us:

* **mergeability** — sketches of disjoint streams built with the same
  hash seeds add component-wise;
* **batch updates** — a whole frequency histogram can be folded in with
  one matrix-vector product, which is how the experiment harness
  processes million-element streams in milliseconds;
* **join estimation** — the inner product of two sketches estimates
  the join size (Section 4.3; see :mod:`repro.core.join`).

Costs match Theorem 2.2: O(s) time per insert/delete/query, O(s)
memory words.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..engine.protocol import Sketch, as_histogram
from ..engine.registry import register_sketch
from .. import kernels
from .estimators import (
    group_shape_for,
    median_of_means,
    theoretical_confidence,
    theoretical_relative_error,
)
from .hashing import SignHashFamily

__all__ = ["TugOfWarSketch"]

#: Chunk width for batch updates: bounds the (s, chunk) sign matrix
#: materialised at once so the working set stays cache-resident (a
#: 4096-wide chunk at s=1280 is a 40 MB uint64 matrix — measurably
#: slower than this width on memory-bandwidth-bound hosts).
_BATCH_CHUNK = 1024


@register_sketch
class TugOfWarSketch(Sketch):
    """Tracks the self-join size of a multiset under inserts and deletes.

    Parameters
    ----------
    s1:
        Number of basic estimators averaged per group; controls
        accuracy (error ~ ``4 / sqrt(s1)``).
    s2:
        Number of groups medianed; controls confidence
        (failure ~ ``2^(-s2/2)``).
    seed:
        Seed for the 4-wise independent sign family.  Sketches that
        must be merged or joined against each other **must** share a
        seed (checked at merge/join time via the family itself).
    independence:
        k-wise independence of the sign family; 4 (the default) is what
        the variance analysis requires.  Exposed for the 2-wise
        ablation benchmark.

    Examples
    --------
    >>> sk = TugOfWarSketch(s1=64, s2=5, seed=7)
    >>> for v in [1, 2, 2, 3, 3, 3]:
    ...     sk.insert(v)
    >>> sk.delete(3)
    >>> est = sk.estimate()   # true SJ is 1 + 4 + 4 = 9
    """

    kind = "tugofwar"
    is_linear = True  # state is a linear map of the frequency vector
    describe = (
        "AMS tug-of-war linear sketch for the self-join size F_2; "
        "mergeable, deletion-exact"
    )

    __slots__ = ("s1", "s2", "_signs", "_z", "_n")

    def __init__(
        self,
        s1: int,
        s2: int = 1,
        seed: int | None = None,
        independence: int = 4,
    ):
        self.s1, self.s2 = group_shape_for(s1, s2)
        self._signs = SignHashFamily(
            self.s1 * self.s2, seed=seed, independence=independence
        )
        self._z = np.zeros(self.s1 * self.s2, dtype=np.int64)
        self._n = 0

    # ------------------------------------------------------------------
    # Updates (Theorem 2.2: O(s) per operation)
    # ------------------------------------------------------------------
    def insert(self, value: int) -> None:
        """Process insert(v): add eps(v) to every counter."""
        kernels.tugofwar_update_one(self._signs.coefficients, value, 1, self._z)
        self._n += 1

    def delete(self, value: int) -> None:
        """Process delete(v): subtract eps(v) from every counter.

        Deletions are exact inverses of insertions, so the sketch state
        after ``insert(v); delete(v)`` is identical to the state
        before — no accuracy is lost under deletions (unlike
        sample-count, which drops sample points).
        """
        if self._n <= 0:
            raise ValueError("cannot delete from an empty multiset")
        kernels.tugofwar_update_one(self._signs.coefficients, value, -1, self._z)
        self._n -= 1

    def update(self, value: int, count: int) -> None:
        """Fold ``count`` occurrences of ``value`` in at once.

        ``count`` may be negative (a batch of deletions).  Equivalent
        to ``count`` individual insert/delete calls but O(s) total.
        """
        c = int(count)
        if c == 0:
            return
        if self._n + c < 0:
            raise ValueError(
                f"deleting {-c} occurrences would make the multiset size negative"
            )
        kernels.tugofwar_update_one(self._signs.coefficients, value, c, self._z)
        self._n += c

    def update_from_frequencies(
        self, values: np.ndarray | Iterable[int], counts: np.ndarray | Iterable[int]
    ) -> None:
        """Fold a whole frequency histogram into the sketch.

        This is the vectorised bulk-loading path used by the experiment
        harness: for each distinct value v with count c it performs
        ``Z += c * eps(v)`` via the fused scatter kernel
        (:func:`repro.kernels.tugofwar_scatter`), chunked so the
        working set stays cache-resident.  The result is bit-identical
        to the equivalent sequence of :meth:`update` calls (linearity)
        on every kernel backend, which the test suite verifies.
        """
        vals, cnts = as_histogram(values, counts)
        total = int(cnts.sum())
        if self._n + total < 0:
            raise ValueError("batch would make the multiset size negative")
        coeffs = self._signs.coefficients
        for start in range(0, vals.size, _BATCH_CHUNK):
            kernels.tugofwar_scatter(
                coeffs,
                vals[start : start + _BATCH_CHUNK],
                cnts[start : start + _BATCH_CHUNK],
                self._z,
            )
        self._n += total

    def update_from_stream(self, values: np.ndarray | Iterable[int]) -> None:
        """Fold an insertion-only stream in via its histogram."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.size == 0:
            return
        uniq, counts = np.unique(arr, return_counts=True)
        self.update_from_frequencies(uniq, counts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def basic_estimators(self) -> np.ndarray:
        """The s1*s2 individual estimators ``X_{i,j} = Z_{i,j}^2``.

        Figure 15 of the paper plots exactly these values (sorted) to
        show why median-of-means combining is essential.
        """
        z = self._z.astype(np.float64)
        return z * z

    def estimate(self) -> float:
        """Median-of-means self-join estimate (steps 2–3 of the algorithm)."""
        return median_of_means(self.basic_estimators().reshape(self.s2, self.s1))

    def estimate_mean(self) -> float:
        """Plain-average variant (ablation; no median stage)."""
        return float(self.basic_estimators().mean())

    def estimate_median(self) -> float:
        """Plain-median variant (ablation; no averaging stage)."""
        return float(np.median(self.basic_estimators()))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def merge(self, other: "TugOfWarSketch") -> "TugOfWarSketch":
        """Return the sketch of the union of the two underlying multisets.

        Requires identical shape *and* identical hash families (built
        from the same seed); the counters are then simply additive.
        """
        self._check_compatible(other)
        merged = self.copy()
        merged._z = self._z + other._z
        merged._n = self._n + other._n
        return merged

    def inner_product(self, other: "TugOfWarSketch") -> float:
        """Median-of-means estimate of the *join size* with ``other``.

        This is the k-TW join estimator of Section 4.3 generalised to
        the (s1, s2) grid: each product ``Z_F * Z_G`` has expectation
        ``|F join G|`` and variance at most ``2 SJ(F) SJ(G)``
        (Lemma 4.4).  The paper's k-TW scheme is the s2 = 1 case (plain
        mean of k products); use :meth:`inner_product_mean` for the
        literal scheme.
        """
        self._check_compatible(other)
        products = (self._z.astype(np.float64) * other._z.astype(np.float64)).reshape(
            self.s2, self.s1
        )
        return median_of_means(products)

    def inner_product_mean(self, other: "TugOfWarSketch") -> float:
        """The literal k-TW estimator: arithmetic mean of the products."""
        self._check_compatible(other)
        return float((self._z.astype(np.float64) * other._z.astype(np.float64)).mean())

    def _check_compatible(self, other: "TugOfWarSketch") -> None:
        if not isinstance(other, TugOfWarSketch):
            raise TypeError(f"expected TugOfWarSketch, got {type(other).__name__}")
        if (self.s1, self.s2) != (other.s1, other.s2):
            raise ValueError(
                f"shape mismatch: ({self.s1},{self.s2}) vs ({other.s1},{other.s2})"
            )
        if self._signs != other._signs:
            raise ValueError(
                "sketches use different hash families; build both with the same seed"
            )

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Current multiset size (inserts minus deletes)."""
        return self._n

    @property
    def memory_words(self) -> int:
        """Storage in the paper's memory-word cost model: s = s1 * s2."""
        return self.s1 * self.s2

    @property
    def counters(self) -> np.ndarray:
        """Read-only view of the raw Z counters (flat, length s)."""
        view = self._z.view()
        view.flags.writeable = False
        return view

    def error_bound(self) -> float:
        """Theorem 2.2 guaranteed relative error ``4 / sqrt(s1)``."""
        return theoretical_relative_error(self.s1)

    def confidence(self) -> float:
        """Theorem 2.2 success probability ``1 - 2^(-s2/2)``."""
        return theoretical_confidence(self.s2)

    def copy(self) -> "TugOfWarSketch":
        """Independent deep copy sharing the same (immutable) hashes."""
        dup = TugOfWarSketch.__new__(TugOfWarSketch)
        dup.s1, dup.s2 = self.s1, self.s2
        dup._signs = self._signs  # immutable after construction
        dup._z = self._z.copy()
        dup._n = self._n
        return dup

    def to_dict(self) -> dict:
        """Serialise the full sketch state to plain Python types."""
        return {
            "kind": self.kind,
            "s1": self.s1,
            "s2": self.s2,
            "n": self._n,
            "z": self._z.tolist(),
            "signs": self._signs.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TugOfWarSketch":
        """Reconstruct a sketch from :meth:`to_dict` output."""
        if payload.get("kind") != "tugofwar":
            raise ValueError(f"not a TugOfWarSketch payload: {payload.get('kind')!r}")
        sketch = cls.__new__(cls)
        sketch.s1 = int(payload["s1"])
        sketch.s2 = int(payload["s2"])
        sketch._n = int(payload["n"])
        sketch._z = np.asarray(payload["z"], dtype=np.int64)
        if sketch._z.shape != (sketch.s1 * sketch.s2,):
            raise ValueError(
                f"counter vector has shape {sketch._z.shape}, "
                f"expected ({sketch.s1 * sketch.s2},)"
            )
        sketch._signs = SignHashFamily.from_dict(payload["signs"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TugOfWarSketch(s1={self.s1}, s2={self.s2}, n={self._n}, "
            f"words={self.memory_words})"
        )
