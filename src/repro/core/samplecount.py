"""The improved sample-count algorithm (Figure 1 of the paper).

Sample-count is the first AMS self-join estimator: pick a uniformly
random stream position p with value v, count the occurrences ``r`` of v
at or after p, and use ``X = n (2 r - 1)`` — an unbiased estimator of
``SJ(R)`` whose median-of-means over ``s = s1 * s2`` copies is within
``4 t^{1/4} / sqrt(s1)`` relative error with probability
``1 - 2^{-s2/2}`` (Theorem 2.1).

The naive implementation costs Omega(k) per insert when the inserted
value occurs k times among the sample points (Omega(s) on skewed data)
plus Theta(s) per insert for reservoir maintenance.  The paper's
contribution — reproduced faithfully here — is the O(1)-amortised
update structure:

* ``Pos[i]`` / the ``P_m`` look-up table: each sample slot i knows the
  *future* stream position at which it will (re)sample, selected with
  the reservoir-sampling *skipping* technique of [Vit85], so positions
  are replaced in O(1) amortised time instead of s coin flips per
  insert.
* ``N_v``: one running occurrence counter per value *currently in the
  sample* (O(s) of them), incremented once per insert — instead of
  incrementing up to s per-slot counters.
* ``EntryN_v[i]``: snapshot of ``N_v`` when slot i entered, so slot i's
  count is reconstructed at query time as ``r_i = N_v - EntryN_v[i]``.
* ``S_v``: a doubly-linked list of the slots holding value v, ordered
  most-recently-entered first, so a deletion can evict exactly the
  slots whose sampled insertion is the one being reversed.

Deletions follow the canonical-sequence semantics of Section 2.1: a
``delete(v)`` reverses the most recent undeleted ``insert(v)``.  After
decrementing ``N_v``, every slot at the head of ``S_v`` whose snapshot
now equals ``N_v`` is exactly a slot that sampled the reversed
insertion, and is removed from the sample (it is *not* replaced; the
paper's Chernoff argument shows at least s/2 slots survive when
deletions are at most a 1/5 fraction of any prefix).

Two query paths are provided, matching the two variants in the paper:

* :class:`SampleCountSketch` — O(1) amortised updates, O(s) queries
  (the Figure 1 algorithm);
* :class:`SampleCountFastQuery` — maintains the group sums ``Y_j``
  during updates (the ``k_{v,j}`` / ``Num_j`` scheme described at the
  end of Section 2.1) for O(s2) queries at O(s2) amortised update cost.

For the experiment harness there is also
:func:`sample_count_estimate_offline`, a vectorised known-n evaluator
that draws the s positions up front and computes every ``r_i`` with
numpy; it implements the same estimator (the [AMS99] insertion-only
description) and is validated against the tracking classes in the test
suite.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import Iterable

import numpy as np

from ..engine.protocol import Sketch, as_histogram
from ..engine.registry import register_sketch
from ..kernels import (
    counter_key,
    counter_u01,
    counter_u01_one,
    counter_u64_one,
    sampler_segment_counts,
)
from ..streams.reservoir import _fresh_seed
from .estimators import group_shape_for, median_of_means

__all__ = [
    "SampleCountSketch",
    "SampleCountFastQuery",
    "sample_count_estimate_offline",
]

_NO_SLOT = -1

#: RNG schemes a sample-count tracker can draw from (see
#: :class:`SampleCountSketch` — ``counter`` is the default for new
#: instances, ``pcg64`` the legacy stateful scheme kept for snapshots).
SAMPLECOUNT_SCHEMES = ("counter", "pcg64")


def _default_initial_range(s: int) -> int:
    """The paper's warm-up window: positions drawn from {1..s log s}."""
    return s * max(1, math.ceil(math.log2(max(s, 2))))


@register_sketch
class SampleCountSketch(Sketch):
    """Tracks SJ(R) under inserts and deletes in O(s) memory words.

    Parameters
    ----------
    s1:
        Accuracy parameter: group size for the averaging stage
        (Theorem 2.1 error ~ ``4 t^{1/4} / sqrt(s1)``).
    s2:
        Confidence parameter: number of groups medianed.
    seed:
        RNG seed for position selection (reservoir sampling).
    initial_range:
        The window {1..initial_range} from which the initial positions
        are drawn.  Defaults to the paper's ``s * ceil(log2 s)``.  For
        insertion-only experiments with a known stream length n, pass
        ``initial_range=n`` to reproduce the a-priori-n scheme of
        [AMS99] (uniform positions over the whole stream).
    rng_scheme:
        ``"counter"`` (default) keys every reservoir draw by the
        (stream position, slot) pair through the counter RNG of
        :mod:`repro.kernels` — draws are pure functions of the seed,
        which is what lets :meth:`update_from_stream` precompute the
        whole replacement chain and batch the suffix counting through
        a compiled kernel.  ``"pcg64"`` is the legacy stateful scheme;
        old snapshots load onto it and continue draw for draw.

    Notes
    -----
    Slot i's group is ``i // s1``; group means are medianed at query
    time.  Slots whose position has not yet arrived (or that were
    evicted by a deletion) simply do not contribute — exactly the
    "ignore i that are not in the sample" rule of steps 28–31.
    """

    kind = "samplecount"
    describe = (
        "AMS sample-count tracker for the self-join size F_2 "
        "(position-sampled; insert/delete, not mergeable)"
    )

    #: Histogram entries with counts at most this expand through the
    #: vectorised stream path; larger counts use the arithmetic repeat
    #: walk of :meth:`_insert_repeated` (identical draws either way).
    _EXPAND_MAX = 1 << 16

    #: Target expanded-buffer size per bulk flush.
    _EXPAND_CHUNK = 1 << 17

    #: Reservoir events per compiled segment-counting call: bounds the
    #: (events, tracked-values) count matrix to a few MB per call.
    _EVENT_CHUNK = 256

    def __init__(
        self,
        s1: int,
        s2: int = 1,
        seed: int | None = None,
        initial_range: int | None = None,
        rng_scheme: str = "counter",
    ):
        if rng_scheme not in SAMPLECOUNT_SCHEMES:
            raise ValueError(
                f"unknown RNG scheme {rng_scheme!r}; "
                f"choose from {SAMPLECOUNT_SCHEMES}"
            )
        self.s1, self.s2 = group_shape_for(s1, s2)
        s = self.s1 * self.s2
        self._s = s
        self.rng_scheme = rng_scheme
        if rng_scheme == "counter":
            self.seed = _fresh_seed() if seed is None else int(seed)
            self._key = counter_key(self.seed)
            self._rng = None
        else:
            self.seed = None
            self._key = None
            self._rng = np.random.default_rng(seed)
        self.initial_range = (
            int(initial_range) if initial_range is not None else _default_initial_range(s)
        )
        if self.initial_range < 1:
            raise ValueError(f"initial_range must be >= 1, got {self.initial_range}")

        self._n = 0  # current multiset size
        # Future positions: P_m look-up table, position -> [slot indices].
        self._pending: dict[int, list[int]] = {}
        if rng_scheme == "counter":
            # Slot i's initial position is draw i at reserved stream
            # position 0 (real positions start at 1, so replacement
            # draws never alias the initialisation draws).
            initial = [
                1 + counter_u64_one(self._key, 0, i) % self.initial_range
                for i in range(s)
            ]
        else:
            initial = self._rng.integers(1, self.initial_range + 1, size=s).tolist()
        for i, m in enumerate(initial):
            self._pending.setdefault(int(m), []).append(i)

        # Per-slot state.
        self._in_sample = np.zeros(s, dtype=bool)
        self._val = np.zeros(s, dtype=np.int64)  # Val[i]
        self._entry = np.zeros(s, dtype=np.int64)  # EntryN_v[i]
        # Doubly-linked S_v lists (next/prev arrays + per-value heads).
        self._next = np.full(s, _NO_SLOT, dtype=np.int64)
        self._prev = np.full(s, _NO_SLOT, dtype=np.int64)
        self._head: dict[int, int] = {}
        # Running counts N_v for values occurring in the sample.
        self._nv: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Hooks overridden by the fast-query variant (no-ops here)
    # ------------------------------------------------------------------
    def _hook_slot_entered(self, i: int, v: int) -> None:
        """Called after slot i enters the sample holding value v."""

    def _hook_slot_discarded(self, i: int, v: int, r: int) -> None:
        """Called after a reservoir replacement discards slot i (count r)."""

    def _hook_value_inserted(self, v: int) -> None:
        """Called after N_v is incremented by an insert of v."""

    def _hook_value_inserted_bulk(self, v: int, count: int) -> None:
        """Called after N_v is incremented by ``count`` inserts of v.

        The bulk-ingestion path aggregates segment occurrences of a
        tracked value; subclasses must make this equivalent to
        ``count`` calls of :meth:`_hook_value_inserted`.
        """

    def _hook_value_delete_pre(self, v: int) -> None:
        """Called on delete(v) for a tracked v, before N_v is decremented."""

    def _hook_slot_evicted_by_delete(self, i: int, v: int) -> None:
        """Called after a delete evicts slot i from the sample."""

    # ------------------------------------------------------------------
    # Linked-list plumbing for the S_v lists
    # ------------------------------------------------------------------
    def _push_head(self, v: int, i: int) -> None:
        old = self._head.get(v, _NO_SLOT)
        self._next[i] = old
        self._prev[i] = _NO_SLOT
        if old != _NO_SLOT:
            self._prev[old] = i
        self._head[v] = i

    def _unlink(self, v: int, i: int) -> None:
        nxt = int(self._next[i])
        prv = int(self._prev[i])
        if prv != _NO_SLOT:
            self._next[prv] = nxt
        else:
            if nxt != _NO_SLOT:
                self._head[v] = nxt
            else:
                del self._head[v]
        if nxt != _NO_SLOT:
            self._prev[nxt] = prv
        self._next[i] = _NO_SLOT
        self._prev[i] = _NO_SLOT

    # ------------------------------------------------------------------
    # Reservoir skipping [Vit85]
    # ------------------------------------------------------------------
    def _skip_from(self, base: int) -> int:
        """Next replacement position for a size-1 reservoir at ``base``.

        The survival law is P(next > x) = base / x for x >= base; the
        inverse-transform draw is ``ceil(base / u)`` with u uniform on
        (0, 1], clamped to base + 1 (the event next == base has
        probability zero).  Expected gap ~ base, which is what makes
        all s reservoirs cost O(1) amortised once n >= s log s.
        """
        u = 1.0 - float(self._rng.random())  # in (0, 1]
        return max(base + 1, math.ceil(base / u))

    def _next_position(self, i: int, p: int) -> int:
        """The next replacement position of slot i firing at position p.

        Under the counter scheme the uniform is draw ``i`` at stream
        position ``p`` — a pure function of (seed, p, i), so the
        batched walker can compute the whole replacement chain up
        front and still land on exactly the positions a scalar insert
        loop would have drawn.  Under legacy pcg64 it consumes the
        stateful generator exactly as the seed implementation did.
        """
        base = max(p, self.initial_range)
        if self.rng_scheme == "counter":
            u = counter_u01_one(self._key, p, i)
            return max(base + 1, math.ceil(base / u))
        return self._skip_from(base)

    def _entering_order(self, entering: list[int]) -> list[int]:
        """Processing order for slots that share one sample position.

        Canonical ascending-slot order under the counter scheme (so
        the scalar loop and the batched walker build identical S_v
        lists); legacy pcg64 keeps arrival order, which is what its
        stateful draw sequence was recorded against.
        """
        if self.rng_scheme == "counter":
            return sorted(entering)
        return entering

    def _pending_add(self, position: int, i: int) -> None:
        """Register slot i to (re)sample at ``position``.

        Counter-scheme pending lists are kept sorted by slot index —
        the canonical order :meth:`_entering_order` processes them in —
        so the scalar loop and the batched walker (which discovers the
        same positions in a different traversal order) serialise to
        identical state.  pcg64 keeps arrival order, which its stateful
        draw sequence depends on.
        """
        slots = self._pending.setdefault(position, [])
        if self.rng_scheme == "counter":
            bisect.insort(slots, i)
        else:
            slots.append(i)

    def _schedule_replacement(self, i: int, current_pos: int) -> None:
        # The initial application considers only positions beyond the
        # warm-up window (paper, Section 2.1).
        nxt = self._next_position(i, current_pos)
        self._pending_add(nxt, i)

    # ------------------------------------------------------------------
    # Sample maintenance
    # ------------------------------------------------------------------
    def _discard(self, i: int) -> None:
        """Reservoir replacement: drop slot i's current sample point."""
        v = int(self._val[i])
        r = self._nv[v] - int(self._entry[i])
        self._unlink(v, i)
        self._in_sample[i] = False
        self._hook_slot_discarded(i, v, r)
        if v not in self._head:
            # v no longer occurs in the sample; stop tracking N_v to
            # preserve the O(s) space bound.
            del self._nv[v]

    def _add_sample_point(self, i: int, v: int) -> None:
        self._val[i] = v
        self._entry[i] = self._nv.setdefault(v, 0)
        self._push_head(v, i)
        self._in_sample[i] = True
        self._hook_slot_entered(i, v)

    # ------------------------------------------------------------------
    # Operations (Figure 1 main loop)
    # ------------------------------------------------------------------
    def insert(self, value: int) -> None:
        """Process insert(v) in O(1) amortised time (steps 7–19)."""
        v = int(value)
        self._n += 1
        entering = self._pending.pop(self._n, None)
        if entering is not None:
            for i in self._entering_order(entering):
                self._schedule_replacement(i, self._n)
                if self._in_sample[i]:
                    self._discard(i)
                self._add_sample_point(i, v)
        if v in self._nv:
            self._nv[v] += 1
            self._hook_value_inserted(v)

    def delete(self, value: int) -> None:
        """Process delete(v) (steps 20–26).

        Reverses the most recent undeleted insert(v): decrements n and
        (if v is tracked) N_v, then evicts every slot whose entry
        snapshot equals the decremented N_v — precisely the slots that
        sampled the reversed insertion.
        """
        v = int(value)
        if self._n <= 0:
            raise ValueError("cannot delete from an empty multiset")
        self._n -= 1
        if v not in self._nv:
            return
        self._hook_value_delete_pre(v)
        self._nv[v] -= 1
        nv = self._nv[v]
        while v in self._head and int(self._entry[self._head[v]]) == nv:
            i = self._head[v]
            self._unlink(v, i)
            self._in_sample[i] = False
            self._hook_slot_evicted_by_delete(i, v)
        if v not in self._head:
            del self._nv[v]

    def _advance_tracked(self, segment: np.ndarray) -> None:
        """Advance past a run of positions with no reservoir events.

        Between two pending sample positions an insert only increments
        ``N_v`` for values already in the sample, and those increments
        commute — so a whole segment collapses to one vectorised
        membership test plus one histogram of the tracked hits.
        """
        k = int(segment.size)
        if k == 0:
            return
        self._n += k
        if not self._nv:
            return
        if k <= 512:
            # Short segment: fixed numpy call overhead beats the work;
            # a dict-membership loop is faster and state-identical.
            nv = self._nv
            for v in segment.tolist():
                if v in nv:
                    nv[v] += 1
                    self._hook_value_inserted(v)
            return
        tracked = np.fromiter(self._nv.keys(), dtype=np.int64, count=len(self._nv))
        hits = segment[np.isin(segment, tracked)]
        if hits.size == 0:
            return
        uniq, counts = np.unique(hits, return_counts=True)
        for v, c in zip(uniq.tolist(), counts.tolist()):
            self._nv[v] += c
            self._hook_value_inserted_bulk(v, c)

    def update_from_stream(self, values: Iterable[int] | np.ndarray) -> None:
        """Insert a whole stream with vectorised segment processing.

        Walks the stream from one pending sample position to the next:
        the elements in between touch no reservoir state and are folded
        in by :meth:`_advance_tracked`; the element at each pending
        position runs the full Figure 1 insert step.  Random draws
        happen at exactly the same points, in the same order, as a
        per-element :meth:`insert` loop, so the resulting sketch state
        is **bit-identical** to the loop (the test suite asserts this).
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            return
        if self.rng_scheme == "counter":
            self._update_from_stream_counter(arr)
            return
        n0 = self._n
        end = n0 + int(arr.size)
        # Min-heap of pending positions inside this batch; positions
        # scheduled *during* the batch are pushed as they appear.
        heap = [p for p in self._pending if p <= end]
        heapq.heapify(heap)
        pos = n0  # last absolute stream position fully processed
        while heap:
            p = heapq.heappop(heap)
            entering = self._pending.pop(p, None)
            if entering is None:
                continue  # duplicate heap entry for an already-handled position
            self._advance_tracked(arr[pos - n0 : p - 1 - n0])
            v = int(arr[p - 1 - n0])
            self._n += 1
            for i in self._entering_order(entering):
                nxt = self._next_position(i, p)
                self._pending_add(nxt, i)
                if nxt <= end:
                    heapq.heappush(heap, nxt)
                if self._in_sample[i]:
                    self._discard(i)
                self._add_sample_point(i, v)
            if v in self._nv:
                self._nv[v] += 1
                self._hook_value_inserted(v)
            pos = p
        self._advance_tracked(arr[pos - n0 :])

    def _update_from_stream_counter(self, arr: np.ndarray) -> None:
        """Batched counter-scheme ingest: chain first, then count.

        Because every draw is a pure function of (seed, position,
        slot), the complete chain of reservoir events inside the batch
        — which positions fire, which slots enter, where each slot's
        next replacement lands — is computable *up front*, before a
        single stream element is examined.  The elements between
        events then only bump ``N_v`` counters, which the compiled
        :func:`repro.kernels.sampler_segment_counts` kernel tallies a
        whole chunk of segments at a time.  State after the batch is
        bit-identical to the per-element :meth:`insert` loop; the
        property suite asserts exact integer equality.

        Hooks do not fire during the walk; derived aggregates (the
        fast-query group sums) are pure functions of the base state
        and are rebuilt once at the end via :meth:`_rebuild_derived`.
        """
        n0 = self._n
        end = n0 + int(arr.size)

        # --- chain phase: precompute every reservoir event in-batch.
        # Each slot's replacement chain p -> next_position(i, p) is
        # independent of every other slot's, so all active chains
        # advance in lockstep rounds of one vectorised draw batch; a
        # chain leaves the rounds when it escapes the batch.
        due = [p for p in self._pending if p <= end]
        pos_list: list[int] = []
        id_list: list[int] = []
        for p in due:
            for i in self._pending.pop(p):
                pos_list.append(p)
                id_list.append(i)
        ev_pos_parts: list[np.ndarray] = []
        ev_id_parts: list[np.ndarray] = []
        pos = np.asarray(pos_list, dtype=np.int64)
        ids = np.asarray(id_list, dtype=np.int64)
        endf = float(end)
        while pos.size:
            ev_pos_parts.append(pos)
            ev_id_parts.append(ids)
            base = np.maximum(pos, self.initial_range).astype(np.float64)
            u = counter_u01(self._key, pos, ids)
            # Same double ops as the scalar max(base+1, ceil(base/u)).
            nxt = np.maximum(base + 1.0, np.ceil(base / u))
            done = nxt > endf
            for x, i in zip(nxt[done].tolist(), ids[done].tolist()):
                # Exact float->int (the ceil result is integral, and
                # any double above 2**53 is already an exact integer).
                self._pending_add(int(x), i)
            keep = ~done
            pos = nxt[keep].astype(np.int64)
            ids = ids[keep]
        events: list[tuple[int, list[int]]] = []
        if ev_pos_parts:
            all_pos = np.concatenate(ev_pos_parts)
            all_ids = np.concatenate(ev_id_parts)
            order = np.lexsort((all_ids, all_pos))
            all_pos = all_pos[order]
            all_ids = all_ids[order]
            cuts = np.flatnonzero(np.diff(all_pos)) + 1
            bounds = np.concatenate(([0], cuts, [all_pos.size]))
            events = [
                (int(all_pos[a]), all_ids[a:b].tolist())
                for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist())
            ]

        # --- walk phase: chunked segment counting + structural updates.
        last = n0  # absolute stream position fully processed
        for lo in range(0, len(events), self._EVENT_CHUNK):
            chunk = events[lo : lo + self._EVENT_CHUNK]
            ev_pos = np.asarray([p for p, _ in chunk], dtype=np.int64)
            ev_vals = arr[ev_pos - 1 - n0]
            nv_count = len(self._nv)
            if nv_count:
                tracked_now = np.fromiter(
                    self._nv.keys(), dtype=np.int64, count=nv_count
                )
                keys = np.unique(np.concatenate((tracked_now, ev_vals)))
            else:
                keys = np.unique(ev_vals)
            nv_code = np.zeros(keys.size, dtype=np.int64)
            tracked_mask = np.zeros(keys.size, dtype=bool)
            if nv_count:
                tcodes = np.searchsorted(keys, tracked_now)
                nv_code[tcodes] = np.fromiter(
                    self._nv.values(), dtype=np.int64, count=nv_count
                )
                tracked_mask[tcodes] = True
            code_of = {v: c for c, v in enumerate(keys.tolist())}
            # Segment j covers the elements strictly between event j-1
            # and event j (the event element itself is handled inline,
            # exactly like the scalar walk).
            starts = np.empty(len(chunk), dtype=np.int64)
            starts[0] = last - n0
            starts[1:] = ev_pos[:-1] - n0
            ends = ev_pos - 1 - n0
            seg = sampler_segment_counts(arr, keys, starts, ends)

            ev_val_list = ev_vals.tolist()
            for j, (p, entering) in enumerate(chunk):
                np.add(nv_code, seg[j], out=nv_code, where=tracked_mask)
                v = ev_val_list[j]
                cv = code_of[v]
                for i in entering:
                    if self._in_sample[i]:
                        v_old = int(self._val[i])
                        self._unlink(v_old, i)
                        self._in_sample[i] = False
                        if v_old not in self._head:
                            c_old = code_of[v_old]
                            tracked_mask[c_old] = False
                            nv_code[c_old] = 0
                    if not tracked_mask[cv]:
                        tracked_mask[cv] = True
                        nv_code[cv] = 0
                    self._val[i] = v
                    self._entry[i] = nv_code[cv]
                    self._push_head(v, i)
                    self._in_sample[i] = True
                # The event element itself: v is tracked now (the
                # entering slots hold it), so its own insert counts.
                nv_code[cv] += 1
            last = int(ev_pos[-1])
            self._nv = {
                int(v): int(c)
                for v, c in zip(
                    keys[tracked_mask].tolist(), nv_code[tracked_mask].tolist()
                )
            }

        # --- tail: elements after the last in-batch event.
        if self._nv and last < end:
            tracked = np.fromiter(self._nv.keys(), dtype=np.int64, count=len(self._nv))
            tracked.sort()
            tail = sampler_segment_counts(
                arr,
                tracked,
                np.asarray([last - n0], dtype=np.int64),
                np.asarray([end - n0], dtype=np.int64),
            )
            for v, c in zip(tracked.tolist(), tail[0].tolist()):
                if c:
                    self._nv[v] += c
        self._n = end
        self._rebuild_derived()

    def _insert_repeated(self, v: int, count: int) -> None:
        """Insert ``count`` occurrences of one value without expansion.

        Bit-identical to ``count`` :meth:`insert` calls: the gap
        between two pending sample positions collapses to one ``N_v``
        bump, and each pending position inside the run executes the
        full Figure 1 insert step with the same random draws.
        """
        end = self._n + count
        heap = [p for p in self._pending if p <= end]
        heapq.heapify(heap)
        while heap:
            p = heapq.heappop(heap)
            entering = self._pending.pop(p, None)
            if entering is None:
                continue  # duplicate heap entry for an already-handled position
            self._count_tracked(v, p - 1 - self._n)
            self._n += 1
            for i in self._entering_order(entering):
                nxt = self._next_position(i, p)
                self._pending_add(nxt, i)
                if nxt <= end:
                    heapq.heappush(heap, nxt)
                if self._in_sample[i]:
                    self._discard(i)
                self._add_sample_point(i, v)
            if v in self._nv:
                self._nv[v] += 1
                self._hook_value_inserted(v)
        self._count_tracked(v, end - self._n)

    def _count_tracked(self, v: int, gap: int) -> None:
        """Advance ``gap`` positions that all insert ``v``, no events."""
        if gap <= 0:
            return
        self._n += gap
        if v in self._nv:
            self._nv[v] += gap
            self._hook_value_inserted_bulk(v, gap)

    def _insert_frequencies_counter(self, vals: np.ndarray, cnts: np.ndarray) -> None:
        """Counter-scheme insertion runs: expand-and-batch small counts.

        Buffers consecutive histogram entries whose counts fit the
        expansion budget, materialises them with ``np.repeat``, and
        folds each buffer through :meth:`_update_from_stream_counter`.
        Entries with huge counts flush the buffer and take the
        arithmetic :meth:`_insert_repeated` walk.  Draws are pure
        functions of stream position, so both routes produce exactly
        the state of per-element inserts in histogram order.
        """
        pend_vals: list[int] = []
        pend_cnts: list[int] = []
        pending = 0

        def flush() -> None:
            nonlocal pending
            if not pend_vals:
                return
            expanded = np.repeat(
                np.asarray(pend_vals, dtype=np.int64),
                np.asarray(pend_cnts, dtype=np.int64),
            )
            self._update_from_stream_counter(expanded)
            pend_vals.clear()
            pend_cnts.clear()
            pending = 0

        for v, c in zip(vals.tolist(), cnts.tolist()):
            if c <= 0:
                continue
            if c > self._EXPAND_MAX:
                flush()
                self._insert_repeated(v, c)
                continue
            pend_vals.append(v)
            pend_cnts.append(c)
            pending += c
            if pending >= self._EXPAND_CHUNK:
                flush()
        flush()

    def update_from_frequencies(
        self, values: Iterable[int] | np.ndarray, counts: Iterable[int] | np.ndarray
    ) -> None:
        """Fold a signed histogram in as a concrete operation sequence.

        The sample is position-dependent, so a histogram fixes a stream
        order: each value's insertions appear consecutively, values in
        the given order, followed by the deletions.  Insertion runs
        fold in without expansion via :meth:`_insert_repeated` (a
        billion-occurrence entry costs O(s log) work, not O(count)
        memory); deletions are applied per occurrence (each is O(1)
        amortised).

        Under the counter scheme, entries with modest counts are
        instead expanded with ``np.repeat`` into chunked value arrays
        and folded through the batched stream walker — identical draws
        (position-pure), far less per-entry overhead on histograms
        with many distinct values.  Huge counts keep the arithmetic
        walk either way.
        """
        vals, cnts = as_histogram(values, counts)
        if self.rng_scheme == "counter":
            self._insert_frequencies_counter(vals, cnts)
        else:
            for v, c in zip(vals.tolist(), cnts.tolist()):
                if c > 0:
                    self._insert_repeated(v, c)
        negative = cnts < 0
        for v, c in zip(vals[negative].tolist(), (-cnts[negative]).tolist()):
            for _ in range(c):
                self.delete(v)

    # ------------------------------------------------------------------
    # Queries (steps 27–32): O(s)
    # ------------------------------------------------------------------
    def basic_estimators(self) -> np.ndarray:
        """Per-slot X_i = n (2 r_i - 1); NaN for slots not in the sample."""
        x = np.full(self._s, np.nan, dtype=np.float64)
        n = float(self._n)
        for v, count in self._nv.items():
            i = self._head.get(v, _NO_SLOT)
            while i != _NO_SLOT:
                r = count - int(self._entry[i])
                x[i] = n * (2.0 * r - 1.0)
                i = int(self._next[i])
        return x

    def estimate(self) -> float:
        """Median over groups of the group means (steps 28–32).

        Slots not currently in the sample are ignored; groups with no
        in-sample slots are excluded from the median.  If the sample is
        empty (stream shorter than the smallest selected position, or
        everything evicted), the minimum-possible self-join size n is
        returned (SJ(R) >= n always, with equality for all-distinct
        data); for an empty multiset the estimate is 0.
        """
        if self._n == 0:
            return 0.0
        x = self.basic_estimators().reshape(self.s2, self.s1)
        mask = ~np.isnan(x)
        members = mask.sum(axis=1)
        valid = members > 0
        if not valid.any():
            return float(self._n)
        sums = np.where(mask, x, 0.0).sum(axis=1)
        group_means = sums[valid] / members[valid]
        return float(np.median(group_means))

    def query(self) -> float:
        """Alias for :meth:`estimate` (the paper's 'query' operation)."""
        return self.estimate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Current multiset size (inserts minus deletes)."""
        return self._n

    @property
    def s(self) -> int:
        """Total number of sample slots s = s1 * s2."""
        return self._s

    @property
    def sample_size(self) -> int:
        """Number of slots currently holding a sample point."""
        return int(self._in_sample.sum())

    @property
    def memory_words(self) -> int:
        """Storage in the paper's cost model: Theta(s) words; we report s."""
        return self._s

    def sample_values(self) -> list[int]:
        """The multiset of values currently held by sample slots."""
        return [int(v) for v, ok in zip(self._val.tolist(), self._in_sample) if ok]

    def check_invariants(self) -> None:
        """Assert the Figure 1 data-structure invariants (for tests).

        * every in-sample slot is linked into exactly one S_v list and
          its value is tracked in N_v;
        * list order is most-recent-first: entry snapshots are
          non-increasing from head to tail;
        * every tracked N_v exceeds the entry snapshot of every slot in
          S_v (a slot's own sampled insertion already incremented N_v);
        * no N_v is tracked for values absent from the sample.
        """
        linked: set[int] = set()
        for v, head in self._head.items():
            if v not in self._nv:
                raise AssertionError(f"S_{v} exists but N_{v} is not tracked")
            i = head
            prev_entry = None
            prev_slot = _NO_SLOT
            while i != _NO_SLOT:
                if i in linked:
                    raise AssertionError(f"slot {i} linked twice")
                linked.add(i)
                if not self._in_sample[i]:
                    raise AssertionError(f"linked slot {i} not marked in-sample")
                if int(self._val[i]) != v:
                    raise AssertionError(f"slot {i} in S_{v} holds value {self._val[i]}")
                entry = int(self._entry[i])
                if entry >= self._nv[v]:
                    raise AssertionError(
                        f"slot {i}: entry {entry} >= N_v {self._nv[v]} for value {v}"
                    )
                if prev_entry is not None and entry > prev_entry:
                    raise AssertionError(f"S_{v} not ordered most-recent-first")
                if int(self._prev[i]) != prev_slot:
                    raise AssertionError(f"slot {i} has broken prev link")
                prev_entry = entry
                prev_slot = i
                i = int(self._next[i])
        in_sample = {int(i) for i in np.flatnonzero(self._in_sample)}
        if linked != in_sample:
            raise AssertionError(
                f"linked slots {sorted(linked)} != in-sample slots {sorted(in_sample)}"
            )

    # ------------------------------------------------------------------
    # Persistence (Sketch protocol)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise the complete tracker state to plain Python types.

        Includes the RNG state, so a reloaded tracker continues the
        exact random sequence of the original — streaming can resume
        from a checkpoint with bit-identical behaviour.  Counter-scheme
        snapshots carry ``rng_scheme`` + ``seed`` (the position cursor
        is ``n`` plus the pending table — draws are stateless);
        legacy pcg64 snapshots carry the generator state under
        ``rng``, and payloads written before the scheme field existed
        are recognised by that key and load onto the pcg64 path.
        """
        payload = {
            "kind": self.kind,
            "s1": self.s1,
            "s2": self.s2,
            "initial_range": self.initial_range,
            "n": self._n,
            "rng_scheme": self.rng_scheme,
            "pending": [
                [int(p), [int(i) for i in slots]]
                for p, slots in sorted(self._pending.items())
            ],
            "in_sample": np.flatnonzero(self._in_sample).tolist(),
            "val": self._val.tolist(),
            "entry": self._entry.tolist(),
            "next": self._next.tolist(),
            "prev": self._prev.tolist(),
            "head": [[int(v), int(i)] for v, i in sorted(self._head.items())],
            "nv": [[int(v), int(c)] for v, c in sorted(self._nv.items())],
        }
        if self.rng_scheme == "counter":
            payload["seed"] = self.seed
        else:
            payload["rng"] = self._rng.bit_generator.state
        return payload

    def _rebuild_derived(self) -> None:
        """Recompute any state derived from the base slot structures.

        No-op here; the fast-query subclass rebuilds its group sums.
        """

    @classmethod
    def from_dict(cls, payload: dict) -> "SampleCountSketch":
        """Reconstruct a tracker from :meth:`to_dict` output."""
        if payload.get("kind") != cls.kind:
            raise ValueError(f"not a {cls.__name__} payload: {payload.get('kind')!r}")
        scheme = payload.get("rng_scheme")
        if scheme is None:
            # Pre-scheme snapshots always carried the pcg64 state.
            scheme = "pcg64" if "rng" in payload else "counter"
        sketch = cls(
            int(payload["s1"]),
            int(payload["s2"]),
            seed=(int(payload["seed"]) if scheme == "counter" else None),
            initial_range=int(payload["initial_range"]),
            rng_scheme=scheme,
        )
        s = sketch._s
        if scheme == "pcg64":
            rng = np.random.default_rng()
            rng.bit_generator.state = payload["rng"]
            sketch._rng = rng
        sketch._n = int(payload["n"])
        sketch._pending = {
            int(p): [int(i) for i in slots] for p, slots in payload["pending"]
        }
        in_sample = np.zeros(s, dtype=bool)
        members = np.asarray(payload["in_sample"], dtype=np.int64)
        if members.size and (members.min() < 0 or members.max() >= s):
            raise ValueError(f"in-sample slot index out of range for s={s}")
        in_sample[members] = True
        sketch._in_sample = in_sample
        for key, attr in (
            ("val", "_val"),
            ("entry", "_entry"),
            ("next", "_next"),
            ("prev", "_prev"),
        ):
            array = np.asarray(payload[key], dtype=np.int64)
            if array.shape != (s,):
                raise ValueError(
                    f"field {key!r} has shape {array.shape}, expected ({s},)"
                )
            setattr(sketch, attr, array)
        sketch._head = {int(v): int(i) for v, i in payload["head"]}
        sketch._nv = {int(v): int(c) for v, c in payload["nv"]}
        sketch._rebuild_derived()
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(s1={self.s1}, s2={self.s2}, n={self._n}, "
            f"sample={self.sample_size}/{self._s})"
        )


@register_sketch
class SampleCountFastQuery(SampleCountSketch):
    """The fast-query sample-count variant (end of Section 2.1).

    Maintains, for every group j, the running sum ``Ysum_j`` of the
    counts ``r_i`` of the in-sample slots in the group, together with
    ``Num_j`` (how many slots contribute) and ``k_{v,j}`` (how many of
    them hold value v).  Updates touch at most s2 group entries per
    operation (O(s2) amortised); a query is O(s2): each group's mean
    basic estimator is ``n (2 Ysum_j / Num_j - 1)`` and the estimate is
    the median over groups, computed as ``n (2 Y* - 1)`` from the
    median Y* of the per-group mean counts — exactly the paper's
    formulation.
    """

    kind = "samplecount-fast"
    describe = (
        "sample-count variant with O(s2) amortised queries via "
        "incremental group sums; insert/delete, not mergeable"
    )

    def __init__(
        self,
        s1: int,
        s2: int = 1,
        seed: int | None = None,
        initial_range: int | None = None,
        rng_scheme: str = "counter",
    ):
        super().__init__(
            s1, s2, seed=seed, initial_range=initial_range, rng_scheme=rng_scheme
        )
        self._ysum = np.zeros(self.s2, dtype=np.int64)  # sum of r_i per group
        self._num = np.zeros(self.s2, dtype=np.int64)  # Num_j
        self._k: dict[int, dict[int, int]] = {}  # k_{v,j}

    # -- hook implementations ------------------------------------------
    def _hook_slot_entered(self, i: int, v: int) -> None:
        j = i // self.s1
        per_value = self._k.setdefault(v, {})
        per_value[j] = per_value.get(j, 0) + 1
        self._num[j] += 1
        # The slot's r starts at 0 here; the enclosing insert's
        # _hook_value_inserted bump brings it to 1.

    def _hook_slot_discarded(self, i: int, v: int, r: int) -> None:
        j = i // self.s1
        self._ysum[j] -= r
        self._decrement_k(v, j)
        self._num[j] -= 1

    def _hook_value_inserted(self, v: int) -> None:
        for j, count in self._k[v].items():
            self._ysum[j] += count

    def _hook_value_inserted_bulk(self, v: int, count: int) -> None:
        for j, slots in self._k[v].items():
            self._ysum[j] += count * slots

    def _hook_value_delete_pre(self, v: int) -> None:
        for j, count in self._k[v].items():
            self._ysum[j] -= count

    def _hook_slot_evicted_by_delete(self, i: int, v: int) -> None:
        # The evicted slot's r is 0 after the pre-decrement, so Ysum is
        # already correct; only the membership counters change.
        j = i // self.s1
        self._decrement_k(v, j)
        self._num[j] -= 1

    def _decrement_k(self, v: int, j: int) -> None:
        per_value = self._k[v]
        per_value[j] -= 1
        if per_value[j] == 0:
            del per_value[j]
        if not per_value:
            del self._k[v]

    # -- O(s2) query -----------------------------------------------------
    def estimate(self) -> float:
        """Median over groups of ``n (2 Ysum_j / Num_j - 1)``."""
        if self._n == 0:
            return 0.0
        valid = self._num > 0
        if not valid.any():
            return float(self._n)
        mean_counts = self._ysum[valid].astype(np.float64) / self._num[valid]
        y_star = float(np.median(mean_counts))
        return float(self._n) * (2.0 * y_star - 1.0)

    def _rebuild_derived(self) -> None:
        """Recompute Ysum / Num / k_{v,j} from the restored slot state.

        The group aggregates are pure functions of the base structures,
        so deserialisation restores the base state and replays this —
        the same computation :meth:`check_invariants` checks against.
        """
        self._ysum = np.zeros(self.s2, dtype=np.int64)
        self._num = np.zeros(self.s2, dtype=np.int64)
        self._k = {}
        for v, count in self._nv.items():
            i = self._head.get(v, _NO_SLOT)
            while i != _NO_SLOT:
                j = i // self.s1
                self._num[j] += 1
                self._ysum[j] += count - int(self._entry[i])
                per_value = self._k.setdefault(v, {})
                per_value[j] = per_value.get(j, 0) + 1
                i = int(self._next[i])

    def check_invariants(self) -> None:
        """Base invariants plus consistency of Ysum/Num/k with slot state."""
        super().check_invariants()
        num = np.zeros(self.s2, dtype=np.int64)
        ysum = np.zeros(self.s2, dtype=np.int64)
        k: dict[int, dict[int, int]] = {}
        for v, count in self._nv.items():
            i = self._head.get(v, _NO_SLOT)
            while i != _NO_SLOT:
                j = i // self.s1
                num[j] += 1
                ysum[j] += count - int(self._entry[i])
                k.setdefault(v, {})
                k[v][j] = k[v].get(j, 0) + 1
                i = int(self._next[i])
        if not np.array_equal(num, self._num):
            raise AssertionError(f"Num mismatch: {self._num.tolist()} vs {num.tolist()}")
        if not np.array_equal(ysum, self._ysum):
            raise AssertionError(
                f"Ysum mismatch: {self._ysum.tolist()} vs {ysum.tolist()}"
            )
        if k != self._k:
            raise AssertionError(f"k_{{v,j}} mismatch: {self._k} vs {k}")


# ----------------------------------------------------------------------
# Vectorised offline evaluator (known-n, insertion-only)
# ----------------------------------------------------------------------
def sample_count_estimate_offline(
    values: np.ndarray | Iterable[int],
    s1: int,
    s2: int = 1,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Sample-count estimate of SJ for a full in-memory stream.

    Implements the [AMS99] insertion-only description directly: draw
    ``s = s1 * s2`` positions uniformly (with replacement, each slot an
    independent choice), set ``r_i`` to the number of occurrences of
    the sampled value at or after the sampled position, and combine
    ``X_i = n (2 r_i - 1)`` by median-of-means.  Vectorised with one
    stable argsort; used by the experiment harness to sweep sample
    sizes over million-element streams.

    Parameters
    ----------
    values:
        The insertion-only stream (1-D integer array).
    s1, s2:
        Accuracy / confidence split (total sample size s1 * s2).
    rng:
        ``numpy.random.Generator``, seed, or None.
    """
    s1, s2 = group_shape_for(s1, s2)
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
    n = arr.size
    if n == 0:
        return 0.0

    s = s1 * s2
    positions = gen.integers(0, n, size=s)

    # occurrence-rank machinery: for every stream position p compute
    # how many occurrences of arr[p] appear strictly before p, and the
    # total frequency of arr[p].
    order = np.argsort(arr, kind="stable")
    sorted_vals = arr[order]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    if n > 1:
        is_start[1:] = sorted_vals[1:] != sorted_vals[:-1]
    group_id = np.cumsum(is_start) - 1
    group_start = np.flatnonzero(is_start)
    within_group = np.arange(n) - group_start[group_id]
    group_sizes = np.diff(np.append(group_start, n))

    before = np.empty(n, dtype=np.int64)
    before[order] = within_group
    freq = np.empty(n, dtype=np.int64)
    freq[order] = group_sizes[group_id]

    r = freq[positions] - before[positions]  # occurrences at or after p (>= 1)
    x = float(n) * (2.0 * r.astype(np.float64) - 1.0)
    return median_of_means(x.reshape(s2, s1))
