"""Multi-way join signatures (Section 5's "extending to three-way joins").

The paper's conclusion lists extending the signature scheme to
three-way joins as future work.  The standard construction (later
published as Dobra–Garofalakis–Gehrke–Rastogi, SIGMOD 2002) assigns
position j of an m-way chain the sign function

    xi_1 = e_1,   xi_j = e_{j-1} * e_j (1 < j < m),   xi_m = e_{m-1},

built from m-1 mutually independent 4-wise independent families, so
that for every value v the product over positions collapses:
``prod_j xi_j(v) = e_1(v)^2 ... e_{m-1}(v)^2 = 1``.  With
``S_j = sum_v xi_j(v) f_j(v)`` it follows that

    E[ S_1 * S_2 * ... * S_m ] = sum_v f_1(v) f_2(v) ... f_m(v)
                               = |R_1 join R_2 join ... join R_m|

for an m-way equality join on one attribute — exactly the setting of
the paper (footnote 2).  For m = 2 the construction degenerates to the
k-TW signature of Section 4.3 (both positions use e_1).

As with k-TW, k independent copies are kept and averaged; the variance
grows with the number of ways (each extra way contributes another
self-join factor to the variance bound), which is why the paper calls
the m > 2 case out as future work rather than a free generalisation.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..engine.protocol import as_histogram
from .hashing import SignHashFamily

__all__ = ["MultiJoinFamily", "MultiJoinSignature"]


class MultiJoinSignature:
    """One relation's signature for a fixed position in an m-way chain.

    Like the tug-of-war sketch, the state is a *linear* function of the
    relation's frequency vector, so deletions are exact retractions and
    any insert/delete sequence may be coalesced into a signed histogram
    with bit-identical results.  The bulk paths below carry the same
    validation as the engine's vectorised ingestion (a batch may never
    drive the relation size negative), and setting ``is_linear`` lets
    :func:`repro.engine.ingest.ingest_operations` route operation
    streams through its linear pipeline — which also rejects a delete
    with no remaining insert exactly where a per-element replay would.
    """

    #: State is linear in the frequency vector (engine batching contract).
    is_linear = True

    __slots__ = ("_family", "_position", "_z", "_n")

    def __init__(self, family: "MultiJoinFamily", position: int):
        self._family = family
        self._position = position
        self._z = np.zeros(family.k, dtype=np.int64)
        self._n = 0

    def _signs(self, value: int) -> np.ndarray:
        return self._family.position_signs(self._position, value)

    def insert(self, value: int) -> None:
        """New tuple with joining-attribute value v."""
        self._z += self._signs(value)
        self._n += 1

    def delete(self, value: int) -> None:
        """Remove a tuple with joining-attribute value v.

        Deletions are retractions of earlier inserts.  As with every
        linear sketch, detection of an invalid delete is best-effort
        (the signature cannot afford per-value counts): relation-level
        emptiness is caught here, while per-value validation happens in
        the engine's operation pipeline, which tracks the live multiset.
        """
        if self._n <= 0:
            raise ValueError("cannot delete from an empty relation")
        self._z -= self._signs(value)
        self._n -= 1

    def update(self, value: int, count: int) -> None:
        """Fold ``count`` occurrences of ``value`` in at once (signed).

        Negative counts are batched deletions; equivalent to ``|count|``
        individual insert/delete calls but O(k) total.
        """
        c = int(count)
        if c == 0:
            return
        if self._n + c < 0:
            raise ValueError(
                f"deleting {-c} occurrences would make the relation size negative"
            )
        self._z += np.int64(c) * self._signs(value).astype(np.int64)
        self._n += c

    def update_from_frequencies(
        self, values: np.ndarray | Iterable[int], counts: np.ndarray | Iterable[int]
    ) -> None:
        """Fold a signed frequency histogram into the signature.

        The vectorised insert/delete path, mirroring
        :meth:`repro.core.tugofwar.TugOfWarSketch.update_from_frequencies`:
        bit-identical to the equivalent sequence of :meth:`update`
        calls (linearity), with the same precondition — the net batch
        may not drive the relation size negative.
        """
        vals, cnts = as_histogram(values, counts)
        if vals.size == 0:
            return
        total = int(cnts.sum())
        if self._n + total < 0:
            raise ValueError("batch would make the relation size negative")
        signs = self._family.position_signs_many(self._position, vals)  # (k, m)
        self._z += signs.astype(np.int64) @ cnts
        self._n += total

    def update_from_stream(self, values: np.ndarray | Iterable[int]) -> None:
        """Bulk-load an insertion-only value stream via its histogram."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.size == 0:
            return
        uniq, counts = np.unique(arr, return_counts=True)
        self.update_from_frequencies(uniq, counts)

    @property
    def position(self) -> int:
        """This relation's position in the join chain (0-based)."""
        return self._position

    @property
    def counters(self) -> np.ndarray:
        """Read-only view of the k counters."""
        view = self._z.view()
        view.flags.writeable = False
        return view

    @property
    def k(self) -> int:
        """Signature size in memory words."""
        return int(self._z.size)

    @property
    def n(self) -> int:
        """Current relation size."""
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiJoinSignature(position={self._position}, k={self.k}, n={self._n})"


class MultiJoinFamily:
    """Factory and estimator for m-way chain-join signatures.

    Parameters
    ----------
    k:
        Words per relation signature (k independent basic estimators).
    ways:
        Number of relations m in the join (>= 2).
    seed:
        Seed; spawns ``ways - 1`` mutually independent sign families.

    Examples
    --------
    >>> fam = MultiJoinFamily(k=4096, ways=3, seed=0)
    >>> sigs = [fam.signature(j) for j in range(3)]
    >>> for sig, rel in zip(sigs, relations): sig.update_from_stream(rel)
    >>> est = fam.join_estimate(sigs)       # ~ |R0 ⋈ R1 ⋈ R2|
    """

    def __init__(self, k: int, ways: int, seed: int | None = None):
        if k < 1:
            raise ValueError(f"signature size k must be >= 1, got {k}")
        if ways < 2:
            raise ValueError(f"an m-way join needs m >= 2, got {ways}")
        self.k = int(k)
        self.ways = int(ways)
        self.seed = seed
        seq = np.random.SeedSequence(seed)
        children = seq.spawn(self.ways - 1)
        self._families = [
            SignHashFamily(self.k, seed=int(c.generate_state(1)[0])) for c in children
        ]

    # -- sign plumbing -----------------------------------------------------
    def position_signs(self, position: int, value: int) -> np.ndarray:
        """xi_position(value) for all k copies (int8 array of ±1)."""
        self._check_position(position)
        if position == 0:
            return self._families[0].signs_one(value)
        if position == self.ways - 1:
            return self._families[-1].signs_one(value)
        return (
            self._families[position - 1].signs_one(value)
            * self._families[position].signs_one(value)
        )

    def position_signs_many(self, position: int, values: np.ndarray) -> np.ndarray:
        """xi_position at many values: int8 array (k, len(values))."""
        self._check_position(position)
        if position == 0:
            return self._families[0].signs_many(values)
        if position == self.ways - 1:
            return self._families[-1].signs_many(values)
        return (
            self._families[position - 1].signs_many(values)
            * self._families[position].signs_many(values)
        )

    def _check_position(self, position: int) -> None:
        if not 0 <= position < self.ways:
            raise ValueError(
                f"position must be in [0, {self.ways}), got {position}"
            )

    # -- signatures and estimation --------------------------------------------
    def signature(self, position: int) -> MultiJoinSignature:
        """A fresh signature for the relation at ``position`` in the chain."""
        self._check_position(position)
        return MultiJoinSignature(self, position)

    def signatures(self) -> list[MultiJoinSignature]:
        """One fresh signature per chain position, in order."""
        return [self.signature(j) for j in range(self.ways)]

    def join_estimate(self, signatures: Iterable[MultiJoinSignature]) -> float:
        """Mean over the k copies of the product of all m counters.

        ``signatures`` must be exactly one signature per position of
        this family, in any order.
        """
        sigs = list(signatures)
        if len(sigs) != self.ways:
            raise ValueError(
                f"need exactly {self.ways} signatures, got {len(sigs)}"
            )
        positions = sorted(s.position for s in sigs)
        if positions != list(range(self.ways)):
            raise ValueError(
                f"signatures must cover positions 0..{self.ways - 1} exactly, "
                f"got {positions}"
            )
        for s in sigs:
            if s._family is not self:
                raise ValueError("signature belongs to a different MultiJoinFamily")
        product = np.ones(self.k, dtype=np.float64)
        for s in sigs:
            product *= s.counters.astype(np.float64)
        return float(product.mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiJoinFamily(k={self.k}, ways={self.ways}, seed={self.seed!r})"
