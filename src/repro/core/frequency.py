"""Frequency vectors and exact join / self-join computation.

The paper's quantities are all functions of the frequency vector of an
attribute: the self-join size ``SJ(R) = sum_i f_i^2`` (the second
frequency moment F2, a.k.a. Gini's repeat rate) and the join size
``|R1 join R2| = sum_i f_i * g_i``.  This module provides the exact,
full-histogram computations that the limited-storage sketches are
compared against, together with the skew statistics used throughout
the experimental study.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

import numpy as np

from ..engine.protocol import Sketch, as_histogram
from ..engine.registry import register_sketch

__all__ = [
    "FrequencyVector",
    "self_join_size",
    "join_size",
    "first_moment",
    "distinct_values",
]

_INT64_MAX = (1 << 63) - 1


def _as_value_array(values: Iterable[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"value stream must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"value stream must be integer-typed, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=False)


def _dense_span(arr: np.ndarray) -> tuple[int, int] | None:
    """``(lo, span)`` when the value range is narrow enough to bincount.

    A span up to 4x the batch size (with a small floor) keeps the
    dense table within a constant factor of the batch itself; the hard
    cap bounds the allocation for tiny batches over a wide range.
    Computed with Python ints so a range straddling the int64 extremes
    cannot overflow — it simply fails the test and falls back.
    """
    lo, hi = int(arr.min()), int(arr.max())
    span = hi - lo + 1
    if span <= max(4 * arr.size, 1024) and span <= (1 << 22):
        return lo, span
    return None


def _dense_or_sorted_histogram(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(unique values, counts)`` of an int64 stream.

    Dense value ranges take a single O(n) ``bincount`` over the offset
    values instead of the O(n log n) sort inside ``np.unique`` — for
    large ingest batches over bounded key domains this is the
    difference between wire-bound and sort-bound throughput.
    """
    dense = _dense_span(arr)
    if dense is not None:
        lo, span = dense
        table = np.bincount(arr - lo, minlength=span)
        present = np.flatnonzero(table)
        return present + lo, table[present].astype(np.int64, copy=False)
    return np.unique(arr, return_counts=True)


def _aggregate_histogram(
    vals: np.ndarray, cnts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum counts per distinct value (vectorised int64 sums).

    The accumulators are int64 and wrap silently on overflow, so the
    caller must guarantee the grand total fits — e.g. via the
    ``size * max`` bound :meth:`FrequencyVector.update_from_frequencies`
    checks before taking this path.
    """
    dense = _dense_span(vals)
    if dense is not None:
        lo, span = dense
        totals = np.zeros(span, dtype=np.int64)
        np.add.at(totals, vals - lo, cnts)
        present = np.flatnonzero(totals)
        return present + lo, totals[present]
    uniq, inverse = np.unique(vals, return_inverse=True)
    totals = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(totals, inverse, cnts)
    return uniq, totals


@register_sketch
class FrequencyVector(Sketch):
    """An exact histogram of a multiset of integer attribute values.

    This is the "full histogram" the paper's introduction describes as
    the exact-but-expensive alternative to sketching: storage is
    proportional to the number of distinct values.  It supports
    insertions and deletions so it can be driven by the same operation
    streams as the sketches, and it is the ground truth in every test
    and experiment.
    """

    kind = "frequency"
    is_linear = True  # counts add; any update order gives the same state
    describe = (
        "exact frequency-vector ground truth (every moment, any join); "
        "mergeable, memory grows with distinct values"
    )

    __slots__ = ("_counts", "_n")

    def __init__(self, counts: Mapping[int, int] | None = None):
        self._counts: Counter = Counter()
        self._n = 0
        if counts:
            for value, count in counts.items():
                if count < 0:
                    raise ValueError(f"negative count {count} for value {value}")
                if count:
                    self._counts[int(value)] = int(count)
                    self._n += int(count)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_stream(cls, values: Iterable[int] | np.ndarray) -> "FrequencyVector":
        """Build the histogram of an insertion-only value stream."""
        arr = _as_value_array(values)
        fv = cls()
        if arr.size:
            uniq, counts = np.unique(arr, return_counts=True)
            fv._counts = Counter(
                {int(v): int(c) for v, c in zip(uniq.tolist(), counts.tolist())}
            )
            fv._n = int(arr.size)
        return fv

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, value: int) -> None:
        """Insert one occurrence of ``value``."""
        self._counts[int(value)] += 1
        self._n += 1

    def delete(self, value: int) -> None:
        """Delete one occurrence of ``value``.

        Raises
        ------
        KeyError
            If ``value`` has no remaining occurrences; the tracking
            problem is defined over multisets so deleting an absent
            member is a caller bug, never silently ignored.
        """
        v = int(value)
        current = self._counts.get(v, 0)
        if current <= 0:
            raise KeyError(f"cannot delete value {value}: not present")
        if current == 1:
            del self._counts[v]
        else:
            self._counts[v] = current - 1
        self._n -= 1

    def update(self, value: int, count: int) -> None:
        """Fold ``count`` occurrences of ``value`` in at once (signed)."""
        v, c = int(value), int(count)
        if c == 0:
            return
        new = self._counts.get(v, 0) + c
        if new < 0:
            raise KeyError(
                f"cannot delete {-c} occurrences of value {value}: "
                f"only {self._counts.get(v, 0)} present"
            )
        if new == 0:
            del self._counts[v]
        else:
            self._counts[v] = new
        self._n += c

    def update_from_frequencies(
        self, values: Iterable[int] | np.ndarray, counts: Iterable[int] | np.ndarray
    ) -> None:
        """Fold a signed frequency histogram into the vector.

        Equivalent to pairwise :meth:`update` calls in the given order;
        a batch entry that would drive a count negative raises
        ``KeyError`` exactly as :meth:`delete` does.

        Insert-only batches (no negative counts) are aggregated with
        one vectorised histogram before touching the dictionary, so a
        large batch over a modest domain costs one pass plus one
        dictionary update per *distinct* value — not one per entry.
        Batches containing deletions keep the per-entry path, because
        the raise-on-negative contract is defined entry by entry in
        batch order; batches whose totals could overflow the int64
        accumulators also fall back to it, keeping the class exact
        (Python-int arithmetic) at any magnitude.
        """
        vals, cnts = as_histogram(values, counts)
        if vals.size == 0:
            return
        if int(cnts.min()) >= 0 and int(cnts.max()) <= _INT64_MAX // int(
            cnts.size
        ):
            # Aggregation cannot change the outcome of an all-insert
            # batch (counts only grow), so the order-sensitive error
            # contract is vacuous here and the vector path is exact.
            # The size*max bound proves the grand total — hence every
            # per-value total and the _n increment — fits int64, so
            # the int64 accumulators cannot wrap.
            uniq, totals = _aggregate_histogram(vals, cnts)
            for v, c in zip(uniq.tolist(), totals.tolist()):
                if c:
                    self._counts[v] += c
            self._n += int(cnts.sum())
            return
        for v, c in zip(vals.tolist(), cnts.tolist()):
            if c:
                self.update(v, c)

    def update_from_stream(self, values: Iterable[int] | np.ndarray) -> None:
        """Insert every element of a stream via one vectorised histogram."""
        arr = _as_value_array(values)
        if arr.size == 0:
            return
        uniq, counts = _dense_or_sorted_histogram(arr)
        for v, c in zip(uniq.tolist(), counts.tolist()):
            self._counts[int(v)] += int(c)
        self._n += int(arr.size)

    # ------------------------------------------------------------------
    # Exact statistics
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """The multiset size n (first frequency moment)."""
        return self._n

    @property
    def distinct(self) -> int:
        """Number of distinct values currently present (F0)."""
        return len(self._counts)

    def frequency(self, value: int) -> int:
        """Current frequency of ``value`` (0 if absent)."""
        return self._counts.get(int(value), 0)

    def self_join_size(self) -> int:
        """Exact SJ(R) = sum of squared frequencies (F2)."""
        return sum(c * c for c in self._counts.values())

    def join_size(self, other: "FrequencyVector") -> int:
        """Exact |R1 join R2| = sum over the shared domain of f_i * g_i."""
        if not isinstance(other, FrequencyVector):
            raise TypeError(f"expected FrequencyVector, got {type(other).__name__}")
        # Iterate the smaller histogram for speed.
        small, large = self._counts, other._counts
        if len(small) > len(large):
            small, large = large, small
        return sum(c * large.get(v, 0) for v, c in small.items())

    def skew(self) -> float:
        """SJ(R) / n — the average frequency of a stream member.

        Equals 1.0 for all-distinct data and n for a single repeated
        value; a convenient scale-free skew measure.
        """
        if self._n == 0:
            return 0.0
        return self.self_join_size() / self._n

    def max_frequency(self) -> int:
        """Largest single-value frequency (F_infinity)."""
        return max(self._counts.values(), default=0)

    def estimate(self) -> float:
        """The Sketch-protocol query: the (exact) self-join size.

        The frequency vector is the zero-error member of the engine's
        sketch family, so its "estimate" is simply SJ(R).
        """
        return float(self.self_join_size())

    # ------------------------------------------------------------------
    # Sketch protocol: algebra, accounting, persistence
    # ------------------------------------------------------------------
    def merge(self, other: "FrequencyVector") -> "FrequencyVector":
        """Exact histogram of the union of the two underlying multisets."""
        if not isinstance(other, FrequencyVector):
            raise TypeError(f"expected FrequencyVector, got {type(other).__name__}")
        merged = self.copy()
        for v, c in other._counts.items():
            merged._counts[v] += c
        merged._n += other._n
        return merged

    @property
    def memory_words(self) -> int:
        """Storage in the paper's cost model: one word per distinct value.

        This is the quantity the limited-storage sketches beat: it
        grows with the domain, not with a chosen budget.
        """
        return len(self._counts)

    def to_dict(self) -> dict:
        """Serialise the histogram to plain Python types."""
        return {
            "kind": self.kind,
            "counts": [[int(v), int(c)] for v, c in sorted(self._counts.items())],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FrequencyVector":
        """Reconstruct a frequency vector from :meth:`to_dict` output."""
        if payload.get("kind") != cls.kind:
            raise ValueError(f"not a FrequencyVector payload: {payload.get('kind')!r}")
        return cls({int(v): int(c) for v, c in payload["counts"]})

    # ------------------------------------------------------------------
    # Views / conversions
    # ------------------------------------------------------------------
    def items(self):
        """Iterate ``(value, frequency)`` pairs."""
        return self._counts.items()

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(values, counts)`` as sorted parallel int64 arrays."""
        if not self._counts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        values = np.fromiter(self._counts.keys(), dtype=np.int64, count=len(self._counts))
        order = np.argsort(values)
        values = values[order]
        counts = np.fromiter(self._counts.values(), dtype=np.int64, count=len(self._counts))[
            order
        ]
        return values, counts

    def copy(self) -> "FrequencyVector":
        """An independent deep copy."""
        fv = FrequencyVector()
        fv._counts = Counter(self._counts)
        fv._n = self._n
        return fv

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyVector):
            return NotImplemented
        return self._counts == other._counts

    def __len__(self) -> int:
        return self._n

    def __contains__(self, value: int) -> bool:
        return int(value) in self._counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrequencyVector(n={self._n}, distinct={self.distinct})"


# ----------------------------------------------------------------------
# Array-level conveniences (fast paths used by the experiment harness)
# ----------------------------------------------------------------------
def self_join_size(values: Iterable[int] | np.ndarray) -> int:
    """Exact self-join size of a value stream (vectorised)."""
    arr = _as_value_array(values)
    if arr.size == 0:
        return 0
    _, counts = np.unique(arr, return_counts=True)
    return int(np.sum(counts.astype(np.int64) ** 2))


def join_size(
    left: Iterable[int] | np.ndarray, right: Iterable[int] | np.ndarray
) -> int:
    """Exact join size of two value streams (vectorised)."""
    a = _as_value_array(left)
    b = _as_value_array(right)
    if a.size == 0 or b.size == 0:
        return 0
    av, ac = np.unique(a, return_counts=True)
    bv, bc = np.unique(b, return_counts=True)
    ai = np.isin(av, bv)
    bi = np.isin(bv, av)
    return int(np.sum(ac[ai].astype(np.int64) * bc[bi].astype(np.int64)))


def first_moment(values: Iterable[int] | np.ndarray) -> int:
    """Stream length n (trivial, provided for symmetry)."""
    return int(_as_value_array(values).size)


def distinct_values(values: Iterable[int] | np.ndarray) -> int:
    """Number of distinct values in a stream (F0)."""
    arr = _as_value_array(values)
    if arr.size == 0:
        return 0
    return int(np.unique(arr).size)
