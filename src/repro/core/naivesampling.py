"""The naive-sampling baseline (Section 2.3 of the paper).

The standard approach sample-count and tug-of-war are compared against:
draw ``s`` elements of the sequence without replacement, build a tiny
histogram of the sample, compute its self-join size ``SJ(S)``, and
unbias it with

    X = n + (SJ(S) - s) * n * (n - 1) / (s * (s - 1)),

so that ``E[X] = SJ(A)`` (each of the ``SJ(S) - s`` cross pairs in the
sample witnesses one of the ``SJ(A) - n`` equal-value ordered pairs of
the sequence, each sampled with probability ``s(s-1)/(n(n-1))``).

Lemma 2.3 shows this needs an Omega(sqrt n)-sized sample to avoid a
factor-2 error (birthday bound: a smaller sample of the "n/2 pairs"
data set usually contains no duplicate at all); the experimental study
confirms it is far less accurate than the AMS estimators at equal
storage.  The adversarial pair of relations from the lemma is built by
:func:`repro.data.adversarial.lemma23_pair`.

Two implementations are provided:

* :class:`NaiveSamplingEstimator` — a streaming tracker that maintains
  a size-s uniform sample of an insertion-only stream with a classic
  reservoir [Vit85] (the scenario of Section 2.3, where n is the
  stream length so far);
* :func:`naive_sampling_estimate_offline` — the vectorised known-n
  evaluator used by the experiment harness.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..engine.protocol import Sketch, as_histogram
from ..engine.registry import register_sketch
from ..streams.reservoir import ReservoirSample

__all__ = [
    "NaiveSamplingEstimator",
    "naive_sampling_estimate_offline",
    "scale_sample_self_join",
]


def scale_sample_self_join(sample_sj: float, sample_size: int, n: int) -> float:
    """Scale a sample's self-join size into an estimate for the sequence.

    Implements ``X = n + (SJ(S) - s) n (n-1) / (s (s-1))``.  For a
    degenerate one-element sample the cross-pair term is undefined and
    the minimum-possible estimate n is returned (SJ >= n always).
    """
    if sample_size < 0:
        raise ValueError(f"sample_size must be >= 0, got {sample_size}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return 0.0
    if sample_size <= 1:
        return float(n)
    return float(n) + (float(sample_sj) - sample_size) * n * (n - 1) / (
        sample_size * (sample_size - 1)
    )


@register_sketch
class NaiveSamplingEstimator(Sketch):
    """Streaming naive-sampling tracker for insertion-only sequences.

    Maintains a uniform without-replacement sample of the stream seen
    so far via reservoir sampling, so a query can be answered at any
    point without knowing the final length in advance.

    Parameters
    ----------
    s:
        Sample size (the storage budget in memory words).
    seed:
        RNG seed for the reservoir.
    rng_scheme:
        ``"counter"`` (default) draws from the position-keyed counter
        RNG so bulk ingest runs through the compiled reservoir-chain
        kernel; ``"pcg64"`` is the legacy stateful scheme, kept so old
        snapshots load and continue draw for draw.

    Notes
    -----
    Section 2.3 defines naive-sampling for insertion-only sequences
    only; :meth:`delete` raises ``NotImplementedError`` by design, and
    the experimental comparison on update streams with deletions is
    restricted to the two AMS algorithms.
    """

    kind = "naivesampling"
    describe = (
        "scale-up-the-sample self-join baseline (Section 3 straw man); "
        "insertion-only, not mergeable"
    )

    #: Histogram entries with counts at most this expand through the
    #: vectorised ``np.repeat`` path; larger counts use the reservoir's
    #: arithmetic repeat jumps (identical draws either way).
    _EXPAND_MAX = 1 << 16

    #: Target expanded-buffer size per bulk flush.
    _EXPAND_CHUNK = 1 << 17

    def __init__(
        self, s: int, seed: int | None = None, rng_scheme: str = "counter"
    ):
        if s < 1:
            raise ValueError(f"sample size s must be >= 1, got {s}")
        self.s = int(s)
        self._reservoir = ReservoirSample(self.s, seed=seed, scheme=rng_scheme)

    @property
    def rng_scheme(self) -> str:
        """The RNG scheme the reservoir draws from."""
        return self._reservoir.scheme

    def insert(self, value: int) -> None:
        """Offer one stream element to the reservoir."""
        self._reservoir.offer(int(value))

    def delete(self, value: int) -> None:
        """Unsupported: the paper defines naive-sampling for inserts only."""
        raise NotImplementedError(
            "naive-sampling is defined for insertion-only sequences (Section 2.3)"
        )

    def update_from_stream(self, values: Iterable[int] | np.ndarray) -> None:
        """Offer a whole stream via the reservoir's skip-jump bulk path.

        Work happens only at accepted positions — O(s log(n/s)) of them
        — and the result is bit-identical to per-element :meth:`insert`
        calls (same random draws at the same positions).
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
        self._reservoir.offer_array(arr)

    def update_from_frequencies(
        self, values: Iterable[int] | np.ndarray, counts: Iterable[int] | np.ndarray
    ) -> None:
        """Fold an insertion-only histogram in (negative counts raise).

        Entries with modest counts are expanded with ``np.repeat`` into
        chunked value arrays and offered through the bulk reservoir
        path; entries with huge counts keep the reservoir's arithmetic
        repeat jumps, so a value with a billion occurrences still costs
        O(s log) work, not O(count) memory.  Both routes consume the
        same draws as offering every occurrence one by one, so the
        resulting sample is identical to the per-element loop.
        Deletion counts are rejected the same way :meth:`delete` is.
        """
        vals, cnts = as_histogram(values, counts)
        if (cnts < 0).any():
            raise NotImplementedError(
                "naive-sampling is defined for insertion-only sequences (Section 2.3)"
            )
        pend_vals: list[int] = []
        pend_cnts: list[int] = []
        pending = 0

        def flush() -> None:
            nonlocal pending
            if not pend_vals:
                return
            expanded = np.repeat(
                np.asarray(pend_vals, dtype=np.int64),
                np.asarray(pend_cnts, dtype=np.int64),
            )
            self._reservoir.offer_array(expanded)
            pend_vals.clear()
            pend_cnts.clear()
            pending = 0

        for v, c in zip(vals.tolist(), cnts.tolist()):
            if c == 0:
                continue
            if c > self._EXPAND_MAX:
                flush()
                self._reservoir.offer_repeated(v, c)
                continue
            pend_vals.append(v)
            pend_cnts.append(c)
            pending += c
            if pending >= self._EXPAND_CHUNK:
                flush()
        flush()

    def estimate(self) -> float:
        """Histogram the sample, compute SJ(S), scale up (Section 2.3)."""
        sample = self._reservoir.items
        n = self._reservoir.offered
        if n == 0:
            return 0.0
        arr = np.asarray(sample, dtype=np.int64)
        _, counts = np.unique(arr, return_counts=True)
        sample_sj = float(np.sum(counts.astype(np.float64) ** 2))
        return scale_sample_self_join(sample_sj, arr.size, n)

    @property
    def n(self) -> int:
        """Number of stream elements offered so far."""
        return self._reservoir.offered

    @property
    def sample_size(self) -> int:
        """Number of elements currently held (min(s, n))."""
        return len(self._reservoir.items)

    @property
    def memory_words(self) -> int:
        """Storage in the paper's cost model: the sample size s."""
        return self.s

    def to_dict(self) -> dict:
        """Serialise the estimator (reservoir contents + RNG state)."""
        return {"kind": self.kind, "s": self.s, "reservoir": self._reservoir.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "NaiveSamplingEstimator":
        """Reconstruct an estimator from :meth:`to_dict` output."""
        if payload.get("kind") != cls.kind:
            raise ValueError(
                f"not a NaiveSamplingEstimator payload: {payload.get('kind')!r}"
            )
        estimator = cls(int(payload["s"]))
        estimator._reservoir = ReservoirSample.from_dict(payload["reservoir"])
        if estimator._reservoir.k != estimator.s:
            raise ValueError(
                f"reservoir size {estimator._reservoir.k} != sample size {estimator.s}"
            )
        return estimator

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NaiveSamplingEstimator(s={self.s}, n={self.n})"


def naive_sampling_estimate_offline(
    values: np.ndarray | Iterable[int],
    s: int,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Naive-sampling estimate for a full in-memory stream.

    Draws ``min(s, n)`` elements without replacement, computes the
    sample self-join size, and scales with
    :func:`scale_sample_self_join`.  This is the harness fast path; it
    matches the streaming class distributionally (both produce uniform
    without-replacement samples).
    """
    if s < 1:
        raise ValueError(f"sample size s must be >= 1, got {s}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
    n = arr.size
    if n == 0:
        return 0.0
    k = min(int(s), n)
    sample = gen.choice(arr, size=k, replace=False)
    _, counts = np.unique(sample, return_counts=True)
    sample_sj = float(np.sum(counts.astype(np.float64) ** 2))
    return scale_sample_self_join(sample_sj, k, n)
