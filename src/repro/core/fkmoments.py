"""A *mergeable* F_k sketch: roots-of-unity counters, median-of-means.

The [AMS99] F_k estimator of Section 2.1 samples stream *positions*,
which makes it fundamentally non-mergeable: the sample of a union
stream cannot be computed from the samples of its parts (the same
reason :class:`~repro.core.samplecount.SampleCountSketch` is excluded
from sharded builds).  To give higher moments the same systems story
as the tug-of-war F_2 sketch — windowing, compaction, cluster
scatter–gather — this module keeps a *linear* synopsis instead.

Each of the ``s = s1 * s2`` slots hashes every value ``v`` to a digit
``b(v) in {0..k-1}`` with a k-wise independent family and maintains
the k integer counters ``C[m] = sum_{v: b(v)=m} f_v``.  At query time
the slot forms the complex sum ``Z = sum_m C[m] * w^m`` over the
primitive k-th root of unity ``w = exp(2*pi*i/k)`` and reports the
basic estimator ``X = Re(Z^k)``.  Expanding ``Z^k`` over value tuples,
every tuple whose values are not all equal carries a factor
``E[w^(m*b(v))] = 0`` for some ``1 <= m < k``, while the all-equal
tuples contribute ``f_v^k * w^(k*b(v)) = f_v^k`` deterministically —
so ``E[X] = F_k`` and the usual median of s2 means of s1 slots
concentrates it.  ``k = 2`` degenerates to the tug-of-war sketch
(``w = -1``, ``Z`` a signed counter, ``X = Z^2``); ``k = 1`` is exact.

The state is an integer linear map of the frequency vector: deletions
subtract what insertions add, merge is element-wise counter addition
(bit-identical to the monolithic build), and all floating-point math
happens at query time only.

Unlike F_2's universal ``4/sqrt(s1)`` bound, the relative variance of
this estimator for ``k >= 3`` depends on the frequency profile: it is
small on skewed streams (where F_k is dominated by heavy values — the
regime the statistical-guarantee harness asserts) and grows as the
stream flattens, where ``Z^k`` cross-term noise dominates the small
true moment.  Size ``s1`` for the skew you expect.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..engine.protocol import Sketch, as_histogram
from ..engine.registry import register_sketch
from .. import kernels
from .estimators import group_shape_for, median_of_means
from .hashing import PolynomialHashFamily
from .moments import UnsupportedMomentError

__all__ = ["FkMomentSketch"]

#: Chunk width for batch updates, matching the tug-of-war sketch: it
#: bounds the (s, chunk) digit matrix materialised at once so the
#: working set stays cache-resident.
_BATCH_CHUNK = 1024


@register_sketch
class FkMomentSketch(Sketch):
    """Tracks the k-th frequency moment under inserts and deletes.

    Parameters
    ----------
    k:
        The moment order the sketch is built for (k >= 1).  The digit
        hash is taken modulo k, so one sketch answers exactly one
        order (plus the always-exact F_1).
    s1:
        Slots averaged per group; controls accuracy.
    s2:
        Groups medianed; controls confidence.
    seed:
        Seed for the k-wise independent digit family.  Sketches that
        must be merged **must** share a seed (checked at merge time
        via the family itself).

    Examples
    --------
    >>> sk = FkMomentSketch(k=3, s1=64, s2=5, seed=7)
    >>> for v in [1, 2, 2, 3, 3, 3]:
    ...     sk.insert(v)
    >>> est = sk.moment_estimate(3)   # true F_3 is 1 + 8 + 27 = 36
    """

    kind = "fk_moments"
    is_linear = True  # integer counters are a linear map of frequencies
    describe = (
        "roots-of-unity linear sketch for one fixed frequency moment "
        "F_k; mergeable, deletion-exact"
    )

    __slots__ = ("k", "s1", "s2", "_digits", "_c", "_n")

    def __init__(
        self,
        k: int = 2,
        s1: int = 256,
        s2: int = 1,
        seed: int | None = None,
    ):
        k = int(k)
        if k < 1:
            raise UnsupportedMomentError(
                f"moment order k must be >= 1, got {k}"
            )
        self.k = k
        self.s1, self.s2 = group_shape_for(s1, s2)
        # The vanishing of cross terms in E[Z^k] needs the digits of up
        # to k distinct values to be independent; 4-wise is kept as the
        # floor so k = 2 matches the tug-of-war analysis.
        self._digits = PolynomialHashFamily(
            self.s1 * self.s2, independence=max(k, 4), seed=seed
        )
        self._c = np.zeros((self.s1 * self.s2, k), dtype=np.int64)
        self._n = 0

    # ------------------------------------------------------------------
    # Updates (O(s) per operation)
    # ------------------------------------------------------------------
    def insert(self, value: int) -> None:
        """Process insert(v): bump counter b(v) in every slot."""
        self.update(value, 1)

    def delete(self, value: int) -> None:
        """Process delete(v): exact inverse of :meth:`insert`."""
        if self._n <= 0:
            raise ValueError("cannot delete from an empty multiset")
        self.update(value, -1)

    def update(self, value: int, count: int) -> None:
        """Fold ``count`` occurrences of ``value`` in at once."""
        c = int(count)
        if c == 0:
            return
        if self._n + c < 0:
            raise ValueError(
                f"deleting {-c} occurrences would make the multiset size negative"
            )
        kernels.fk_update_one(
            self._digits.coefficients, value, c, self._c, self.k
        )
        self._n += c

    def update_from_frequencies(
        self, values: np.ndarray | Iterable[int], counts: np.ndarray | Iterable[int]
    ) -> None:
        """Fold a whole (possibly signed) frequency histogram in.

        The vectorised bulk path: the fused digit-scatter kernel
        (:func:`repro.kernels.fk_scatter`) adds ``c_v`` into column
        ``b(v)`` of every slot, chunked so the working set stays
        cache-resident.  Integer addition commutes, so the result is
        bit-identical to the equivalent sequence of :meth:`update`
        calls on every kernel backend.
        """
        vals, cnts = as_histogram(values, counts)
        total = int(cnts.sum())
        if self._n + total < 0:
            raise ValueError("batch would make the multiset size negative")
        coeffs = self._digits.coefficients
        for start in range(0, vals.size, _BATCH_CHUNK):
            kernels.fk_scatter(
                coeffs,
                vals[start : start + _BATCH_CHUNK],
                cnts[start : start + _BATCH_CHUNK],
                self._c,
                self.k,
            )
        self._n += total

    def update_from_stream(self, values: np.ndarray | Iterable[int]) -> None:
        """Fold an insertion-only stream in via its histogram."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.size == 0:
            return
        uniq, counts = np.unique(arr, return_counts=True)
        self.update_from_frequencies(uniq, counts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def basic_estimators(self) -> np.ndarray:
        """The s1*s2 individual estimators ``X = Re(Z^k)`` per slot."""
        omega = np.exp(2j * np.pi * np.arange(self.k) / self.k)
        z = self._c.astype(np.float64) @ omega
        return (z**self.k).real

    def moment_estimate(self, k: int) -> float:
        """Median-of-means F_k estimate for the configured order.

        F_1 is answered exactly for every sketch (it is the tracked
        multiset size); any other order must match the ``k`` the
        digit hash was built for, else :class:`UnsupportedMomentError`.
        """
        k = int(k)
        if k < 1:
            raise UnsupportedMomentError(
                f"moment order k must be >= 1, got {k}"
            )
        if k == 1:
            return float(self._n)
        if k != self.k:
            raise UnsupportedMomentError(
                f"this fk_moments sketch is built for k={self.k} (its digit "
                f"hash is modulo {self.k}) and cannot answer k={k}"
            )
        if self._n == 0:
            return 0.0
        return median_of_means(self.basic_estimators().reshape(self.s2, self.s1))

    def estimate(self) -> float:
        """The configured-order moment estimate (F_k for the built k)."""
        return self.moment_estimate(self.k)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def merge(self, other: "FkMomentSketch") -> "FkMomentSketch":
        """Return the sketch of the union of the two underlying multisets.

        Requires identical (k, s1, s2) *and* identical digit families
        (same seed); the integer counters are then simply additive, so
        the merge is bit-identical to the monolithic build.
        """
        self._check_compatible(other)
        merged = self.copy()
        merged._c = self._c + other._c
        merged._n = self._n + other._n
        return merged

    def _check_compatible(self, other: "FkMomentSketch") -> None:
        if not isinstance(other, FkMomentSketch):
            raise TypeError(f"expected FkMomentSketch, got {type(other).__name__}")
        if (self.k, self.s1, self.s2) != (other.k, other.s1, other.s2):
            raise ValueError(
                f"shape mismatch: k={self.k},({self.s1},{self.s2}) vs "
                f"k={other.k},({other.s1},{other.s2})"
            )
        if self._digits != other._digits:
            raise ValueError(
                "sketches use different hash families; build both with the same seed"
            )

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Current multiset size (inserts minus deletes) — exact F_1."""
        return self._n

    @property
    def memory_words(self) -> int:
        """Storage in the memory-word model: s1 * s2 slots of k counters."""
        return self.s1 * self.s2 * self.k

    @property
    def counters(self) -> np.ndarray:
        """Read-only view of the raw (s, k) counter matrix."""
        view = self._c.view()
        view.flags.writeable = False
        return view

    def copy(self) -> "FkMomentSketch":
        """Independent deep copy sharing the same (immutable) hashes."""
        dup = FkMomentSketch.__new__(FkMomentSketch)
        dup.k, dup.s1, dup.s2 = self.k, self.s1, self.s2
        dup._digits = self._digits  # immutable after construction
        dup._c = self._c.copy()
        dup._n = self._n
        return dup

    def to_dict(self) -> dict:
        """Serialise the full sketch state to plain Python types."""
        return {
            "kind": self.kind,
            "k": self.k,
            "s1": self.s1,
            "s2": self.s2,
            "n": self._n,
            "counters": self._c.tolist(),
            "digits": self._digits.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FkMomentSketch":
        """Reconstruct a sketch from :meth:`to_dict` output."""
        if payload.get("kind") != "fk_moments":
            raise ValueError(
                f"not a FkMomentSketch payload: {payload.get('kind')!r}"
            )
        sketch = cls.__new__(cls)
        sketch.k = int(payload["k"])
        if sketch.k < 1:
            raise ValueError(f"moment order k must be >= 1, got {sketch.k}")
        sketch.s1 = int(payload["s1"])
        sketch.s2 = int(payload["s2"])
        sketch._n = int(payload["n"])
        sketch._c = np.asarray(payload["counters"], dtype=np.int64)
        if sketch._c.shape != (sketch.s1 * sketch.s2, sketch.k):
            raise ValueError(
                f"counter matrix has shape {sketch._c.shape}, "
                f"expected ({sketch.s1 * sketch.s2}, {sketch.k})"
            )
        sketch._digits = PolynomialHashFamily.from_dict(payload["digits"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FkMomentSketch(k={self.k}, s1={self.s1}, s2={self.s2}, "
            f"n={self._n}, words={self.memory_words})"
        )
