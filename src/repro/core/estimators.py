"""Estimator-combination machinery: averages, medians, median-of-means.

Both AMS approaches produce a grid of ``s = s1 * s2`` independent basic
estimators ``X_{i,j}`` whose expectation is the target quantity.  The
final estimate is the *median over j* of the *mean over i* — averaging
shrinks the variance (Chebyshev), the median boosts the confidence
(Chernoff).  This module centralises that logic so the tug-of-war
sketch, the sample-count tracker, and the join estimators all combine
their basic estimators identically, and so the ablation benchmark can
swap combiners.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "median_of_means",
    "mean_estimate",
    "median_estimate",
    "split_parameters",
    "group_shape_for",
]


def mean_estimate(basic: np.ndarray | Sequence[float]) -> float:
    """Plain average of the basic estimators (the s2 = 1 special case)."""
    arr = np.asarray(basic, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot combine zero basic estimators")
    return float(arr.mean())

def median_estimate(basic: np.ndarray | Sequence[float]) -> float:
    """Plain median of the basic estimators (the s1 = 1 special case)."""
    arr = np.asarray(basic, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot combine zero basic estimators")
    return float(np.median(arr))


def median_of_means(
    basic: np.ndarray | Sequence[float],
    s1: int | None = None,
    s2: int | None = None,
) -> float:
    """Median over s2 groups of the mean of s1 basic estimators each.

    Parameters
    ----------
    basic:
        Either a 2-D array of shape ``(s2, s1)`` — row j holding group
        j's basic estimators — or a flat array of length ``s1 * s2``
        combined with explicit ``s1``/``s2``.
    s1, s2:
        Group shape when ``basic`` is flat.  For a 2-D input they must
        be omitted or agree with the array's shape.

    Notes
    -----
    This mirrors steps 2–3 of both AMS algorithms: ``Y_j`` is the mean
    of group j and the returned estimate is ``median(Y_1..Y_s2)``.
    """
    arr = np.asarray(basic, dtype=np.float64)
    if arr.ndim == 1:
        if s1 is None or s2 is None:
            raise ValueError("flat input requires explicit s1 and s2")
        if s1 < 1 or s2 < 1:
            raise ValueError(f"s1 and s2 must be >= 1, got s1={s1}, s2={s2}")
        if arr.size != s1 * s2:
            raise ValueError(
                f"flat input has {arr.size} estimators, expected s1*s2 = {s1 * s2}"
            )
        arr = arr.reshape(s2, s1)
    elif arr.ndim == 2:
        if s2 is not None and arr.shape[0] != s2:
            raise ValueError(f"array has {arr.shape[0]} groups, s2 says {s2}")
        if s1 is not None and arr.shape[1] != s1:
            raise ValueError(f"array groups have {arr.shape[1]} members, s1 says {s1}")
    else:
        raise ValueError(f"basic estimators must be 1-D or 2-D, got {arr.ndim}-D")
    if arr.size == 0:
        raise ValueError("cannot combine zero basic estimators")
    group_means = arr.mean(axis=1)
    return float(np.median(group_means))


def split_parameters(s: int) -> tuple[int, int]:
    """Choose a default ``(s1, s2)`` split for a total budget of s words.

    The paper plots accuracy against the total sample size s; for the
    experimental sweeps we follow the convention of spending most of
    the budget on accuracy (s1) while keeping a small constant number
    of median groups for confidence.  We use s2 = min(s, 5) — an odd
    number so the median is an actual sample point — and s1 = s // s2,
    falling back to s2 = 1 while s < 5 so tiny budgets are all
    accuracy.  ``s1 * s2 <= s`` always holds.
    """
    if s < 1:
        raise ValueError(f"total budget s must be >= 1, got {s}")
    if s < 5:
        return s, 1
    s2 = 5
    s1 = s // s2
    return s1, s2


def group_shape_for(s1: int, s2: int) -> tuple[int, int]:
    """Validate an explicit (s1, s2) pair and return it.

    Raises ``ValueError`` on non-positive entries; used by the sketch
    constructors so error messages are uniform.
    """
    s1 = int(s1)
    s2 = int(s2)
    if s1 < 1:
        raise ValueError(f"s1 (accuracy groups size) must be >= 1, got {s1}")
    if s2 < 1:
        raise ValueError(f"s2 (confidence groups) must be >= 1, got {s2}")
    return s1, s2


def theoretical_relative_error(s1: int) -> float:
    """The Theorem 2.2 tug-of-war error bound ``4 / sqrt(s1)``.

    With probability at least ``1 - 2^(-s2/2)`` the tug-of-war estimate
    is within this relative error of SJ(R), for any input.
    """
    if s1 < 1:
        raise ValueError(f"s1 must be >= 1, got {s1}")
    return 4.0 / math.sqrt(s1)


def theoretical_confidence(s2: int) -> float:
    """The Theorem 2.1/2.2 success probability ``1 - 2^(-s2/2)``."""
    if s2 < 1:
        raise ValueError(f"s2 must be >= 1, got {s2}")
    return 1.0 - 2.0 ** (-s2 / 2.0)


__all__ += ["theoretical_relative_error", "theoretical_confidence"]
