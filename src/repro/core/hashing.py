"""k-wise independent hash families used by the sketching algorithms.

The tug-of-war sketch (Section 2.2 of the paper) and the k-TW join
signature scheme (Section 4.3) require, for each counter, a random
mapping ``v -> eps(v)`` from the value domain into ``{-1, +1}`` drawn
from a *4-wise independent* family.  Four-wise independence is exactly
what the variance analysis of [AMS99] needs: it makes
``E[eps(u) eps(v) eps(w) eps(x)]`` vanish for distinct arguments, which
in turn bounds ``Var[Z^2]`` by ``2 * SJ(R)^2``.

We implement the textbook construction: degree-(k-1) polynomials with
random coefficients over the prime field GF(p).  Evaluating a random
degree-3 polynomial at k <= 4 distinct points gives independent uniform
values over [0, p), hence 4-wise independence.  The +/-1 sign is the
least-significant bit of the polynomial value; because p is odd, one
bit of a uniform value over [0, p) has bias at most 1/(2p), which for
p = 2^31 - 1 is ~2.3e-10 — negligible against every statistical
tolerance in the paper's study (the substitution is recorded in
DESIGN.md).

Everything is vectorised with numpy so that a sketch with thousands of
counters can process an update with a handful of array operations:
coefficients are stored as a ``(num_functions, degree)`` uint64 matrix
and evaluation uses Horner's rule.  All intermediate products fit in
uint64 because coefficients and points are both < 2^31.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "MERSENNE_PRIME_31",
    "PolynomialHashFamily",
    "SignHashFamily",
]

#: The Mersenne prime 2^31 - 1 used as the field modulus.  Domain
#: values must lie in [0, MERSENNE_PRIME_31).
MERSENNE_PRIME_31 = (1 << 31) - 1

_P = np.uint64(MERSENNE_PRIME_31)
_SHIFT = np.uint64(31)


def _mod_mersenne(y: np.ndarray) -> np.ndarray:
    """Reduce uint64 values below 2^62 modulo p = 2^31 - 1, divisionless.

    Because ``2^31 ≡ 1 (mod p)``, writing ``y = a 2^31 + b`` gives
    ``y ≡ a + b``; two shift-and-mask folds bring any product of two
    field elements (< 2^62) down to at most p + 1, and one conditional
    subtract finishes.  Bit-identical to ``y % p`` but avoids the slow
    uint64 division on the bulk-ingestion hot path (~4x faster hash
    evaluation for million-element batches).
    """
    y = (y >> _SHIFT) + (y & _P)
    y = (y >> _SHIFT) + (y & _P)
    return np.where(y >= _P, y - _P, y)


class PolynomialHashFamily:
    """A bundle of ``count`` independent k-wise independent hash functions.

    Each function is a uniformly random polynomial of degree
    ``independence - 1`` over GF(p), p = 2^31 - 1, evaluated with
    Horner's rule.  The family therefore provides ``independence``-wise
    independent uniform values over [0, p).

    Parameters
    ----------
    count:
        Number of independent hash functions in the bundle.
    independence:
        Level of k-wise independence (the polynomial degree is
        ``independence - 1``).  The paper's algorithms need 4.
    seed:
        Seed for the coefficient-drawing RNG.  Two families built with
        the same ``(count, independence, seed)`` are identical, which
        is how k-TW signatures for *different relations* share their
        eps mappings (Section 4.3).

    Notes
    -----
    The leading coefficient is allowed to be zero; this is the standard
    "random polynomial" family, which is exactly k-wise independent
    (degenerating to lower degree only blends in lower-degree members
    of the same family).
    """

    __slots__ = ("count", "independence", "seed", "_coeffs")

    def __init__(self, count: int, independence: int = 4, seed: int | None = None):
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if independence < 1:
            raise ValueError(f"independence must be >= 1, got {independence}")
        self.count = int(count)
        self.independence = int(independence)
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Shape (count, independence): row i holds the coefficients of
        # polynomial i, highest degree first (Horner order).
        self._coeffs = rng.integers(
            0, MERSENNE_PRIME_31, size=(self.count, self.independence), dtype=np.uint64
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def hash_one(self, value: int) -> np.ndarray:
        """Evaluate all ``count`` functions at a single domain value.

        Returns a uint64 array of shape ``(count,)`` with entries in
        [0, p).
        """
        v = int(value)
        if not 0 <= v < MERSENNE_PRIME_31:
            raise ValueError(
                f"value {value!r} outside hashable domain [0, {MERSENNE_PRIME_31})"
            )
        x = np.uint64(v)
        acc = self._coeffs[:, 0].copy()
        for d in range(1, self.independence):
            acc = _mod_mersenne(acc * x + self._coeffs[:, d])
        return acc

    def hash_many(self, values: np.ndarray | Iterable[int]) -> np.ndarray:
        """Evaluate all functions at many domain values at once.

        Parameters
        ----------
        values:
            Integer array of shape ``(m,)`` with entries in [0, p).

        Returns
        -------
        numpy.ndarray
            uint64 array of shape ``(count, m)``; entry ``[i, j]`` is
            function i evaluated at ``values[j]``.
        """
        vals = np.asarray(values, dtype=np.uint64)
        if vals.ndim != 1:
            raise ValueError(f"values must be one-dimensional, got shape {vals.shape}")
        if vals.size and bool((vals >= _P).any()):
            raise ValueError(
                f"values contain entries >= {MERSENNE_PRIME_31}, outside the field"
            )
        x = vals[np.newaxis, :]  # (1, m)
        acc = np.empty((self.count, vals.size), dtype=np.uint64)
        np.copyto(acc, self._coeffs[:, 0:1])  # broadcast fill, no extra copy
        tmp = np.empty_like(acc)
        for d in range(1, self.independence):
            acc *= x
            acc += self._coeffs[:, d : d + 1]
            # Two lazy in-place folds leave acc ≡ (mod p) and <= p + 1,
            # small enough for the next product to stay below 2^62;
            # the final conditional subtract lands in [0, p).
            np.right_shift(acc, _SHIFT, out=tmp)
            acc &= _P
            acc += tmp
            np.right_shift(acc, _SHIFT, out=tmp)
            acc &= _P
            acc += tmp
        np.subtract(acc, _P, out=acc, where=acc >= _P)
        return acc

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def coefficients(self) -> np.ndarray:
        """A read-only view of the coefficient matrix (count x degree)."""
        view = self._coeffs.view()
        view.flags.writeable = False
        return view

    def to_dict(self) -> dict:
        """Serialise the family to plain Python types."""
        return {
            "count": self.count,
            "independence": self.independence,
            "seed": self.seed,
            "coefficients": self._coeffs.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PolynomialHashFamily":
        """Reconstruct a family from :meth:`to_dict` output."""
        family = cls.__new__(cls)
        family.count = int(payload["count"])
        family.independence = int(payload["independence"])
        family.seed = payload.get("seed")
        coeffs = np.asarray(payload["coefficients"], dtype=np.uint64)
        if coeffs.shape != (family.count, family.independence):
            raise ValueError(
                "coefficient matrix has shape "
                f"{coeffs.shape}, expected {(family.count, family.independence)}"
            )
        family._coeffs = coeffs
        return family

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolynomialHashFamily):
            return NotImplemented
        return (
            self.count == other.count
            and self.independence == other.independence
            and np.array_equal(self._coeffs, other._coeffs)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolynomialHashFamily(count={self.count}, "
            f"independence={self.independence}, seed={self.seed!r})"
        )


class SignHashFamily:
    """A bundle of 4-wise independent ``v -> {-1, +1}`` mappings.

    This is the ``eps`` family of the tug-of-war sketch: the sign is
    the least-significant bit of a :class:`PolynomialHashFamily` value,
    mapped ``0 -> -1`` and ``1 -> +1``.

    The class deliberately mirrors the polynomial family's API but
    returns int8 arrays of signs, which the sketches consume directly.
    """

    __slots__ = ("_family",)

    def __init__(self, count: int, seed: int | None = None, independence: int = 4):
        self._family = PolynomialHashFamily(count, independence=independence, seed=seed)

    @property
    def count(self) -> int:
        """Number of independent sign functions."""
        return self._family.count

    @property
    def independence(self) -> int:
        """k-wise independence level of the underlying family."""
        return self._family.independence

    @property
    def seed(self) -> int | None:
        """Seed the family was built from (None if reconstructed)."""
        return self._family.seed

    @property
    def coefficients(self) -> np.ndarray:
        """Read-only coefficient matrix of the underlying polynomials.

        The fused kernels (:mod:`repro.kernels`) evaluate the sign
        directly from these rows rather than through :meth:`signs_many`.
        """
        return self._family.coefficients

    def signs_one(self, value: int) -> np.ndarray:
        """Signs of all functions at one value: int8 array (count,)."""
        bits = self._family.hash_one(value) & np.uint64(1)
        return (bits.astype(np.int8) << 1) - 1

    def signs_many(self, values: np.ndarray | Iterable[int]) -> np.ndarray:
        """Signs of all functions at many values: int8 array (count, m)."""
        bits = self._family.hash_many(values) & np.uint64(1)
        return (bits.astype(np.int8) << 1) - 1

    def to_dict(self) -> dict:
        """Serialise to plain Python types."""
        return {"kind": "sign", "family": self._family.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "SignHashFamily":
        """Reconstruct from :meth:`to_dict` output."""
        if payload.get("kind") != "sign":
            raise ValueError(f"not a SignHashFamily payload: {payload.get('kind')!r}")
        obj = cls.__new__(cls)
        obj._family = PolynomialHashFamily.from_dict(payload["family"])
        return obj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignHashFamily):
            return NotImplemented
        return self._family == other._family

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SignHashFamily(count={self.count}, seed={self.seed!r}, "
            f"independence={self.independence})"
        )
