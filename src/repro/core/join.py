"""Join-size estimation from per-relation signatures (Section 4).

The goal: maintain a small signature of each relation *independently*
(no per-pair state), such that the join size ``|F join G| = sum_i
f_i * g_i`` of any two relations can be estimated from their signatures
alone.  Two schemes from the paper:

**Sample signatures** (Section 4.1, the ``t_cross`` procedure of
[HNSS93]): keep each tuple's join-attribute value with probability p;
estimate the join size as the join size of the two samples scaled by
``p^-2``.  Lemma 4.1 bounds the variance via the degree sequence of the
value-equality bipartite graph; Lemma 4.2 turns it into the Theta(n²/B)
storage bound under a sanity bound B.  Theorem 4.3 (see
:mod:`repro.core.bounds` and :mod:`repro.data.adversarial`) shows no
signature scheme does asymptotically better.

**k-TW signatures** (Section 4.3): per relation keep k tug-of-war
counters ``S(F)_i = sum_v eps_i(v) f_v`` built from *shared* 4-wise
independent sign families.  Lemma 4.4:

    E[S(F) S(G)] = |F join G|,
    Var[S(F) S(G)] <= 2 SJ(F) SJ(G),

so the arithmetic mean of the k products estimates the join size within
``sqrt(2 SJ(F) SJ(G) / k)`` standard error — better than sampling
whenever the self-join sizes satisfy ``C < n sqrt(B)`` (Section 4.4).

Because the eps families must be shared across relations, signatures
are created through a :class:`JoinSignatureFamily`; signatures from
different families refuse to combine.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..engine.protocol import as_histogram
from .bounds import ktw_join_error_bound
from .estimators import median_of_means
from .hashing import SignHashFamily

__all__ = [
    "JoinSignatureFamily",
    "TugOfWarJoinSignature",
    "SampleJoinSignature",
    "sample_join_estimate",
]


class TugOfWarJoinSignature:
    """A k-word tug-of-war join signature of one relation (Section 4.3).

    Create through :meth:`JoinSignatureFamily.signature`; all
    signatures of one family share sign functions and can estimate
    pairwise join sizes (and their own self-join size, since
    ``|F join F| = SJ(F)``).

    Supports insertions and deletions of joining-attribute values —
    the incremental maintenance noted at the end of Section 4.3.
    """

    __slots__ = ("_family", "_family_id", "_z", "_n")

    def __init__(self, family: "JoinSignatureFamily"):
        self._family = family._signs
        self._family_id = id(family._signs)
        self._z = np.zeros(family.k, dtype=np.int64)
        self._n = 0

    # -- updates ---------------------------------------------------------
    def insert(self, value: int) -> None:
        """New tuple with joining-attribute value v: Z_i += h_i(v)."""
        self._z += self._family.signs_one(value)
        self._n += 1

    def delete(self, value: int) -> None:
        """Tuple removed: Z_i -= h_i(v)."""
        if self._n <= 0:
            raise ValueError("cannot delete from an empty relation")
        self._z -= self._family.signs_one(value)
        self._n -= 1

    def update_from_frequencies(
        self, values: np.ndarray | Iterable[int], counts: np.ndarray | Iterable[int]
    ) -> None:
        """Bulk-load a frequency histogram (vectorised)."""
        vals, cnts = as_histogram(values, counts)
        chunk = 1024  # keep the (k, chunk) sign matrix cache-resident
        for start in range(0, vals.size, chunk):
            signs = self._family.signs_many(vals[start : start + chunk]).astype(np.int64)
            self._z += signs @ cnts[start : start + chunk]
        self._n += int(cnts.sum())

    def update_from_stream(self, values: np.ndarray | Iterable[int]) -> None:
        """Bulk-load an insertion stream via its histogram."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.size == 0:
            return
        uniq, counts = np.unique(arr, return_counts=True)
        self.update_from_frequencies(uniq, counts)

    # -- estimation --------------------------------------------------------
    def join_estimate(self, other: "TugOfWarJoinSignature") -> float:
        """k-TW join-size estimate: mean of the k counter products.

        This is the literal Section 4.3 estimator (arithmetic mean of k
        independent 1-TW estimators; error shrinks by sqrt(k)).
        """
        self._check_compatible(other)
        return float(
            (self._z.astype(np.float64) * other._z.astype(np.float64)).mean()
        )

    def join_estimate_median_of_means(
        self, other: "TugOfWarJoinSignature", groups: int = 5
    ) -> float:
        """Median-of-means variant for extra confidence (k % groups == 0)."""
        self._check_compatible(other)
        k = self._z.size
        if groups < 1 or k % groups:
            raise ValueError(f"groups must divide k={k}, got {groups}")
        products = (self._z.astype(np.float64) * other._z.astype(np.float64)).reshape(
            groups, k // groups
        )
        return median_of_means(products)

    def self_join_estimate(self) -> float:
        """SJ(F) estimate from the same signature (|F join F|)."""
        z = self._z.astype(np.float64)
        return float((z * z).mean())

    def error_bound(self, sj_self: float, sj_other: float) -> float:
        """Lemma 4.4 standard error: sqrt(2 SJ(F) SJ(G) / k)."""
        return ktw_join_error_bound(sj_self, sj_other, self._z.size)

    def _check_compatible(self, other: "TugOfWarJoinSignature") -> None:
        if not isinstance(other, TugOfWarJoinSignature):
            raise TypeError(
                f"expected TugOfWarJoinSignature, got {type(other).__name__}"
            )
        if self._family_id != other._family_id or self._family is not other._family:
            raise ValueError(
                "signatures come from different JoinSignatureFamily instances; "
                "join estimation requires shared sign functions"
            )

    # -- introspection -----------------------------------------------------
    @property
    def k(self) -> int:
        """Signature size in memory words."""
        return int(self._z.size)

    @property
    def memory_words(self) -> int:
        """Alias for :attr:`k` (paper cost model)."""
        return self.k

    @property
    def n(self) -> int:
        """Current relation size."""
        return self._n

    @property
    def counters(self) -> np.ndarray:
        """Read-only view of the raw counters."""
        view = self._z.view()
        view.flags.writeable = False
        return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TugOfWarJoinSignature(k={self.k}, n={self._n})"


class JoinSignatureFamily:
    """Factory for k-TW signatures sharing one set of sign functions.

    The k sign functions are drawn once (4-wise independent each,
    mutually independent); every relation tracked under this family
    gets its own counters but the same eps mappings, which is what
    makes ``E[S(F) S(G)] = |F join G|`` hold.

    Parameters
    ----------
    k:
        Words per relation signature (Theorem 4.5 picks
        ``k = c SJ(F) SJ(G) / B1^2``).
    seed:
        Seed for the sign functions; two families with equal (k, seed)
        produce interchangeable signatures only if the same family
        *object* is used — sharing is enforced by identity to prevent
        accidental cross-family estimates.
    """

    def __init__(self, k: int, seed: int | None = None, independence: int = 4):
        if k < 1:
            raise ValueError(f"signature size k must be >= 1, got {k}")
        self.k = int(k)
        self.seed = seed
        self._signs = SignHashFamily(self.k, seed=seed, independence=independence)

    def signature(self) -> TugOfWarJoinSignature:
        """A fresh all-zero signature for a new relation."""
        return TugOfWarJoinSignature(self)

    def signature_from_stream(
        self, values: np.ndarray | Iterable[int]
    ) -> TugOfWarJoinSignature:
        """Build and bulk-load a signature from a value stream."""
        sig = self.signature()
        sig.update_from_stream(values)
        return sig

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JoinSignatureFamily(k={self.k}, seed={self.seed!r})"


class SampleJoinSignature:
    """Bernoulli-sample join signature (Section 4.1 / t_cross).

    Each tuple's joining-attribute value is kept independently with
    probability p.  The stored state is the histogram of the kept
    values (equivalent to the value list, never larger).  Deletions
    remove a sampled occurrence if one exists — each tuple's coin is
    independent, so deleting a tuple deletes its sampled copy with the
    same probability it was sampled.

    The join estimate for two signatures with probabilities p and q is
    ``(join of the sample histograms) / (p q)``.
    """

    __slots__ = ("p", "_rng", "_counts", "_n")

    def __init__(self, p: float, seed: int | None = None):
        if not 0.0 < p <= 1.0:
            raise ValueError(f"sampling probability must be in (0, 1], got {p}")
        self.p = float(p)
        self._rng = np.random.default_rng(seed)
        self._counts: dict[int, int] = {}
        self._n = 0

    def insert(self, value: int) -> None:
        """Offer one tuple; kept with probability p."""
        self._n += 1
        if self._rng.random() < self.p:
            v = int(value)
            self._counts[v] = self._counts.get(v, 0) + 1

    def delete(self, value: int) -> None:
        """Remove one tuple; drops a sampled copy with probability ~p.

        A deleted tuple was in the sample iff its insertion coin came
        up heads; since coins are exchangeable within a value we drop
        one sampled occurrence with probability (sampled copies) /
        (live copies) — statistically identical and implementable
        without per-tuple state.  Requires the caller to track live
        counts; we approximate with the unconditional p when the exact
        live count is unknown, which is unbiased in expectation.
        """
        if self._n <= 0:
            raise ValueError("cannot delete from an empty relation")
        self._n -= 1
        v = int(value)
        have = self._counts.get(v, 0)
        if have and self._rng.random() < self.p:
            if have == 1:
                del self._counts[v]
            else:
                self._counts[v] = have - 1

    def update_from_stream(self, values: np.ndarray | Iterable[int]) -> None:
        """Vectorised Bernoulli sampling of a whole stream."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.size == 0:
            return
        keep = self._rng.random(arr.size) < self.p
        kept = arr[keep]
        if kept.size:
            uniq, counts = np.unique(kept, return_counts=True)
            for v, c in zip(uniq.tolist(), counts.tolist()):
                self._counts[int(v)] = self._counts.get(int(v), 0) + int(c)
        self._n += int(arr.size)

    def join_estimate(self, other: "SampleJoinSignature") -> float:
        """Join size of the sample histograms scaled by 1/(p q)."""
        if not isinstance(other, SampleJoinSignature):
            raise TypeError(f"expected SampleJoinSignature, got {type(other).__name__}")
        small, large = self._counts, other._counts
        if len(small) > len(large):
            small, large = large, small
        raw = sum(c * large.get(v, 0) for v, c in small.items())
        return raw / (self.p * other.p)

    def self_join_estimate(self) -> float:
        """SJ estimate from the sample histogram, scaled by 1/p^2.

        Biased upward by the diagonal pairs (a sampled tuple joins
        itself); corrected the same way as naive-sampling's estimator:
        subtract the sample size before scaling the cross term.
        """
        sample_size = sum(self._counts.values())
        sample_sj = sum(c * c for c in self._counts.values())
        cross = sample_sj - sample_size
        return sample_size / self.p + cross / (self.p * self.p)

    @property
    def memory_words(self) -> int:
        """Stored sample size (number of kept attribute values)."""
        return sum(self._counts.values())

    @property
    def expected_memory_words(self) -> float:
        """n * p, the expected signature size."""
        return self._n * self.p

    @property
    def n(self) -> int:
        """Current relation size."""
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SampleJoinSignature(p={self.p}, n={self._n}, kept={self.memory_words})"


def sample_join_estimate(
    left: np.ndarray | Iterable[int],
    right: np.ndarray | Iterable[int],
    p: float,
    rng: np.random.Generator | int | None = None,
) -> float:
    """One-shot t_cross estimate for two in-memory relations.

    Samples both streams with probability p using independent coins and
    returns the scaled sample-join size; the offline fast path used by
    the join experiments.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"sampling probability must be in (0, 1], got {p}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    a = np.asarray(left, dtype=np.int64)
    b = np.asarray(right, dtype=np.int64)
    sa = a[gen.random(a.size) < p]
    sb = b[gen.random(b.size) < p]
    if sa.size == 0 or sb.size == 0:
        return 0.0
    av, ac = np.unique(sa, return_counts=True)
    bv, bc = np.unique(sb, return_counts=True)
    ai = np.isin(av, bv)
    bi = np.isin(bv, av)
    raw = float(np.sum(ac[ai].astype(np.float64) * bc[bi].astype(np.float64)))
    return raw / (p * p)
