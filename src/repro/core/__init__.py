"""Core algorithms: the paper's primary contribution.

Self-join trackers (Section 2): :class:`TugOfWarSketch`,
:class:`SampleCountSketch` (+ fast-query variant), and the
:class:`NaiveSamplingEstimator` baseline, all over the exact
:class:`FrequencyVector` ground truth.  Join signatures (Section 4):
:class:`JoinSignatureFamily` / :class:`TugOfWarJoinSignature` (k-TW)
and :class:`SampleJoinSignature` (t_cross).  Analytic bounds live in
:mod:`repro.core.bounds`.
"""

from . import bounds
from .estimators import (
    mean_estimate,
    median_estimate,
    median_of_means,
    split_parameters,
    theoretical_confidence,
    theoretical_relative_error,
)
from .distinct import DistinctCountSketch
from .fkmoments import FkMomentSketch
from .frequency import (
    FrequencyVector,
    distinct_values,
    first_moment,
    join_size,
    self_join_size,
)
from .hashing import MERSENNE_PRIME_31, PolynomialHashFamily, SignHashFamily
from .join import (
    JoinSignatureFamily,
    SampleJoinSignature,
    TugOfWarJoinSignature,
    sample_join_estimate,
)
from .moments import (
    FrequencyMomentTracker,
    UnsupportedMomentError,
    exact_moment,
    fk_estimate_offline,
    fk_sample_size_bound,
)
from .multijoin import MultiJoinFamily, MultiJoinSignature
from .naivesampling import (
    NaiveSamplingEstimator,
    naive_sampling_estimate_offline,
    scale_sample_self_join,
)
from .samplecount import (
    SampleCountFastQuery,
    SampleCountSketch,
    sample_count_estimate_offline,
)
from .tugofwar import TugOfWarSketch

__all__ = [
    "bounds",
    "FrequencyVector",
    "self_join_size",
    "join_size",
    "first_moment",
    "distinct_values",
    "MERSENNE_PRIME_31",
    "PolynomialHashFamily",
    "SignHashFamily",
    "TugOfWarSketch",
    "SampleCountSketch",
    "SampleCountFastQuery",
    "sample_count_estimate_offline",
    "NaiveSamplingEstimator",
    "naive_sampling_estimate_offline",
    "scale_sample_self_join",
    "JoinSignatureFamily",
    "TugOfWarJoinSignature",
    "SampleJoinSignature",
    "sample_join_estimate",
    "MultiJoinFamily",
    "MultiJoinSignature",
    "FrequencyMomentTracker",
    "FkMomentSketch",
    "DistinctCountSketch",
    "UnsupportedMomentError",
    "exact_moment",
    "fk_estimate_offline",
    "fk_sample_size_bound",
    "median_of_means",
    "mean_estimate",
    "median_estimate",
    "split_parameters",
    "theoretical_relative_error",
    "theoretical_confidence",
]
