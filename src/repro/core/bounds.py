"""Analytic facts, bounds, and the Section 4.4 comparison formulas.

Every closed-form statement in the paper is implemented here so the
test suite can check it against exact computation and the benchmark
harness can print the paper's analytic tables:

* Fact 1.1  — join size <= (SJ(R1) + SJ(R2)) / 2.
* Fact 1.2  — the self-join size of an exponential distribution
  determines its parameter: ``a = (n^2 + SJ) / (n^2 - SJ)``.
* Theorem 2.1 — sample-count error bound ``4 t^{1/4} / sqrt(s1)``.
* Theorem 2.2 — tug-of-war error bound ``4 / sqrt(s1)``.
* Lemma 2.3  — naive-sampling needs Omega(sqrt n) samples.
* Lemma 4.2  — sample join signatures need ~ c n^2 / B words.
* Lemma 4.4  — k-TW join-estimate standard error sqrt(2 SJ(F) SJ(G) / k).
* Theorem 4.3 — any signature scheme needs >= (n - sqrt(B))^2 / B bits.
* Theorem 4.5 — k-TW needs k = c SJ(F) SJ(G) / B1^2 words.
* Section 4.4 — k-TW beats sampling iff C < n sqrt(B); the B threshold
  is ``C^2 / n^3`` (as a multiple of n) and the advantage at a given B
  is ``(n^2/B) / (C^2/B^2) = n^2 B / C^2``.
"""

from __future__ import annotations

import math

__all__ = [
    "join_size_upper_bound",
    "exponential_parameter_from_sj",
    "exponential_sj",
    "sample_count_error_bound",
    "tug_of_war_error_bound",
    "success_probability",
    "naive_sampling_required_size",
    "sample_signature_words",
    "ktw_join_error_bound",
    "signature_lower_bound_bits",
    "ktw_signature_words",
    "ktw_beats_sampling",
    "ktw_break_even_sanity_bound",
    "ktw_advantage",
]


def join_size_upper_bound(sj_left: float, sj_right: float) -> float:
    """Fact 1.1: |R1 join R2| <= (SJ(R1) + SJ(R2)) / 2.

    Follows from the arithmetic-geometric mean inequality applied
    frequency-wise; lets self-join trackers bound any pairwise join.
    """
    if sj_left < 0 or sj_right < 0:
        raise ValueError("self-join sizes must be non-negative")
    return (sj_left + sj_right) / 2.0


def exponential_sj(n: int, a: float) -> float:
    """Self-join size of an exponential distribution (Fact 1.2 forward).

    For frequencies ``f_i = n (a - 1) a^{-i}``, i = 1, 2, ...:
    ``SJ = n^2 (a - 1) / (a + 1)``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if a <= 1.0:
        raise ValueError(f"exponential parameter must exceed 1, got {a}")
    return n * n * (a - 1.0) / (a + 1.0)


def exponential_parameter_from_sj(n: int, sj: float) -> float:
    """Fact 1.2: a = (n^2 + SJ) / (n^2 - SJ).

    The inverse of :func:`exponential_sj`; demonstrates that SJ alone
    pins down the distribution parameter.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    n2 = float(n) * float(n)
    if not 0.0 < sj < n2:
        raise ValueError(f"SJ must lie strictly between 0 and n^2 = {n2}, got {sj}")
    return (n2 + sj) / (n2 - sj)


def sample_count_error_bound(s1: int, domain_size: int) -> float:
    """Theorem 2.1 relative-error bound: 4 t^{1/4} / sqrt(s1)."""
    if s1 < 1:
        raise ValueError(f"s1 must be >= 1, got {s1}")
    if domain_size < 1:
        raise ValueError(f"domain size must be >= 1, got {domain_size}")
    return 4.0 * domain_size**0.25 / math.sqrt(s1)


def tug_of_war_error_bound(s1: int) -> float:
    """Theorem 2.2 relative-error bound: 4 / sqrt(s1)."""
    if s1 < 1:
        raise ValueError(f"s1 must be >= 1, got {s1}")
    return 4.0 / math.sqrt(s1)


def success_probability(s2: int) -> float:
    """Both theorems' confidence: 1 - 2^{-s2/2}."""
    if s2 < 1:
        raise ValueError(f"s2 must be >= 1, got {s2}")
    return 1.0 - 2.0 ** (-s2 / 2.0)


def naive_sampling_required_size(n: int, constant: float = 1.0) -> float:
    """Lemma 2.3: Omega(sqrt n) samples to avoid a factor-2 error."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return constant * math.sqrt(n)


def sample_signature_words(n: int, sanity_bound: float, c: float = 3.0) -> float:
    """Lemma 4.2: sample join signatures need >= c n^2 / B words.

    ``c > 3`` is determined by the desired accuracy and confidence; the
    derivation in the text shows p >= 3 a n / |F join G| suffices for a
    Chebyshev constant a.
    """
    _check_sanity_bound(n, sanity_bound)
    return c * n * n / sanity_bound


def ktw_join_error_bound(sj_left: float, sj_right: float, k: int) -> float:
    """Lemma 4.4 standard error: sqrt(2 SJ(F) SJ(G) / k).

    ``Var[S(F) S(G)] <= 2 SJ(F) SJ(G)`` per counter pair, so the mean
    of k products estimates ``|F join G|`` within this one-sigma
    error.  The one shared formula behind every error-bound surface in
    the system — catalog ``join_error_bound``, windowed estimates, and
    the planner's bound-aware (pessimistic) costing policy.
    """
    if sj_left < 0 or sj_right < 0:
        raise ValueError("self-join sizes must be non-negative")
    if k < 1:
        raise ValueError(f"signature size k must be >= 1, got {k}")
    return math.sqrt(2.0 * sj_left * sj_right / k)


def signature_lower_bound_bits(n: int, sanity_bound: float) -> float:
    """Theorem 4.3: any signature scheme stores >= (n - sqrt(B))^2 / B bits."""
    _check_sanity_bound(n, sanity_bound)
    m = n - math.sqrt(sanity_bound)
    return (m * m) / sanity_bound


def ktw_signature_words(
    sj_left: float, sj_right: float, join_lower_bound: float, c: float = 2.0
) -> float:
    """Theorem 4.5: k = c SJ(F) SJ(G) / B1^2 words per relation."""
    if sj_left < 0 or sj_right < 0:
        raise ValueError("self-join sizes must be non-negative")
    if join_lower_bound <= 0:
        raise ValueError(f"join lower bound must be positive, got {join_lower_bound}")
    return c * sj_left * sj_right / (join_lower_bound * join_lower_bound)


def ktw_beats_sampling(n: int, sj_upper_bound: float, sanity_bound: float) -> bool:
    """Section 4.4 crossover: k-TW wins iff C < n sqrt(B).

    Compares the storage needs ignoring constants:
    k-TW needs C^2/B^2 words, sampling needs n^2/B.
    """
    _check_sanity_bound(n, sanity_bound)
    if sj_upper_bound < 0:
        raise ValueError("self-join upper bound must be non-negative")
    return sj_upper_bound < n * math.sqrt(sanity_bound)


def ktw_break_even_sanity_bound(n: int, sj: float) -> float:
    """The smallest B (as a multiple of n) at which k-TW starts winning.

    From C < n sqrt(B):  B > C^2 / n^2, i.e. B/n > C^2 / n^3.  Returns
    ``C^2 / n^3`` — the "B needs to be larger than n by roughly a
    factor of ..." numbers of Section 4.4 (about 6700 for selfsimilar,
    4000 for zipf1.5, 500 for poisson, 150 for zipf1.0, 50 for brown2,
    1-10 for the rest).  Values <= 1 mean k-TW already wins at B = n.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if sj < 0:
        raise ValueError("self-join size must be non-negative")
    return (sj * sj) / (float(n) ** 3)


def ktw_advantage(n: int, sj: float, sanity_bound: float) -> float:
    """Storage advantage of k-TW over sampling at sanity bound B.

    ``(n^2 / B) / (C^2 / B^2) = n^2 B / C^2`` — the "advantage is about
    1000, 20, and 150" numbers (uniform, mf3, path at B = n).  Values
    below 1 mean sampling wins.
    """
    _check_sanity_bound(n, sanity_bound)
    if sj <= 0:
        raise ValueError(f"self-join size must be positive, got {sj}")
    return (float(n) ** 2) * sanity_bound / (sj * sj)


def _check_sanity_bound(n: int, sanity_bound: float) -> None:
    if n <= 0:
        raise ValueError(f"relation size n must be positive, got {n}")
    if sanity_bound < n or sanity_bound > n * n / 2:
        raise ValueError(
            f"sanity bound must satisfy n <= B <= n^2/2, got B={sanity_bound} for n={n}"
        )
