"""A *mergeable*, deletion-safe F_0 (distinct count) sketch.

[AMS99] observes that F_0 admits small-space estimation; this module
provides the variant that fits the repo's systems layers: *linear
counting* over integer occupancy counters ([Whang et al. 1990]'s
estimator made retraction-safe).  Each of ``s2`` repetitions hashes
every value into one of ``s1`` buckets with an independent family and
maintains the integer counter ``C[b] = sum_{v: h(v)=b} f_v``.

Because the counters hold *net frequencies* rather than sticky bits,
the sketch survives deletions exactly: under strict-turnstile streams
(net ``f_v >= 0`` for every value, the same contract the windowed
store's signed ingest enforces), ``C[b] == 0`` if and only if no live
value hashes to b.  Each repetition reports the linear-counting
estimate ``-s1 * ln(z / s1)`` from its zero-bucket count ``z``
(capped at ``z = 1`` when saturated), and the final answer is the
median across repetitions.

The state is an integer linear map of the frequency vector, so merge
is element-wise counter addition — bit-identical to the monolithic
build — and the sketch inherits windowing, compaction, and cluster
scatter–gather for free.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..engine.protocol import Sketch, as_histogram
from ..engine.registry import register_sketch
from .estimators import group_shape_for
from .hashing import PolynomialHashFamily

__all__ = ["DistinctCountSketch"]

#: Chunk width for batch updates (see the tug-of-war sketch).
_BATCH_CHUNK = 4096


@register_sketch
class DistinctCountSketch(Sketch):
    """Tracks the number of distinct live values (F_0) under updates.

    Parameters
    ----------
    s1:
        Occupancy buckets per repetition; controls accuracy (the load
        factor ``F_0 / s1`` drives the linear-counting error, so size
        s1 to a small multiple of the expected distinct count).
    s2:
        Independent repetitions medianed; controls confidence.
    seed:
        Seed for the bucket hash families.  Sketches that must be
        merged **must** share a seed (checked at merge time).

    Examples
    --------
    >>> sk = DistinctCountSketch(s1=64, s2=5, seed=7)
    >>> for v in [1, 2, 2, 3, 3, 3]:
    ...     sk.insert(v)
    >>> sk.delete(3)
    >>> est = sk.estimate()   # true F_0 is still 3 (net f_3 = 2)
    """

    kind = "f0"
    is_linear = True  # occupancy counters are a linear map of frequencies
    describe = (
        "deletion-safe linear-counting sketch for the distinct count "
        "F_0; mergeable under strict-turnstile streams"
    )

    __slots__ = ("s1", "s2", "_buckets", "_c", "_n")

    def __init__(self, s1: int = 256, s2: int = 1, seed: int | None = None):
        self.s1, self.s2 = group_shape_for(s1, s2)
        self._buckets = PolynomialHashFamily(self.s2, independence=4, seed=seed)
        self._c = np.zeros((self.s2, self.s1), dtype=np.int64)
        self._n = 0

    # ------------------------------------------------------------------
    # Updates (O(s2) per operation)
    # ------------------------------------------------------------------
    def insert(self, value: int) -> None:
        """Process insert(v): bump v's occupancy bucket in every rep."""
        self.update(value, 1)

    def delete(self, value: int) -> None:
        """Process delete(v): exact inverse of :meth:`insert`.

        Correctness of the zero-bucket test needs the stream to stay
        strict-turnstile (net frequency of every value >= 0); like the
        other linear sketches this is the caller's contract and only
        the aggregate size is guarded here.
        """
        if self._n <= 0:
            raise ValueError("cannot delete from an empty multiset")
        self.update(value, -1)

    def update(self, value: int, count: int) -> None:
        """Fold ``count`` occurrences of ``value`` in at once."""
        c = int(count)
        if c == 0:
            return
        if self._n + c < 0:
            raise ValueError(
                f"deleting {-c} occurrences would make the multiset size negative"
            )
        buckets = (self._buckets.hash_one(value) % self.s1).astype(np.intp)
        self._c[np.arange(self.s2), buckets] += np.int64(c)
        self._n += c

    def update_from_frequencies(
        self, values: np.ndarray | Iterable[int], counts: np.ndarray | Iterable[int]
    ) -> None:
        """Fold a whole (possibly signed) frequency histogram in.

        Vectorised via ``np.add.at`` scatter-adds per repetition;
        integer addition commutes, so the result is bit-identical to
        the equivalent sequence of :meth:`update` calls.
        """
        vals, cnts = as_histogram(values, counts)
        total = int(cnts.sum())
        if self._n + total < 0:
            raise ValueError("batch would make the multiset size negative")
        for start in range(0, vals.size, _BATCH_CHUNK):
            chunk_vals = vals[start : start + _BATCH_CHUNK]
            chunk_cnts = cnts[start : start + _BATCH_CHUNK]
            buckets = self._buckets.hash_many(chunk_vals) % self.s1  # (s2, m)
            for rep in range(self.s2):
                np.add.at(self._c[rep], buckets[rep].astype(np.intp), chunk_cnts)
        self._n += total

    def update_from_stream(self, values: np.ndarray | Iterable[int]) -> None:
        """Fold an insertion-only stream in via its histogram."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.size == 0:
            return
        uniq, counts = np.unique(arr, return_counts=True)
        self.update_from_frequencies(uniq, counts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def basic_estimators(self) -> np.ndarray:
        """Per-repetition linear-counting estimates (length s2)."""
        zeros = (self._c == 0).sum(axis=1).astype(np.float64)
        zeros = np.maximum(zeros, 1.0)  # saturated reps cap at z = 1
        return -float(self.s1) * np.log(zeros / float(self.s1))

    def estimate(self) -> float:
        """Median across repetitions of the linear-counting estimate."""
        if self._n == 0:
            return 0.0
        return float(np.median(self.basic_estimators()))

    def saturation(self) -> float:
        """Worst-repetition bucket occupancy ``1 - z/s1`` in [0, 1].

        Near 1.0 the estimate degrades (the zero count underflows);
        callers sizing s1 can watch this.
        """
        zeros = (self._c == 0).sum(axis=1)
        return float(1.0 - zeros.min() / self.s1)

    def error_bound(self) -> float:
        """Standard-error heuristic for linear counting at the current load.

        From [Whang et al. 1990]: StdErr(n_hat)/n ~
        sqrt(s1) * (e^t - t - 1)^0.5 / (t * s1) with t = n/s1.  A
        guidance number, not a worst-case guarantee.
        """
        if self._n == 0:
            return 0.0
        t = max(self.estimate(), 1.0) / float(self.s1)
        return math.sqrt(self.s1 * max(math.expm1(t) - t, 0.0)) / (t * self.s1)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def merge(self, other: "DistinctCountSketch") -> "DistinctCountSketch":
        """Return the sketch of the union of the two underlying multisets.

        Requires identical shape *and* identical hash families (same
        seed); the occupancy counters are then simply additive.
        """
        self._check_compatible(other)
        merged = self.copy()
        merged._c = self._c + other._c
        merged._n = self._n + other._n
        return merged

    def _check_compatible(self, other: "DistinctCountSketch") -> None:
        if not isinstance(other, DistinctCountSketch):
            raise TypeError(
                f"expected DistinctCountSketch, got {type(other).__name__}"
            )
        if (self.s1, self.s2) != (other.s1, other.s2):
            raise ValueError(
                f"shape mismatch: ({self.s1},{self.s2}) vs ({other.s1},{other.s2})"
            )
        if self._buckets != other._buckets:
            raise ValueError(
                "sketches use different hash families; build both with the same seed"
            )

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Current multiset size (inserts minus deletes)."""
        return self._n

    @property
    def memory_words(self) -> int:
        """Storage in the memory-word model: s2 reps of s1 counters."""
        return self.s1 * self.s2

    @property
    def counters(self) -> np.ndarray:
        """Read-only view of the raw (s2, s1) occupancy counters."""
        view = self._c.view()
        view.flags.writeable = False
        return view

    def copy(self) -> "DistinctCountSketch":
        """Independent deep copy sharing the same (immutable) hashes."""
        dup = DistinctCountSketch.__new__(DistinctCountSketch)
        dup.s1, dup.s2 = self.s1, self.s2
        dup._buckets = self._buckets  # immutable after construction
        dup._c = self._c.copy()
        dup._n = self._n
        return dup

    def to_dict(self) -> dict:
        """Serialise the full sketch state to plain Python types."""
        return {
            "kind": self.kind,
            "s1": self.s1,
            "s2": self.s2,
            "n": self._n,
            "counters": self._c.tolist(),
            "buckets": self._buckets.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DistinctCountSketch":
        """Reconstruct a sketch from :meth:`to_dict` output."""
        if payload.get("kind") != "f0":
            raise ValueError(
                f"not a DistinctCountSketch payload: {payload.get('kind')!r}"
            )
        sketch = cls.__new__(cls)
        sketch.s1 = int(payload["s1"])
        sketch.s2 = int(payload["s2"])
        sketch._n = int(payload["n"])
        sketch._c = np.asarray(payload["counters"], dtype=np.int64)
        if sketch._c.shape != (sketch.s2, sketch.s1):
            raise ValueError(
                f"counter matrix has shape {sketch._c.shape}, "
                f"expected ({sketch.s2}, {sketch.s1})"
            )
        sketch._buckets = PolynomialHashFamily.from_dict(payload["buckets"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistinctCountSketch(s1={self.s1}, s2={self.s2}, n={self._n}, "
            f"words={self.memory_words})"
        )
