"""General frequency moments F_k (the [AMS99] machinery behind Section 2).

The self-join size is the second frequency moment F2 of the stream; the
sample-count estimator is the k = 2 case of the general [AMS99]
estimator

    X = n * (r^k - (r - 1)^k),

where r counts the occurrences of a uniformly sampled element at or
after its sampled position: E[X] = F_k = sum_v f_v^k for every k >= 1.
Since the paper's sample-count tracker maintains exactly the (position,
r)-sample needed, generalising it to arbitrary moments is free — this
module does that, providing:

* :func:`exact_moment` — ground-truth F_k (F0 = distinct count,
  F1 = length, F_inf = max frequency via ``k=None``);
* :func:`fk_estimate_offline` — the vectorised known-n estimator for
  any k >= 1 (k = 2 reproduces
  :func:`repro.core.samplecount.sample_count_estimate_offline` exactly);
* :class:`FrequencyMomentTracker` — the Figure 1 tracker with a
  ``moment_estimate(k)`` query, inheriting O(1) amortised updates and
  deletion handling unchanged (the sample structure is
  moment-agnostic; only the query-time map r -> X changes).

[AMS99] shows this needs s1 = O(k t^(1-1/k) / eps^2) basic estimators
for relative error eps; :func:`fk_sample_size_bound` exposes that bound
(it specialises to Theorem 2.1's Theta(sqrt t) for k = 2).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..engine.registry import register_sketch
from .estimators import group_shape_for, median_of_means
from .samplecount import SampleCountSketch

__all__ = [
    "exact_moment",
    "fk_estimate_offline",
    "fk_sample_size_bound",
    "FrequencyMomentTracker",
    "UnsupportedMomentError",
]


class UnsupportedMomentError(ValueError):
    """A moment order k the queried sketch cannot answer.

    Raised for invalid orders (k < 1) and for orders outside what the
    sketch's structure supports (a roots-of-unity F_k sketch is built
    for one fixed k).  Subclasses ``ValueError`` so every existing
    handler — the service surface's error table, the CLI's exit-2
    contract — keeps working unchanged.
    """


def exact_moment(values: Iterable[int] | np.ndarray, k: int | None) -> float:
    """Exact frequency moment F_k of a stream.

    ``k = 0`` counts distinct values, ``k = 1`` the stream length,
    ``k = 2`` the self-join size; ``k = None`` returns F_infinity (the
    maximum frequency).
    """
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        return 0.0
    _, counts = np.unique(arr, return_counts=True)
    if k is None:
        return float(counts.max())
    if k < 0:
        raise ValueError(f"moment order must be >= 0 or None, got {k}")
    if k == 0:
        return float(counts.size)
    return float(np.sum(counts.astype(np.float64) ** k))


def fk_sample_size_bound(k: int, domain_size: int, epsilon: float) -> float:
    """The [AMS99] upper bound on s1 for F_k: ~ k t^(1-1/k) / eps^2.

    For k = 2 this is the Theta(sqrt t) of Theorem 2.1 (up to the
    constant); exposed so experiments can size their samples the way
    the theory prescribes.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if domain_size < 1:
        raise ValueError(f"domain size must be >= 1, got {domain_size}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return k * domain_size ** (1.0 - 1.0 / k) / (epsilon * epsilon)


def fk_estimate_offline(
    values: np.ndarray | Iterable[int],
    k: int,
    s1: int,
    s2: int = 1,
    rng: np.random.Generator | int | None = None,
) -> float:
    """[AMS99] F_k estimate for a full in-memory stream.

    Draws s1*s2 uniform positions, computes each r (occurrences of the
    sampled value at or after the position), maps through
    ``X = n (r^k - (r-1)^k)``, and combines by median-of-means.
    """
    if k < 1:
        raise ValueError(f"moment order k must be >= 1, got {k}")
    s1, s2 = group_shape_for(s1, s2)
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
    n = arr.size
    if n == 0:
        return 0.0

    positions = gen.integers(0, n, size=s1 * s2)
    order = np.argsort(arr, kind="stable")
    sorted_vals = arr[order]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    if n > 1:
        is_start[1:] = sorted_vals[1:] != sorted_vals[:-1]
    group_id = np.cumsum(is_start) - 1
    group_start = np.flatnonzero(is_start)
    within = np.arange(n) - group_start[group_id]
    sizes = np.diff(np.append(group_start, n))
    before = np.empty(n, dtype=np.int64)
    before[order] = within
    freq = np.empty(n, dtype=np.int64)
    freq[order] = sizes[group_id]

    r = (freq[positions] - before[positions]).astype(np.float64)
    x = float(n) * (r**k - (r - 1.0) ** k)
    return median_of_means(x.reshape(s2, s1))


@register_sketch
class FrequencyMomentTracker(SampleCountSketch):
    """The Figure 1 tracker queried for arbitrary moments F_k.

    Inherits the complete sample-count machinery (reservoir skipping,
    S_v lists, N_v counters, deletion eviction, O(1) amortised
    updates); only the query changes: each in-sample slot contributes
    ``X = n (r^k - (r-1)^k)``.  ``estimate()`` remains the F2 query, so
    the tracker is a drop-in SampleCountSketch that can additionally
    answer, e.g., F3 (a skewness measure) or F4 from the same sample.
    """

    kind = "moments"
    describe = (
        "sample-count tracker queried for arbitrary F_k "
        "(position-sampled; insert/delete, not mergeable)"
    )

    def moment_basic_estimators(self, k: int) -> np.ndarray:
        """Per-slot F_k basic estimators; NaN for slots not in the sample."""
        if k < 1:
            raise UnsupportedMomentError(
                f"moment order k must be >= 1, got {k}"
            )
        x = np.full(self.s, np.nan, dtype=np.float64)
        n = float(self.n)
        for v, count in self._nv.items():
            i = self._head.get(v, -1)
            while i != -1:
                r = float(count - int(self._entry[i]))
                x[i] = n * (r**k - (r - 1.0) ** k)
                i = int(self._next[i])
        return x

    def moment_estimate(self, k: int) -> float:
        """Median-of-means F_k estimate from the current sample.

        Falls back to the minimum possible value (n, since every
        f_v >= 1 implies F_k >= n for k >= 1) when the sample is empty;
        0 for an empty multiset.
        """
        if self.n == 0:
            return 0.0
        x = self.moment_basic_estimators(k).reshape(self.s2, self.s1)
        mask = ~np.isnan(x)
        members = mask.sum(axis=1)
        valid = members > 0
        if not valid.any():
            return float(self.n)
        sums = np.where(mask, x, 0.0).sum(axis=1)
        return float(np.median(sums[valid] / members[valid]))
