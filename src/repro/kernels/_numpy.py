"""The numpy reference kernels — the bit-identity oracle.

These are the canonical definitions of every fused kernel: pure
integer numpy, no compiled code, importable everywhere.  The compiled
backends (:mod:`._numba`, :mod:`._cffi`) must reproduce these outputs
**exactly** — every operation below is exact uint64/int64 arithmetic
(products stay under 2^62 inside the field fold; the splitmix mix
wraps mod 2^64 identically in numpy, numba, and C) — which the
property suite asserts for every registered linear sketch kind.

Inputs arrive pre-validated from :mod:`.dispatch`: C-contiguous
arrays, values already checked into [0, 2^31 - 1).
"""

from __future__ import annotations

import numpy as np

_P = np.uint64((1 << 31) - 1)
_SHIFT = np.uint64(31)
_ONE = np.uint64(1)


def polynomial_fold(coeffs: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Horner-evaluate every row polynomial at every value, mod p.

    ``coeffs`` is ``(s, d)`` uint64 with entries in [0, p); ``values``
    is ``(m,)`` uint64 in [0, p).  Returns ``(s, m)`` uint64 in
    [0, p).  The Mersenne reduction is the divisionless shift-fold:
    two lazy folds bound the accumulator by p + 1 (small enough for
    the next Horner product to stay below 2^62), one final conditional
    subtract lands in [0, p).
    """
    s = coeffs.shape[0]
    acc = np.empty((s, values.size), dtype=np.uint64)
    np.copyto(acc, coeffs[:, 0:1])  # in-place broadcast fill, no copy()
    x = values[np.newaxis, :]
    tmp = np.empty_like(acc)  # one scratch, reused across Horner steps
    for d in range(1, coeffs.shape[1]):
        acc *= x
        acc += coeffs[:, d : d + 1]
        np.right_shift(acc, _SHIFT, out=tmp)
        acc &= _P
        acc += tmp
        np.right_shift(acc, _SHIFT, out=tmp)
        acc &= _P
        acc += tmp
    np.subtract(acc, _P, out=acc, where=acc >= _P)
    return acc


def _fold_one(coeffs: np.ndarray, value: int) -> np.ndarray:
    """Horner-evaluate every row polynomial at one value: (s,) uint64."""
    x = np.uint64(value)
    acc = coeffs[:, 0].copy()
    for d in range(1, coeffs.shape[1]):
        y = acc * x + coeffs[:, d]
        y = (y >> _SHIFT) + (y & _P)
        y = (y >> _SHIFT) + (y & _P)
        acc = np.where(y >= _P, y - _P, y)
    return acc


def tugofwar_scatter(
    coeffs: np.ndarray, values: np.ndarray, counts: np.ndarray, z: np.ndarray
) -> None:
    """``z[i] += sum_j sign(h_i(v_j)) * c_j`` via one sign-matrix product."""
    acc = polynomial_fold(coeffs, values)
    signs = ((acc & _ONE).astype(np.int64) << 1) - 1  # lsb -> {-1, +1}
    z += signs @ counts


def tugofwar_update_one(
    coeffs: np.ndarray, value: int, count: int, z: np.ndarray
) -> None:
    """Scalar update with the sign-apply fused into the counter add."""
    bits = (_fold_one(coeffs, value) & _ONE).astype(np.int64)
    z += np.int64(count) * ((bits << 1) - 1)


def fk_scatter(
    coeffs: np.ndarray,
    values: np.ndarray,
    counts: np.ndarray,
    counters: np.ndarray,
    k: int,
) -> None:
    """``counters[i, h_i(v_j) % k] += c_j`` via per-digit masked sums."""
    digits = polynomial_fold(coeffs, values) % k
    for d in range(k):
        counters[:, d] += ((digits == d) * counts).sum(axis=1)


def fk_update_one(
    coeffs: np.ndarray,
    value: int,
    count: int,
    counters: np.ndarray,
    k: int,
) -> None:
    """Scalar F_k update: bump the hashed digit column of every slot."""
    digits = (_fold_one(coeffs, value) % np.uint64(k)).astype(np.intp)
    counters[np.arange(counters.shape[0]), digits] += np.int64(count)


_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)


def splitmix64(values: np.ndarray, seed_term: np.uint64) -> np.ndarray:
    """splitmix64 finalizer over ``v + seed_term``; wraps mod 2^64."""
    with np.errstate(over="ignore"):  # wraparound is the point
        z = values + seed_term
        z = (z ^ (z >> np.uint64(30))) * _M1
        z = (z ^ (z >> np.uint64(27))) * _M2
        return z ^ (z >> np.uint64(31))


def shard_assign(
    values: np.ndarray, seed_term: np.uint64, num_shards: int
) -> np.ndarray:
    """``splitmix64(v) % num_shards`` as int64 shard indices."""
    return (splitmix64(values, seed_term) % np.uint64(num_shards)).astype(
        np.int64
    )
