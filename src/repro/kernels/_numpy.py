"""The numpy reference kernels — the bit-identity oracle.

These are the canonical definitions of every fused kernel: pure
integer numpy, no compiled code, importable everywhere.  The compiled
backends (:mod:`._numba`, :mod:`._cffi`) must reproduce these outputs
**exactly** — every operation below is exact uint64/int64 arithmetic
(products stay under 2^62 inside the field fold; the splitmix mix
wraps mod 2^64 identically in numpy, numba, and C) — which the
property suite asserts for every registered linear sketch kind.

Inputs arrive pre-validated from :mod:`.dispatch`: C-contiguous
arrays, values already checked into [0, 2^31 - 1).
"""

from __future__ import annotations

import numpy as np

_P = np.uint64((1 << 31) - 1)
_SHIFT = np.uint64(31)
_ONE = np.uint64(1)


def polynomial_fold(coeffs: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Horner-evaluate every row polynomial at every value, mod p.

    ``coeffs`` is ``(s, d)`` uint64 with entries in [0, p); ``values``
    is ``(m,)`` uint64 in [0, p).  Returns ``(s, m)`` uint64 in
    [0, p).  The Mersenne reduction is the divisionless shift-fold:
    two lazy folds bound the accumulator by p + 1 (small enough for
    the next Horner product to stay below 2^62), one final conditional
    subtract lands in [0, p).
    """
    s = coeffs.shape[0]
    acc = np.empty((s, values.size), dtype=np.uint64)
    np.copyto(acc, coeffs[:, 0:1])  # in-place broadcast fill, no copy()
    x = values[np.newaxis, :]
    tmp = np.empty_like(acc)  # one scratch, reused across Horner steps
    for d in range(1, coeffs.shape[1]):
        acc *= x
        acc += coeffs[:, d : d + 1]
        np.right_shift(acc, _SHIFT, out=tmp)
        acc &= _P
        acc += tmp
        np.right_shift(acc, _SHIFT, out=tmp)
        acc &= _P
        acc += tmp
    np.subtract(acc, _P, out=acc, where=acc >= _P)
    return acc


def _fold_one(coeffs: np.ndarray, value: int) -> np.ndarray:
    """Horner-evaluate every row polynomial at one value: (s,) uint64."""
    x = np.uint64(value)
    acc = coeffs[:, 0].copy()
    for d in range(1, coeffs.shape[1]):
        y = acc * x + coeffs[:, d]
        y = (y >> _SHIFT) + (y & _P)
        y = (y >> _SHIFT) + (y & _P)
        acc = np.where(y >= _P, y - _P, y)
    return acc


def tugofwar_scatter(
    coeffs: np.ndarray, values: np.ndarray, counts: np.ndarray, z: np.ndarray
) -> None:
    """``z[i] += sum_j sign(h_i(v_j)) * c_j`` via one sign-matrix product."""
    acc = polynomial_fold(coeffs, values)
    signs = ((acc & _ONE).astype(np.int64) << 1) - 1  # lsb -> {-1, +1}
    z += signs @ counts


def tugofwar_update_one(
    coeffs: np.ndarray, value: int, count: int, z: np.ndarray
) -> None:
    """Scalar update with the sign-apply fused into the counter add."""
    bits = (_fold_one(coeffs, value) & _ONE).astype(np.int64)
    z += np.int64(count) * ((bits << 1) - 1)


def fk_scatter(
    coeffs: np.ndarray,
    values: np.ndarray,
    counts: np.ndarray,
    counters: np.ndarray,
    k: int,
) -> None:
    """``counters[i, h_i(v_j) % k] += c_j`` via per-digit masked sums."""
    digits = polynomial_fold(coeffs, values) % k
    for d in range(k):
        counters[:, d] += ((digits == d) * counts).sum(axis=1)


def fk_update_one(
    coeffs: np.ndarray,
    value: int,
    count: int,
    counters: np.ndarray,
    k: int,
) -> None:
    """Scalar F_k update: bump the hashed digit column of every slot."""
    digits = (_fold_one(coeffs, value) % np.uint64(k)).astype(np.intp)
    counters[np.arange(counters.shape[0]), digits] += np.int64(count)


_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)


def splitmix64(values: np.ndarray, seed_term: np.uint64) -> np.ndarray:
    """splitmix64 finalizer over ``v + seed_term``; wraps mod 2^64."""
    with np.errstate(over="ignore"):  # wraparound is the point
        z = values + seed_term
        z = (z ^ (z >> np.uint64(30))) * _M1
        z = (z ^ (z >> np.uint64(27))) * _M2
        return z ^ (z >> np.uint64(31))


def shard_assign(
    values: np.ndarray, seed_term: np.uint64, num_shards: int
) -> np.ndarray:
    """``splitmix64(v) % num_shards`` as int64 shard indices."""
    return (splitmix64(values, seed_term) % np.uint64(num_shards)).astype(
        np.int64
    )


# ----------------------------------------------------------------------
# Counter-based sampler RNG
# ----------------------------------------------------------------------
_G1 = np.uint64(0x9E3779B97F4A7C15)
_G2 = np.uint64(0xD1B54A32D192ED03)
_S11 = np.uint64(11)
_U1 = np.uint64(1)
_INV53 = 2.0**-53
_MASK64 = (1 << 64) - 1


def _mix_arr(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wraps mod 2^64)."""
    z = (z ^ (z >> np.uint64(30))) * _M1
    z = (z ^ (z >> np.uint64(27))) * _M2
    return z ^ (z >> np.uint64(31))


def counter_u64(
    key: np.uint64, positions: np.ndarray, draws: np.ndarray
) -> np.ndarray:
    """Vectorised counter draws: ``mix(mix(key + j*G1) + i*G2)``."""
    with np.errstate(over="ignore"):  # wraparound is the point
        h = _mix_arr(positions * _G1 + key)
        return _mix_arr(h + draws * _G2)


def counter_u01(
    key: np.uint64, positions: np.ndarray, draws: np.ndarray
) -> np.ndarray:
    """Counter draws mapped into (0, 1]: exact float64 everywhere."""
    u = counter_u64(key, positions, draws)
    return ((u >> _S11) + _U1).astype(np.float64) * _INV53


def _mix_one(z: int) -> int:
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _reservoir_gap(pos: int, k: int, u: float) -> int:
    """Smallest gap g with ``P(G > g) <= u`` via galloping cumprod.

    The survival product is evaluated in the same sequential order as
    the compiled backends' scalar loop — ``np.cumprod`` is a strictly
    sequential reduction and each ``(x - k) / x`` term is an exactly
    rounded double op on exactly representable integers — so the
    returned gap is bit-identical to the C/numba search.
    """
    survive = 1.0
    g0 = 0
    # Start the gallop a bit past the expected gap ~ pos/k (~70% of
    # draws resolve in one cumprod; the rest double up) — this sizing
    # minimises total touched elements, and chunking never changes the
    # result (the sequential multiply order is identical at any chunk
    # size, and a leading 1.0 factor is exact, so the first chunk can
    # skip the carried-survive prepend entirely).
    chunk = min(max(32, (5 * pos) // (4 * max(k, 1))), 1 << 16)
    kd = float(k)
    first = True
    while True:
        xs = np.arange(pos + g0 + 1, pos + g0 + 1 + chunk, dtype=np.float64)
        ratios = (xs - kd) / xs
        if first:
            cp = np.cumprod(ratios)
            first = False
        else:
            cp = np.cumprod(np.concatenate(([survive], ratios)))[1:]
        if cp[-1] <= u:
            return g0 + int(np.argmax(cp <= u))
        survive = float(cp[-1])
        g0 += chunk
        chunk = min(chunk * 2, 1 << 16)


def reservoir_chain(
    key: np.uint64, k: int, offered: int, skip: int, m: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Reference acceptance chain: Python skip jumps, vectorised gaps.

    Never touches individual rejected offers — each iteration jumps
    straight to the next accepted batch offset, so the cost is
    O(accepts), not O(m).  Survival ratios ``(x - k) / x`` are
    precomputed in large blocks shared by consecutive gap searches
    (positions only move forward), so each accept costs one cumprod
    over a cached slice plus one searchsorted on the monotone product
    — the ratio values and the sequential multiply order are identical
    to :func:`_reservoir_gap`, so the gaps are bit-identical.
    """
    key_i = int(key)
    accepts: list[int] = []
    positions: list[int] = []
    idx = 0
    pos = offered
    kd = float(k)
    blk = np.empty(0, dtype=np.float64)
    blk_lo = 0
    blk_len = 1 << 17

    def ratios(x0: int, count: int) -> np.ndarray:
        nonlocal blk, blk_lo
        if x0 < blk_lo or x0 + count > blk_lo + blk.size:
            xs = np.arange(x0, x0 + max(count, blk_len), dtype=np.float64)
            blk = (xs - kd) / xs
            blk_lo = x0
        off = x0 - blk_lo
        return blk[off : off + count]

    mask = _MASK64
    while True:
        remaining = m - idx
        if skip >= remaining:
            skip -= remaining
            break
        idx += skip
        pos += skip + 1
        accepts.append(idx)
        positions.append(pos)
        # _mix_one(key + pos*G1) then _mix_one(h + G2), inlined: the
        # chain runs once per accept, and the call overhead is the
        # dominant per-accept cost at typical reservoir sizes.
        z = (key_i + pos * 0x9E3779B97F4A7C15) & mask
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
        z = ((z ^ (z >> 31)) + 0xD1B54A32D192ED03) & mask
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
        z ^= z >> 31
        u = float((z >> 11) + 1) * _INV53
        # Inline galloping gap search over the cached ratio blocks.
        # With ratios precomputed, touched elements are nearly free, so
        # the first chunk starts well past the expected gap ~ pos/k and
        # ~98% of draws finish in a single cumprod call.
        survive = 1.0
        g0 = 0
        chunk = min(max(32, 4 * (pos // k)), 1 << 16)
        first = True
        while True:
            r = ratios(pos + g0 + 1, chunk)
            # np.multiply.accumulate is cumprod without the dispatch
            # wrapper — same ufunc, same sequential rounding.
            if first:
                cp = np.multiply.accumulate(r)
                first = False
            else:
                cp = np.multiply.accumulate(
                    np.concatenate(([survive], r))
                )[1:]
            if cp[-1] <= u:
                # cp is nonincreasing: the first index with cp <= u is
                # found by bisecting the reversed (ascending) view.
                skip = g0 + cp.size - int(
                    cp[::-1].searchsorted(u, side="right")
                )
                break
            survive = float(cp[-1])
            g0 += chunk
            chunk = min(chunk * 2, 1 << 16)
        idx += 1
    # Slot draws don't feed back into the skip chain, so they are
    # deferred and computed in one vectorised pass (draw 0 at each
    # accepted position — same mix as the scalar _mix_one(h)).
    pos_arr = np.asarray(positions, dtype=np.uint64)
    slots = counter_u64(key, pos_arr, np.zeros(pos_arr.size, dtype=np.uint64))
    return (
        np.asarray(accepts, dtype=np.int64),
        (slots % np.uint64(k)).astype(np.int64),
        skip,
    )


def sampler_segment_counts(
    values: np.ndarray, keys: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Per-segment tracked-value counts via one searchsorted pass.

    Only the window ``[min(starts), max(ends))`` is classified, and
    sorted pairwise-disjoint segments (the sketch walker's case)
    collapse to a single flat ``np.bincount`` over combined
    ``segment * r + code`` indices — exact integer counting either
    way, so the two routes are interchangeable bit for bit.
    """
    r = keys.shape[0]
    b = starts.shape[0]
    if r == 0 or b == 0 or values.size == 0:
        return np.zeros((b, r), dtype=np.int64)
    lo0 = int(starts.min())
    hi0 = int(ends.max())
    if hi0 <= lo0:
        return np.zeros((b, r), dtype=np.int64)
    window = values[lo0:hi0]
    codes = np.searchsorted(keys, window)
    np.minimum(codes, r - 1, out=codes)
    ok = keys[codes] == window
    disjoint = bool(np.all(ends >= starts)) and (
        b == 1 or bool(np.all(starts[1:] >= ends[:-1]))
    )
    if disjoint and b * r <= (1 << 24):
        # Sorted disjoint segments tile the window (with -1 filler for
        # the inter-segment gaps), so the per-element segment id is one
        # np.repeat instead of a searchsorted over the whole window.
        pieces = 2 * b - 1
        seg_ids = np.empty(pieces, dtype=np.int64)
        seg_lens = np.empty(pieces, dtype=np.int64)
        seg_ids[0::2] = np.arange(b, dtype=np.int64)
        seg_lens[0::2] = ends - starts
        if b > 1:
            seg_ids[1::2] = -1
            seg_lens[1::2] = starts[1:] - ends[:-1]
        seg = np.repeat(seg_ids, seg_lens)
        ok &= seg >= 0
        flat = seg[ok] * r + codes[ok]
        return np.bincount(flat, minlength=b * r).astype(np.int64).reshape(b, r)
    out = np.zeros((b, r), dtype=np.int64)
    for s in range(b):
        lo = int(starts[s]) - lo0
        hi = int(ends[s]) - lo0
        if hi <= lo:
            continue
        sub = codes[lo:hi][ok[lo:hi]]
        if sub.size:
            out[s] += np.bincount(sub, minlength=r)
    return out
