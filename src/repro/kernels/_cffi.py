"""cffi ABI-mode kernels: a tiny C library compiled on first use.

The C source below is the fused hot loop — Horner evaluation,
divisionless Mersenne fold, sign/digit extraction, counter scatter —
compiled once per host with the system C compiler into a cache
directory (``REPRO_KERNEL_CACHE``, else ``~/.cache/repro-kernels``,
else the tempdir) keyed by a hash of the source, then loaded through
``cffi.FFI().dlopen``.  ABI mode deliberately: no setuptools build
machinery at runtime, just ``cc -O3 -shared`` and a dlopen, which
keeps the failure surface small and every failure mode a clean
:class:`~repro.kernels.dispatch.KernelUnavailableError` fallback.

Any exception during compiler discovery, compilation, or loading
propagates to :mod:`.dispatch`, which records it and (under ``auto``)
falls back to the next backend.

The arithmetic mirrors :mod:`._numpy` exactly — uint64 wraparound is
identical in C and numpy, and the field fold keeps every product
below 2^62 — so outputs are bit-identical by construction.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile

import numpy as np

_CDEF = """
void repro_tugofwar_scatter(
    const uint64_t *coeffs, int64_t s, int64_t degree,
    const uint64_t *values, const int64_t *counts, int64_t m,
    int64_t *z);
void repro_fk_scatter(
    const uint64_t *coeffs, int64_t s, int64_t degree,
    const uint64_t *values, const int64_t *counts, int64_t m,
    int64_t *counters, int64_t k);
void repro_splitmix64(
    const uint64_t *values, int64_t n, uint64_t seed_term,
    uint64_t *out);
void repro_shard_assign(
    const uint64_t *values, int64_t n, uint64_t seed_term,
    uint64_t num_shards, int64_t *out);
void repro_counter_u64(
    uint64_t key, const uint64_t *positions, const uint64_t *draws,
    int64_t n, uint64_t *out);
void repro_counter_u01(
    uint64_t key, const uint64_t *positions, const uint64_t *draws,
    int64_t n, double *out);
int64_t repro_reservoir_chain(
    uint64_t key, int64_t k, int64_t offered, int64_t skip, int64_t m,
    int64_t *accepts, int64_t *slots, int64_t *skip_out);
void repro_sampler_segment_counts(
    const int64_t *values, const int64_t *keys, int64_t r,
    const int64_t *starts, const int64_t *ends, int64_t b,
    int64_t *out);
"""

_CSOURCE = r"""
#include <stdint.h>

#define P31 2147483647ULL

/* Canonical reduction mod 2^31 - 1 of a value below 2^62: two
 * shift-folds (2^31 = 1 mod p) and one conditional subtract. */
static inline uint64_t fold31(uint64_t y)
{
    y = (y >> 31) + (y & P31);
    y = (y >> 31) + (y & P31);
    return y >= P31 ? y - P31 : y;
}

/* Degree 4 (4-wise independence) is the common case for every
 * registered sketch kind; a fixed-trip-count Horner chain is what
 * lets the compiler unroll and auto-vectorise the value loop (the
 * dynamic-degree loop below defeats the vectoriser's cost model). */
static inline uint64_t horner4(const uint64_t *row, uint64_t x)
{
    uint64_t acc = fold31(row[0] * x + row[1]);
    acc = fold31(acc * x + row[2]);
    return fold31(acc * x + row[3]);
}

void repro_tugofwar_scatter(
    const uint64_t *coeffs, int64_t s, int64_t degree,
    const uint64_t *values, const int64_t *counts, int64_t m,
    int64_t *z)
{
    if (degree == 4) {
        for (int64_t i = 0; i < s; i++) {
            const uint64_t *row = coeffs + (uint64_t)i * 4u;
            int64_t total = 0;
            for (int64_t j = 0; j < m; j++) {
                uint64_t acc = horner4(row, values[j]);
                total += (acc & 1u) ? counts[j] : -counts[j];
            }
            z[i] += total;
        }
        return;
    }
    for (int64_t i = 0; i < s; i++) {
        const uint64_t *row = coeffs + (uint64_t)i * (uint64_t)degree;
        int64_t total = 0;
        for (int64_t j = 0; j < m; j++) {
            uint64_t x = values[j];
            uint64_t acc = row[0];
            for (int64_t d = 1; d < degree; d++)
                acc = fold31(acc * x + row[d]);
            total += (acc & 1u) ? counts[j] : -counts[j];
        }
        z[i] += total;
    }
}

void repro_fk_scatter(
    const uint64_t *coeffs, int64_t s, int64_t degree,
    const uint64_t *values, const int64_t *counts, int64_t m,
    int64_t *counters, int64_t k)
{
    if (degree == 4) {
        for (int64_t i = 0; i < s; i++) {
            const uint64_t *row = coeffs + (uint64_t)i * 4u;
            int64_t *slots = counters + (uint64_t)i * (uint64_t)k;
            for (int64_t j = 0; j < m; j++) {
                uint64_t acc = horner4(row, values[j]);
                slots[acc % (uint64_t)k] += counts[j];
            }
        }
        return;
    }
    for (int64_t i = 0; i < s; i++) {
        const uint64_t *row = coeffs + (uint64_t)i * (uint64_t)degree;
        int64_t *slots = counters + (uint64_t)i * (uint64_t)k;
        for (int64_t j = 0; j < m; j++) {
            uint64_t x = values[j];
            uint64_t acc = row[0];
            for (int64_t d = 1; d < degree; d++)
                acc = fold31(acc * x + row[d]);
            slots[acc % (uint64_t)k] += counts[j];
        }
    }
}

static inline uint64_t splitmix(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

void repro_splitmix64(
    const uint64_t *values, int64_t n, uint64_t seed_term,
    uint64_t *out)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = splitmix(values[i] + seed_term);
}

void repro_shard_assign(
    const uint64_t *values, int64_t n, uint64_t seed_term,
    uint64_t num_shards, int64_t *out)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = (int64_t)(splitmix(values[i] + seed_term) % num_shards);
}

/* Counter-based sampler RNG: draw i at stream position j is
 * mix(mix(key + j*G1) + i*G2) — pure mod-2^64 integer arithmetic,
 * bit-identical to the numpy oracle by construction. */
#define CTR_G1 0x9E3779B97F4A7C15ULL
#define CTR_G2 0xD1B54A32D192ED03ULL
/* 2^-53: both the 53-bit integer below and this power-of-two scale
 * are exact doubles, so the (0, 1] map is exactly rounded. */
#define CTR_INV53 (1.0 / 9007199254740992.0)

void repro_counter_u64(
    uint64_t key, const uint64_t *positions, const uint64_t *draws,
    int64_t n, uint64_t *out)
{
    for (int64_t i = 0; i < n; i++) {
        uint64_t h = splitmix(positions[i] * CTR_G1 + key);
        out[i] = splitmix(h + draws[i] * CTR_G2);
    }
}

void repro_counter_u01(
    uint64_t key, const uint64_t *positions, const uint64_t *draws,
    int64_t n, double *out)
{
    for (int64_t i = 0; i < n; i++) {
        uint64_t h = splitmix(positions[i] * CTR_G1 + key);
        uint64_t z = splitmix(h + draws[i] * CTR_G2);
        out[i] = (double)((z >> 11) + 1u) * CTR_INV53;
    }
}

/* Smallest gap g with P(G > g) <= u for the full-reservoir skip law,
 * by exact sequential product search: every (x - k) / x term and the
 * running product are exactly rounded double ops, matching the numpy
 * oracle's sequential cumprod bit for bit. */
static inline int64_t res_gap(int64_t pos, double kd, double u)
{
    double survive = 1.0;
    int64_t g = 0;
    for (;;) {
        double x = (double)(pos + g + 1);
        double nxt = survive * ((x - kd) / x);
        if (nxt <= u)
            return g;
        survive = nxt;
        g++;
    }
}

int64_t repro_reservoir_chain(
    uint64_t key, int64_t k, int64_t offered, int64_t skip, int64_t m,
    int64_t *accepts, int64_t *slots, int64_t *skip_out)
{
    double kd = (double)k;
    int64_t cnt = 0, idx = 0, pos = offered;
    for (;;) {
        int64_t remaining = m - idx;
        if (skip >= remaining) {
            skip -= remaining;
            break;
        }
        idx += skip;
        pos += skip + 1;
        uint64_t h = splitmix((uint64_t)pos * CTR_G1 + key);
        accepts[cnt] = idx;
        slots[cnt] = (int64_t)(splitmix(h) % (uint64_t)k);
        uint64_t z = splitmix(h + CTR_G2);
        double u = (double)((z >> 11) + 1u) * CTR_INV53;
        cnt++;
        skip = res_gap(pos, kd, u);
        idx++;
    }
    *skip_out = skip;
    return cnt;
}

void repro_sampler_segment_counts(
    const int64_t *values, const int64_t *keys, int64_t r,
    const int64_t *starts, const int64_t *ends, int64_t b,
    int64_t *out)
{
    for (int64_t s = 0; s < b; s++) {
        int64_t *row = out + (uint64_t)s * (uint64_t)r;
        for (int64_t j = starts[s]; j < ends[s]; j++) {
            int64_t v = values[j];
            int64_t lo = 0, hi = r;
            while (lo < hi) {
                int64_t mid = (lo + hi) >> 1;
                if (keys[mid] < v)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            if (lo < r && keys[lo] == v)
                row[lo] += 1;
        }
    }
}
"""


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNEL_CACHE")
    if configured:
        return configured
    home = os.path.expanduser("~")
    if home and home != "~":
        return os.path.join(home, ".cache", "repro-kernels")
    return os.path.join(tempfile.gettempdir(), "repro-kernels")


def _compiler() -> str:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")


def _build() -> str:
    """Compile (or reuse) the kernel library; returns the .so path."""
    tag = hashlib.sha256((_CSOURCE + "|native-v2").encode()).hexdigest()[:16]
    suffix = "dylib" if sys.platform == "darwin" else "so"
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"repro_kernels_{tag}.{suffix}")
    if os.path.exists(lib_path):
        return lib_path
    os.makedirs(cache, exist_ok=True)
    src_path = os.path.join(cache, f"repro_kernels_{tag}.c")
    with open(src_path, "w") as fh:
        fh.write(_CSOURCE)
    # Build to a temp name and atomically rename, so concurrent
    # processes racing to compile never dlopen a half-written library.
    fd, tmp_path = tempfile.mkstemp(dir=cache, suffix=f".{suffix}")
    os.close(fd)
    try:
        compiler = _compiler()
        # -march=native lets gcc/clang vectorise the 64-bit multiply
        # fold (AVX-512DQ has vpmullq); the library is cached per host
        # so native codegen is safe.  Retry portable if it is rejected.
        flag_sets = (["-O3", "-march=native"], ["-O3"])
        last_error: Exception | None = None
        for flags in flag_sets:
            try:
                subprocess.run(
                    [compiler, *flags, "-fPIC", "-shared", "-o", tmp_path,
                     src_path],
                    check=True,
                    capture_output=True,
                    text=True,
                    timeout=120,
                )
                break
            except subprocess.CalledProcessError as exc:
                last_error = exc
        else:
            raise RuntimeError(
                f"C compile failed: {getattr(last_error, 'stderr', last_error)}"
            )
        os.replace(tmp_path, lib_path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    return lib_path


import cffi  # noqa: E402  (the lazy availability probe — see dispatch)

_ffi = cffi.FFI()
_ffi.cdef(_CDEF)
_lib = _ffi.dlopen(_build())


def _u64(arr: np.ndarray):
    return _ffi.cast("const uint64_t *", arr.ctypes.data)


def _i64(arr: np.ndarray):
    return _ffi.cast("const int64_t *", arr.ctypes.data)


def _i64_mut(arr: np.ndarray):
    return _ffi.cast("int64_t *", arr.ctypes.data)


def _u64_mut(arr: np.ndarray):
    return _ffi.cast("uint64_t *", arr.ctypes.data)


def tugofwar_scatter(coeffs, values, counts, z) -> None:
    """Fused Horner + fold + sign + signed scatter in C."""
    s, degree = coeffs.shape
    _lib.repro_tugofwar_scatter(
        _u64(coeffs), s, degree, _u64(values), _i64(counts),
        values.shape[0], _i64_mut(z),
    )


def fk_scatter(coeffs, values, counts, counters, k) -> None:
    """Fused Horner + fold + digit scatter in C."""
    s, degree = coeffs.shape
    _lib.repro_fk_scatter(
        _u64(coeffs), s, degree, _u64(values), _i64(counts),
        values.shape[0], _i64_mut(counters), int(k),
    )


def splitmix64(values, seed_term) -> np.ndarray:
    """splitmix64 finalizer loop in C."""
    out = np.empty(values.shape[0], dtype=np.uint64)
    _lib.repro_splitmix64(
        _u64(values), values.shape[0], int(seed_term), _u64_mut(out)
    )
    return out


def shard_assign(values, seed_term, num_shards) -> np.ndarray:
    """Fused splitmix64 + modulo shard routing in C."""
    out = np.empty(values.shape[0], dtype=np.int64)
    _lib.repro_shard_assign(
        _u64(values), values.shape[0], int(seed_term), int(num_shards),
        _i64_mut(out),
    )
    return out


def counter_u64(key, positions, draws) -> np.ndarray:
    """Vectorised counter draws in C."""
    out = np.empty(positions.shape[0], dtype=np.uint64)
    _lib.repro_counter_u64(
        int(key), _u64(positions), _u64(draws), positions.shape[0],
        _u64_mut(out),
    )
    return out


def counter_u01(key, positions, draws) -> np.ndarray:
    """Counter draws in (0, 1] in C."""
    out = np.empty(positions.shape[0], dtype=np.float64)
    _lib.repro_counter_u01(
        int(key), _u64(positions), _u64(draws), positions.shape[0],
        _ffi.cast("double *", out.ctypes.data),
    )
    return out


def reservoir_chain(key, k, offered, skip, m):
    """Sequential reservoir acceptance chain in C."""
    accepts = np.empty(m, dtype=np.int64)
    slots = np.empty(m, dtype=np.int64)
    skip_out = np.empty(1, dtype=np.int64)
    cnt = _lib.repro_reservoir_chain(
        int(key), int(k), int(offered), int(skip), int(m),
        _i64_mut(accepts), _i64_mut(slots), _i64_mut(skip_out),
    )
    return accepts[:cnt].copy(), slots[:cnt].copy(), int(skip_out[0])


def sampler_segment_counts(values, keys, starts, ends) -> np.ndarray:
    """Per-segment tracked-value counts in C (binary search per element)."""
    out = np.zeros((starts.shape[0], keys.shape[0]), dtype=np.int64)
    if keys.shape[0] and starts.shape[0] and values.shape[0]:
        _lib.repro_sampler_segment_counts(
            _i64(values), _i64(keys), keys.shape[0],
            _i64(starts), _i64(ends), starts.shape[0],
            _i64_mut(out),
        )
    return out
