"""numba jit kernels: cached, single-threaded, lazily compiled.

Importing this module requires numba (the import is what
:func:`repro.kernels.dispatch._load` treats as the availability
probe); compiling happens lazily on the first call of each kernel and
is cached on disk (``cache=True``) so later processes skip the jit
cost.  ``parallel=False`` everywhere: the sketches already get their
parallelism from sharding/threading layers above, and a deterministic
single-core loop is what the bit-identity contract is stated against.

Every loop mirrors :mod:`._numpy` operation for operation in exact
uint64/int64 arithmetic, so outputs are bit-identical by construction.
"""

from __future__ import annotations

import numpy as np
from numba import njit

_P = np.uint64((1 << 31) - 1)
_SHIFT = np.uint64(31)
_ONE = np.uint64(1)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)


@njit(cache=True, parallel=False, nogil=True, inline="always")
def _fold31(y):  # pragma: no cover - jit
    y = (y >> _SHIFT) + (y & _P)
    y = (y >> _SHIFT) + (y & _P)
    if y >= _P:
        y = y - _P
    return y


@njit(cache=True, parallel=False, nogil=True)
def _tugofwar_scatter(coeffs, values, counts, z):  # pragma: no cover - jit
    s = coeffs.shape[0]
    degree = coeffs.shape[1]
    m = values.shape[0]
    if degree == 4:
        # Fixed-trip-count Horner chain: unrollable/vectorisable.
        for i in range(s):
            c0 = coeffs[i, 0]
            c1 = coeffs[i, 1]
            c2 = coeffs[i, 2]
            c3 = coeffs[i, 3]
            total = np.int64(0)
            for j in range(m):
                x = values[j]
                acc = _fold31(c0 * x + c1)
                acc = _fold31(acc * x + c2)
                acc = _fold31(acc * x + c3)
                if (acc & _ONE) == _ONE:
                    total = total + counts[j]
                else:
                    total = total - counts[j]
            z[i] += total
        return
    for i in range(s):
        total = np.int64(0)
        for j in range(m):
            x = values[j]
            acc = coeffs[i, 0]
            for d in range(1, degree):
                acc = _fold31(acc * x + coeffs[i, d])
            if (acc & _ONE) == _ONE:
                total = total + counts[j]
            else:
                total = total - counts[j]
        z[i] += total


@njit(cache=True, parallel=False, nogil=True)
def _fk_scatter(coeffs, values, counts, counters, k):  # pragma: no cover - jit
    s = coeffs.shape[0]
    degree = coeffs.shape[1]
    m = values.shape[0]
    ku = np.uint64(k)
    if degree == 4:
        for i in range(s):
            c0 = coeffs[i, 0]
            c1 = coeffs[i, 1]
            c2 = coeffs[i, 2]
            c3 = coeffs[i, 3]
            for j in range(m):
                x = values[j]
                acc = _fold31(c0 * x + c1)
                acc = _fold31(acc * x + c2)
                acc = _fold31(acc * x + c3)
                counters[i, np.int64(acc % ku)] += counts[j]
        return
    for i in range(s):
        for j in range(m):
            x = values[j]
            acc = coeffs[i, 0]
            for d in range(1, degree):
                acc = _fold31(acc * x + coeffs[i, d])
            counters[i, np.int64(acc % ku)] += counts[j]


@njit(cache=True, parallel=False, nogil=True)
def _splitmix64(values, seed_term, out):  # pragma: no cover - jit
    for i in range(values.shape[0]):
        zv = values[i] + seed_term
        zv = (zv ^ (zv >> _S30)) * _M1
        zv = (zv ^ (zv >> _S27)) * _M2
        out[i] = zv ^ (zv >> _S31)


@njit(cache=True, parallel=False, nogil=True)
def _shard_assign(values, seed_term, num_shards, out):  # pragma: no cover - jit
    shards = np.uint64(num_shards)
    for i in range(values.shape[0]):
        zv = values[i] + seed_term
        zv = (zv ^ (zv >> _S30)) * _M1
        zv = (zv ^ (zv >> _S27)) * _M2
        zv = zv ^ (zv >> _S31)
        out[i] = np.int64(zv % shards)


_G1 = np.uint64(0x9E3779B97F4A7C15)
_G2 = np.uint64(0xD1B54A32D192ED03)
_S11 = np.uint64(11)
_U1 = np.uint64(1)
_INV53 = 2.0**-53


@njit(cache=True, parallel=False, nogil=True, inline="always")
def _mix(zv):  # pragma: no cover - jit
    zv = (zv ^ (zv >> _S30)) * _M1
    zv = (zv ^ (zv >> _S27)) * _M2
    return zv ^ (zv >> _S31)


@njit(cache=True, parallel=False, nogil=True)
def _counter_u64(key, positions, draws, out):  # pragma: no cover - jit
    for i in range(positions.shape[0]):
        h = _mix(positions[i] * _G1 + key)
        out[i] = _mix(h + draws[i] * _G2)


@njit(cache=True, parallel=False, nogil=True)
def _counter_u01(key, positions, draws, out):  # pragma: no cover - jit
    for i in range(positions.shape[0]):
        h = _mix(positions[i] * _G1 + key)
        zv = _mix(h + draws[i] * _G2)
        out[i] = np.float64((zv >> _S11) + _U1) * _INV53


@njit(cache=True, parallel=False, nogil=True, inline="always")
def _res_gap(pos, kd, u):  # pragma: no cover - jit
    survive = 1.0
    g = np.int64(0)
    while True:
        x = np.float64(pos + g + 1)
        nxt = survive * ((x - kd) / x)
        if nxt <= u:
            return g
        survive = nxt
        g += 1


@njit(cache=True, parallel=False, nogil=True)
def _reservoir_chain(key, k, offered, skip, m, accepts, slots):
    # pragma: no cover - jit
    kd = np.float64(k)
    ku = np.uint64(k)
    cnt = np.int64(0)
    idx = np.int64(0)
    pos = np.int64(offered)
    while True:
        remaining = m - idx
        if skip >= remaining:
            skip -= remaining
            break
        idx += skip
        pos += skip + np.int64(1)
        h = _mix(np.uint64(pos) * _G1 + key)
        accepts[cnt] = idx
        slots[cnt] = np.int64(_mix(h) % ku)
        zv = _mix(h + _G2)
        u = np.float64((zv >> _S11) + _U1) * _INV53
        cnt += 1
        skip = _res_gap(pos, kd, u)
        idx += 1
    return cnt, skip


@njit(cache=True, parallel=False, nogil=True)
def _segment_counts(values, keys, starts, ends, out):  # pragma: no cover - jit
    r = keys.shape[0]
    for s in range(starts.shape[0]):
        for j in range(starts[s], ends[s]):
            v = values[j]
            lo = np.int64(0)
            hi = r
            while lo < hi:
                mid = (lo + hi) >> 1
                if keys[mid] < v:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < r and keys[lo] == v:
                out[s, lo] += 1


def counter_u64(key, positions, draws) -> np.ndarray:
    """Vectorised counter draws, jit-compiled."""
    out = np.empty(positions.shape[0], dtype=np.uint64)
    _counter_u64(key, positions, draws, out)
    return out


def counter_u01(key, positions, draws) -> np.ndarray:
    """Counter draws in (0, 1], jit-compiled."""
    out = np.empty(positions.shape[0], dtype=np.float64)
    _counter_u01(key, positions, draws, out)
    return out


def reservoir_chain(key, k, offered, skip, m):
    """Sequential reservoir acceptance chain, jit-compiled."""
    accepts = np.empty(m, dtype=np.int64)
    slots = np.empty(m, dtype=np.int64)
    cnt, skip_out = _reservoir_chain(
        key, np.int64(k), np.int64(offered), np.int64(skip), np.int64(m),
        accepts, slots,
    )
    return accepts[:cnt].copy(), slots[:cnt].copy(), int(skip_out)


def sampler_segment_counts(values, keys, starts, ends) -> np.ndarray:
    """Per-segment tracked-value counts, jit-compiled binary search."""
    out = np.zeros((starts.shape[0], keys.shape[0]), dtype=np.int64)
    if keys.shape[0] and starts.shape[0] and values.shape[0]:
        _segment_counts(values, keys, starts, ends, out)
    return out


def tugofwar_scatter(coeffs, values, counts, z) -> None:
    """Fused Horner + fold + sign + signed scatter, jit-compiled."""
    _tugofwar_scatter(coeffs, values, counts, z)


def fk_scatter(coeffs, values, counts, counters, k) -> None:
    """Fused Horner + fold + digit scatter, jit-compiled."""
    _fk_scatter(coeffs, values, counts, counters, np.int64(k))


def splitmix64(values, seed_term) -> np.ndarray:
    """splitmix64 finalizer loop, jit-compiled."""
    out = np.empty(values.shape[0], dtype=np.uint64)
    _splitmix64(values, seed_term, out)
    return out


def shard_assign(values, seed_term, num_shards) -> np.ndarray:
    """Fused splitmix64 + modulo shard routing, jit-compiled."""
    out = np.empty(values.shape[0], dtype=np.int64)
    _shard_assign(values, seed_term, np.int64(num_shards), out)
    return out
