"""Backend registry and dispatch for the fused ingest kernels.

Every public kernel here validates and normalises its inputs **once**
(contiguity, dtype, hash-domain range) and then hands plain C-ordered
arrays to the active backend, so the per-backend implementations are
pure arithmetic loops with identical preconditions — which is what
makes bit-identity a checkable property instead of a hope.

Backend state is process-global and guarded by a lock: the sketches
are already serialised per-instance by the store/service layers, and a
backend switch mid-stream is safe anyway because every backend
computes the same integers.
"""

from __future__ import annotations

import os
import threading

import numpy as np

__all__ = [
    "KernelUnavailableError",
    "BACKEND_NAMES",
    "ENV_VAR",
    "available_backends",
    "active_backend",
    "set_backend",
    "get_backend",
    "kernel_info",
    "tugofwar_scatter",
    "tugofwar_update_one",
    "fk_scatter",
    "fk_update_one",
    "splitmix64",
    "shard_assign",
    "SAMPLER_RNG_SCHEME",
    "RESERVOIR_SEQ_FACTOR",
    "counter_key",
    "counter_u64_one",
    "counter_u01_one",
    "counter_u64",
    "counter_u01",
    "reservoir_chain",
    "reservoir_gap_one",
    "sampler_segment_counts",
]

#: Environment variable that selects the backend at first use.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Every backend name the registry knows (``auto`` is a policy, not a
#: backend: it resolves to the first loadable entry of _AUTO_ORDER).
BACKEND_NAMES = ("numpy", "numba", "cffi")

#: ``auto`` preference: jit first (fastest observed), then the
#: self-compiled C library, then the always-available reference.
_AUTO_ORDER = ("numba", "cffi", "numpy")

MERSENNE_PRIME_31 = (1 << 31) - 1
_P64 = np.uint64(MERSENNE_PRIME_31)
_MASK64 = (1 << 64) - 1

#: splitmix64 finalizer constants (Steele et al.), shared with
#: :mod:`repro.engine.partition` which dispatches through here.
SPLITMIX_GAMMA = 0x9E3779B97F4A7C15

#: Second Weyl increment for the per-position draw index of the
#: counter-based sampler RNG (a distinct odd constant so the (j, i)
#: lattice never aliases the position stream).
COUNTER_DRAW_GAMMA = 0xD1B54A32D192ED03

#: RNG scheme newly constructed sampler sketches draw from; legacy
#: PCG64 snapshots keep their scheme on a compatibility path.
SAMPLER_RNG_SCHEME = "counter"

#: Reservoir skip draws use the exact sequential-product search while
#: ``offered <= RESERVOIR_SEQ_FACTOR * k``; beyond that the drivers
#: switch to the lgamma bisection (whose libm calls are not bit-stable
#: across toolchains, so it never enters a compiled kernel).
RESERVOIR_SEQ_FACTOR = 65536


class KernelUnavailableError(RuntimeError):
    """An explicitly requested kernel backend cannot be loaded.

    Raised only for *explicit* requests (``set_backend("numba")`` or
    ``REPRO_KERNEL_BACKEND=numba`` with no numba installed); ``auto``
    selection never raises — it falls back to the numpy reference.
    """


_lock = threading.RLock()
_active = None  # the resolved backend module, or None before first use
_active_name: str | None = None
_loaded: dict[str, object] = {}
_load_errors: dict[str, str] = {}


def _import_backend(name: str):
    """Import one backend module, recording the failure reason."""
    if name == "numpy":
        from . import _numpy as module  # always importable
        return module
    try:
        if name == "numba":
            from . import _numba as module
        elif name == "cffi":
            from . import _cffi as module
        else:
            raise ValueError(
                f"unknown kernel backend {name!r}; "
                f"choose from {('auto',) + BACKEND_NAMES}"
            )
    except ValueError:
        raise
    except Exception as exc:  # ImportError, compile failure, OSError...
        _load_errors[name] = f"{type(exc).__name__}: {exc}"
        raise KernelUnavailableError(
            f"kernel backend {name!r} is not available on this host: "
            f"{_load_errors[name]}"
        ) from exc
    return module


def _load(name: str):
    """Load (and cache) one backend module by name."""
    with _lock:
        module = _loaded.get(name)
        if module is None:
            module = _import_backend(name)
            _loaded[name] = module
        return module


def _resolve(requested: str):
    """Resolve a requested name (possibly ``auto``) to a loaded backend."""
    if requested == "auto":
        for name in _AUTO_ORDER:
            try:
                return name, _load(name)
            except KernelUnavailableError:
                continue
        return "numpy", _load("numpy")  # unreachable: numpy always loads
    if requested not in BACKEND_NAMES:
        raise ValueError(
            f"unknown kernel backend {requested!r}; "
            f"choose from {('auto',) + BACKEND_NAMES}"
        )
    return requested, _load(requested)


def get_backend():
    """The active backend module, resolving the env selection lazily."""
    global _active, _active_name
    backend = _active
    if backend is not None:
        return backend
    with _lock:
        if _active is None:
            requested = os.environ.get(ENV_VAR, "auto").strip() or "auto"
            _active_name, _active = _resolve(requested)
        return _active


def active_backend() -> str:
    """Name of the backend the kernels currently dispatch to."""
    get_backend()
    return _active_name  # type: ignore[return-value]


def set_backend(name: str) -> str:
    """Select a backend programmatically; returns the resolved name.

    ``name`` is ``auto`` or one of :data:`BACKEND_NAMES`.  The backend
    is loaded *now*, so an explicit request for an unavailable backend
    fails here — loudly, with the underlying reason — rather than on
    the first ingest.  Overrides any earlier env/``auto`` resolution
    for the rest of the process (or until the next call).
    """
    global _active, _active_name
    with _lock:
        resolved, module = _resolve(str(name))
        _active_name, _active = resolved, module
        return resolved


def available_backends() -> tuple[str, ...]:
    """Backends that load on this host, probing each one once."""
    names = []
    for name in BACKEND_NAMES:
        try:
            _load(name)
        except KernelUnavailableError:
            continue
        names.append(name)
    return tuple(names)


def kernel_info(probe: bool = False) -> dict:
    """A JSON-compatible summary of the kernel configuration.

    With ``probe=False`` (the default, used by serving banners and
    ``info`` payloads) only already-loaded backends are listed, so
    asking for the summary never triggers a jit compile.  ``probe=True``
    (benchmarks, diagnostics) attempts to load every backend.
    """
    available = available_backends() if probe else tuple(sorted(_loaded))
    return {
        "active": active_backend(),
        "requested": os.environ.get(ENV_VAR, "auto").strip() or "auto",
        "available": list(available),
        "load_errors": dict(_load_errors),
        "sampler_rng": SAMPLER_RNG_SCHEME,
    }


# ----------------------------------------------------------------------
# Input normalisation shared by every backend
# ----------------------------------------------------------------------
def _as_coeffs(coeffs) -> np.ndarray:
    arr = np.ascontiguousarray(coeffs, dtype=np.uint64)
    if arr.ndim != 2:
        raise ValueError(f"coefficients must be 2-D, got shape {arr.shape}")
    return arr


def _as_domain_values(values) -> np.ndarray:
    """Values as contiguous uint64, validated into [0, p) in one pass."""
    vals = np.ascontiguousarray(np.asarray(values, dtype=np.uint64))
    if vals.ndim != 1:
        raise ValueError(f"values must be one-dimensional, got shape {vals.shape}")
    if vals.size and bool((vals >= _P64).any()):
        raise ValueError(
            f"values contain entries >= {MERSENNE_PRIME_31}, outside the field"
        )
    return vals


def _as_counts(counts, size: int) -> np.ndarray:
    cnts = np.ascontiguousarray(counts, dtype=np.int64)
    if cnts.shape != (size,):
        raise ValueError(
            f"counts must have shape ({size},), got {cnts.shape}"
        )
    return cnts


def _check_state(state: np.ndarray, dtype, name: str) -> np.ndarray:
    if (
        not isinstance(state, np.ndarray)
        or state.dtype != dtype
        or not state.flags.c_contiguous
        or not state.flags.writeable
    ):
        raise ValueError(
            f"{name} must be a writable C-contiguous {np.dtype(dtype)} array"
        )
    return state


def _check_scalar_value(value) -> int:
    v = int(value)
    if not 0 <= v < MERSENNE_PRIME_31:
        raise ValueError(
            f"value {value!r} outside hashable domain [0, {MERSENNE_PRIME_31})"
        )
    return v


def _seed_term(seed: int) -> np.uint64:
    """The precombined splitmix64 additive term, mod 2^64."""
    return np.uint64(((int(seed) + 1) * SPLITMIX_GAMMA) & _MASK64)


# ----------------------------------------------------------------------
# The kernels
# ----------------------------------------------------------------------
def tugofwar_scatter(coeffs, values, counts, z: np.ndarray) -> None:
    """Fused tug-of-war bulk update: ``z[i] += sum_j eps_i(v_j) * c_j``.

    ``eps_i(v)`` is the sign bit (lsb mapped 0 -> -1, 1 -> +1) of the
    degree-(d-1) Horner polynomial ``coeffs[i]`` evaluated at ``v``
    over GF(2^31 - 1).  Updates ``z`` (int64, shape ``(s,)``) in
    place; bit-identical across backends by exact integer arithmetic.
    """
    cf = _as_coeffs(coeffs)
    vals = _as_domain_values(values)
    _check_state(z, np.int64, "z")
    if z.shape != (cf.shape[0],):
        raise ValueError(f"z must have shape ({cf.shape[0]},), got {z.shape}")
    if vals.size == 0:
        return
    cnts = _as_counts(counts, vals.size)
    get_backend().tugofwar_scatter(cf, vals, cnts, z)


def tugofwar_update_one(coeffs, value, count, z: np.ndarray) -> None:
    """Scalar tug-of-war update: ``z += count * eps(value)``, fused.

    The per-``insert``/``delete`` fast path: no ``(s,)`` int8 sign
    temporary, no separate sign-apply pass.
    """
    v = _check_scalar_value(value)
    cf = _as_coeffs(coeffs)
    _check_state(z, np.int64, "z")
    backend = get_backend()
    fn = getattr(backend, "tugofwar_update_one", None)
    if fn is not None:
        fn(cf, v, int(count), z)
        return
    backend.tugofwar_scatter(
        cf,
        np.array([v], dtype=np.uint64),
        np.array([int(count)], dtype=np.int64),
        z,
    )


def fk_scatter(coeffs, values, counts, counters: np.ndarray, k: int) -> None:
    """Fused F_k bulk update: ``counters[i, b_i(v_j)] += c_j``.

    ``b_i(v) = h_i(v) mod k`` is the per-slot digit hash.  Updates the
    ``(s, k)`` int64 counter matrix in place.
    """
    cf = _as_coeffs(coeffs)
    vals = _as_domain_values(values)
    k = int(k)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    _check_state(counters, np.int64, "counters")
    if counters.shape != (cf.shape[0], k):
        raise ValueError(
            f"counters must have shape ({cf.shape[0]}, {k}), "
            f"got {counters.shape}"
        )
    if vals.size == 0:
        return
    cnts = _as_counts(counts, vals.size)
    get_backend().fk_scatter(cf, vals, cnts, counters, k)


def fk_update_one(coeffs, value, count, counters: np.ndarray, k: int) -> None:
    """Scalar F_k update: bump one digit counter per slot, fused."""
    v = _check_scalar_value(value)
    cf = _as_coeffs(coeffs)
    k = int(k)
    _check_state(counters, np.int64, "counters")
    backend = get_backend()
    fn = getattr(backend, "fk_update_one", None)
    if fn is not None:
        fn(cf, v, int(count), counters, k)
        return
    backend.fk_scatter(
        cf,
        np.array([v], dtype=np.uint64),
        np.array([int(count)], dtype=np.int64),
        counters,
        k,
    )


def splitmix64(values, seed: int = 0) -> np.ndarray:
    """The splitmix64 finalizer of each int64 value: uint64 array.

    Bit-identical to the historical pure-numpy
    :func:`repro.engine.partition.stable_hash64`, which now dispatches
    here.
    """
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"values must be one-dimensional, got shape {arr.shape}")
    return get_backend().splitmix64(arr.view(np.uint64), _seed_term(seed))


# ----------------------------------------------------------------------
# Counter-based sampler RNG
# ----------------------------------------------------------------------
# Draw ``i`` at stream position ``j`` under seed ``s`` is the pure
# function ``mix(mix(key(s) + j*G1) + i*G2)`` where ``mix`` is the
# splitmix64 finalizer.  Pure integer arithmetic mod 2^64, so the
# scalar Python helpers below, the vectorised numpy path, and the
# compiled backends all produce the same bits — which is what lets the
# samplers precompute whole batches of draws instead of threading a
# stateful generator through every element.

_MIX_M1 = 0xBF58476D1CE4E5B9
_MIX_M2 = 0x94D049BB133111EB


def _mix64(z: int) -> int:
    """The splitmix64 finalizer on a Python int, mod 2^64."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _MIX_M1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_M2) & _MASK64
    return z ^ (z >> 31)


def counter_key(seed: int) -> int:
    """Derive the 64-bit stream key of the counter RNG from a seed."""
    return _mix64(((int(seed) + 1) * SPLITMIX_GAMMA) & _MASK64)


def counter_u64_one(key: int, position: int, draw: int) -> int:
    """Scalar counter draw: uint64 for draw ``draw`` at ``position``."""
    h = _mix64((int(key) + int(position) * SPLITMIX_GAMMA) & _MASK64)
    return _mix64((h + int(draw) * COUNTER_DRAW_GAMMA) & _MASK64)


def counter_u01_one(key: int, position: int, draw: int) -> float:
    """Scalar counter draw mapped into (0, 1].

    ``((u >> 11) + 1) * 2^-53`` — both the 53-bit integer and the
    power-of-two scale are exactly representable, so the float is
    bit-identical in Python, numpy, numba, and C.
    """
    return float((counter_u64_one(key, position, draw) >> 11) + 1) * 2.0**-53


def reservoir_gap_one(k: int, position: int, u: float) -> int:
    """Scalar reservoir skip inversion: smallest gap with ``P(G > g) <= u``.

    Driver-side companion of :func:`reservoir_chain` for per-element
    offers: delegates to the numpy reference search (sequential-product
    order), so a scalar offer consumes exactly the gap the compiled
    chain would have drawn at the same position.  Only valid inside the
    sequential window (``position <= RESERVOIR_SEQ_FACTOR * k``); the
    drivers use their lgamma bisection beyond it.
    """
    from . import _numpy

    return _numpy._reservoir_gap(int(position), int(k), float(u))


def _as_index_array(values, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and bool((arr < 0).any()):
        raise ValueError(f"{name} must be non-negative")
    return arr


def counter_u64(key: int, positions, draws) -> np.ndarray:
    """Vectorised counter draws: one uint64 per (position, draw) pair.

    ``positions`` and ``draws`` are non-negative int64 arrays of equal
    length (either may be a scalar, broadcast to the other's length).
    """
    pos = np.asarray(positions, dtype=np.int64)
    drw = np.asarray(draws, dtype=np.int64)
    pos, drw = np.broadcast_arrays(pos, drw)
    pos = _as_index_array(pos, "positions")
    drw = _as_index_array(drw, "draws")
    return get_backend().counter_u64(
        np.uint64(int(key) & _MASK64), pos.view(np.uint64), drw.view(np.uint64)
    )


def counter_u01(key: int, positions, draws) -> np.ndarray:
    """Vectorised counter draws mapped into (0, 1] as float64."""
    pos = np.asarray(positions, dtype=np.int64)
    drw = np.asarray(draws, dtype=np.int64)
    pos, drw = np.broadcast_arrays(pos, drw)
    pos = _as_index_array(pos, "positions")
    drw = _as_index_array(drw, "draws")
    return get_backend().counter_u01(
        np.uint64(int(key) & _MASK64), pos.view(np.uint64), drw.view(np.uint64)
    )


def reservoir_chain(
    key: int, k: int, offered: int, skip: int, m: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Run the full-reservoir acceptance chain over ``m`` offers.

    Starting from a full size-``k`` reservoir that has seen ``offered``
    offers with ``skip`` rejections pending, returns ``(accepts,
    slots, skip_out)``: the batch offsets accepted, the reservoir slot
    each one replaces (draw 0 at its position), and the rejection
    count left over for the next batch.  Skip lengths are drawn by the
    exact sequential-product inversion of the Vitter skip law, so the
    whole call must stay inside the sequential window —
    ``offered + m <= RESERVOIR_SEQ_FACTOR * k`` — which the sampler
    drivers enforce by splitting batches.
    """
    k = int(k)
    offered = int(offered)
    skip = int(skip)
    m = int(m)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if offered < k:
        raise ValueError(
            f"reservoir_chain requires a full reservoir (offered >= k), "
            f"got offered={offered} k={k}"
        )
    if skip < 0:
        raise ValueError(f"skip must be >= 0, got {skip}")
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if offered + m > RESERVOIR_SEQ_FACTOR * k:
        raise ValueError(
            f"reservoir_chain window exceeded: offered + m = {offered + m} "
            f"> {RESERVOIR_SEQ_FACTOR} * k = {RESERVOIR_SEQ_FACTOR * k}"
        )
    accepts, slots, skip_out = get_backend().reservoir_chain(
        np.uint64(int(key) & _MASK64), k, offered, skip, m
    )
    return accepts, slots, int(skip_out)


def sampler_segment_counts(values, keys, starts, ends) -> np.ndarray:
    """Per-segment occurrence counts of each key value: ``(b, r)`` int64.

    ``values`` is the raw int64 batch, ``keys`` the sorted distinct
    values being tracked, and ``starts``/``ends`` the half-open segment
    bounds into ``values``.  ``out[s, c]`` counts occurrences of
    ``keys[c]`` in ``values[starts[s]:ends[s]]`` — the suffix-count
    (N_v) maintenance of the sample-count sketch, batched.  Exact
    integer counting, so bit-identity across backends is structural.
    """
    vals = np.ascontiguousarray(values, dtype=np.int64)
    if vals.ndim != 1:
        raise ValueError(f"values must be one-dimensional, got shape {vals.shape}")
    keys_arr = np.ascontiguousarray(keys, dtype=np.int64)
    if keys_arr.ndim != 1:
        raise ValueError(f"keys must be one-dimensional, got shape {keys_arr.shape}")
    if keys_arr.size > 1 and bool((np.diff(keys_arr) <= 0).any()):
        raise ValueError("keys must be strictly increasing")
    starts_arr = np.ascontiguousarray(starts, dtype=np.int64)
    ends_arr = np.ascontiguousarray(ends, dtype=np.int64)
    if starts_arr.shape != ends_arr.shape or starts_arr.ndim != 1:
        raise ValueError("starts and ends must be equal-length 1-D arrays")
    if starts_arr.size:
        if bool((starts_arr < 0).any()) or bool((ends_arr > vals.size).any()):
            raise ValueError("segment bounds outside the values array")
        if bool((ends_arr < starts_arr).any()):
            raise ValueError("segment ends must be >= starts")
    return get_backend().sampler_segment_counts(
        vals, keys_arr, starts_arr, ends_arr
    )


def shard_assign(values, seed: int = 0, num_shards: int = 1) -> np.ndarray:
    """Fused value-hash shard routing: ``splitmix64(v, seed) % shards``.

    Returns int64 shard indices in ``[0, num_shards)`` — the
    :class:`repro.engine.partition.HashPartitioner` inner loop without
    the intermediate hash array on compiled backends.
    """
    num_shards = int(num_shards)
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"values must be one-dimensional, got shape {arr.shape}")
    return get_backend().shard_assign(
        arr.view(np.uint64), _seed_term(seed), num_shards
    )
