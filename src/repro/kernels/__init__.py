"""Compiled ingest kernels behind one dispatch table.

The bulk-ingest hot path of every linear sketch is the same fused
loop: evaluate a Horner polynomial over GF(2^31 - 1) per (counter,
value) pair, fold the product divisionlessly, extract a sign bit or a
digit, and scatter a signed count into the counter state.  The numpy
implementation materialises several ``(s, m)`` uint64 temporaries per
Horner step; this package provides the same kernels *fused* — one
cache-resident pass, no temporaries — behind a backend registry:

* ``numpy`` — always available; the canonical reference whose outputs
  every other backend must match **bit for bit** (all kernel math is
  exact integer arithmetic, so equality is exact, not approximate);
* ``numba`` — cached ``@njit(parallel=False)`` loops, used when numba
  is importable;
* ``cffi`` — a small C library compiled on first use with the host C
  compiler and loaded through ``cffi``'s ABI mode, used when both a
  compiler and cffi are present.

Selection: the ``REPRO_KERNEL_BACKEND`` environment variable
(``auto`` | ``numpy`` | ``numba`` | ``cffi``, default ``auto``) or the
programmatic :func:`set_backend`.  ``auto`` prefers numba, then cffi,
then numpy, and *silently* falls back — a host without any compiler
toolchain runs the numpy path unchanged.  An *explicit* request for an
unavailable backend raises :class:`KernelUnavailableError` instead of
silently degrading.

Importing :mod:`repro` (or this package) never imports numba or cffi;
compiled backends load lazily on first kernel call or on an explicit
:func:`set_backend`.  The numpy path therefore stays the zero-
dependency oracle, and the property suite asserts compiled == numpy
bit-identity for every registered linear sketch kind.
"""

from .dispatch import (
    RESERVOIR_SEQ_FACTOR,
    SAMPLER_RNG_SCHEME,
    KernelUnavailableError,
    active_backend,
    available_backends,
    counter_key,
    counter_u01,
    counter_u01_one,
    counter_u64,
    counter_u64_one,
    fk_scatter,
    fk_update_one,
    kernel_info,
    reservoir_chain,
    reservoir_gap_one,
    sampler_segment_counts,
    set_backend,
    shard_assign,
    splitmix64,
    tugofwar_scatter,
    tugofwar_update_one,
)

__all__ = [
    "KernelUnavailableError",
    "active_backend",
    "available_backends",
    "set_backend",
    "kernel_info",
    "tugofwar_scatter",
    "tugofwar_update_one",
    "fk_scatter",
    "fk_update_one",
    "splitmix64",
    "shard_assign",
    "SAMPLER_RNG_SCHEME",
    "RESERVOIR_SEQ_FACTOR",
    "counter_key",
    "counter_u64_one",
    "counter_u01_one",
    "counter_u64",
    "counter_u01",
    "reservoir_chain",
    "reservoir_gap_one",
    "sampler_segment_counts",
]
