"""Command-line interface: reproduce any paper figure or table.

Usage (also via ``python -m repro``):

    python -m repro table1 [--scale 0.1] [--seed 0]
    python -m repro figure 2 [--scale 0.1] [--max-log2-s 12]
    python -m repro figure 15
    python -m repro convergence [--datasets poisson mf2]
    python -m repro section44 [--paper-values]
    python -m repro sweep --dataset zipf1.0 [--scale 0.05]

Sketch persistence and distributed builds (the engine layer)::

    python -m repro sketch build --kind tugofwar --dataset zipf1.0 \
        --shards 4 --out sk.json
    python -m repro sketch info sk.json
    python -m repro sketch merge left.json right.json --out union.json
    python -m repro sketch estimate union.json
    python -m repro sketch kinds

Every reproduction subcommand prints the same rows/series the
corresponding paper artifact reports.  Heavy runs scale down with
``--scale`` (fraction of the paper's stream lengths).
"""

from __future__ import annotations

import argparse
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables and figures from 'Tracking Join and "
        "Self-Join Sizes in Limited Storage' (PODS 1999).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, scale_default: float = 0.1) -> None:
        p.add_argument("--scale", type=float, default=scale_default,
                       help="fraction of the paper's stream lengths (1.0 = paper)")
        p.add_argument("--seed", type=int, default=0)

    p_table1 = sub.add_parser("table1", help="Table 1: data-set characteristics")
    add_common(p_table1)

    p_fig = sub.add_parser("figure", help="Figures 2-15")
    p_fig.add_argument("number", type=int, help="figure number (2-15)")
    add_common(p_fig)
    p_fig.add_argument("--max-log2-s", type=int, default=12,
                       help="largest sample size 2^this (paper: 14)")
    p_fig.add_argument("--repeats", type=int, default=1,
                       help="estimates per point (paper plots 1)")

    p_conv = sub.add_parser(
        "convergence", help="Section 3.1: 15%%-convergence summary"
    )
    add_common(p_conv, scale_default=0.05)
    p_conv.add_argument("--max-log2-s", type=int, default=12)
    p_conv.add_argument("--datasets", nargs="*", default=None,
                        help="subset of Table 1 names (default: all)")

    p_s44 = sub.add_parser("section44", help="Section 4.4: k-TW vs sampling")
    add_common(p_s44)
    p_s44.add_argument("--paper-values", action="store_true",
                       help="use the paper's (n, SJ) instead of generating data")

    p_sweep = sub.add_parser("sweep", help="accuracy sweep on one data set")
    p_sweep.add_argument("--dataset", required=True)
    add_common(p_sweep, scale_default=0.05)
    p_sweep.add_argument("--max-log2-s", type=int, default=12)
    p_sweep.add_argument("--repeats", type=int, default=1)

    p_sketch = sub.add_parser(
        "sketch", help="build, save, load, and merge sketches (engine layer)"
    )
    sketch_sub = p_sketch.add_subparsers(dest="sketch_command", required=True)

    p_build = sketch_sub.add_parser(
        "build", help="bulk-load a sketch from a stream and save it as JSON"
    )
    p_build.add_argument("--kind", default="tugofwar",
                         help="registered sketch kind (see `sketch kinds`)")
    source = p_build.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", help="Table 1 data-set name")
    source.add_argument("--values-file",
                        help="text file of whitespace-separated integer values")
    p_build.add_argument("--scale", type=float, default=0.1,
                         help="fraction of the paper stream length (with --dataset)")
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument("--s1", type=int, default=256,
                         help="accuracy parameter (ignored by frequency)")
    p_build.add_argument("--s2", type=int, default=5,
                         help="confidence parameter (ignored by frequency)")
    p_build.add_argument("--shards", type=int, default=1,
                         help="sharded build: partition, build per shard, merge "
                         "(mergeable kinds only)")
    p_build.add_argument("--workers", type=int, default=None,
                         help="thread count for the sharded build (default serial)")
    p_build.add_argument("--out", required=True, help="output JSON path")

    p_info = sketch_sub.add_parser("info", help="inspect a saved sketch")
    p_info.add_argument("path")

    p_estimate = sketch_sub.add_parser(
        "estimate", help="print a saved sketch's estimate"
    )
    p_estimate.add_argument("path")

    p_merge = sketch_sub.add_parser(
        "merge", help="merge two or more same-seed saved sketches"
    )
    p_merge.add_argument("paths", nargs="+", help="input sketch JSON files")
    p_merge.add_argument("--out", required=True, help="output JSON path")

    sketch_sub.add_parser("kinds", help="list registered sketch kinds")

    return parser


def _describe_sketch(sketch, path: str) -> str:
    """One-line human summary of a loaded sketch."""
    n = getattr(sketch, "n", None)
    size = "" if n is None else f", n={n:,}"
    return (
        f"{path}: kind={sketch.kind}, words={sketch.memory_words:,}{size}, "
        f"estimate={sketch.estimate():,.1f}"
    )


def _sketch_main(args) -> int:
    """The `sketch` subcommand group: build / info / estimate / merge."""
    import json
    from pathlib import Path

    from .engine import dump_sketch, loads_sketch, sharded_build, sketch_kinds

    def load_file(path: str):
        return loads_sketch(Path(path).read_text())

    def save_file(sketch, path: str) -> None:
        Path(path).write_text(json.dumps(dump_sketch(sketch)))

    if args.sketch_command == "kinds":
        for kind in sketch_kinds():
            print(kind)
        return 0

    if args.sketch_command in ("info", "estimate"):
        sketch = load_file(args.path)
        if args.sketch_command == "estimate":
            print(f"{sketch.estimate():.6g}")
        else:
            print(_describe_sketch(sketch, args.path))
        return 0

    if args.sketch_command == "merge":
        sketches = [load_file(p) for p in args.paths]
        merged = sketches[0]
        for other in sketches[1:]:
            merged = merged.merge(other)
        save_file(merged, args.out)
        print(_describe_sketch(merged, args.out))
        return 0

    if args.sketch_command == "build":
        import numpy as np

        from .core.frequency import FrequencyVector
        from .core.moments import FrequencyMomentTracker
        from .core.naivesampling import NaiveSamplingEstimator
        from .core.samplecount import SampleCountFastQuery, SampleCountSketch
        from .core.tugofwar import TugOfWarSketch

        if args.dataset is not None:
            from .data.registry import load_dataset

            values = load_dataset(args.dataset, rng=args.seed, scale=args.scale)
        else:
            values = np.loadtxt(args.values_file, dtype=np.int64).reshape(-1)
        n = int(values.size)

        factories = {
            "tugofwar": lambda: TugOfWarSketch(args.s1, args.s2, seed=args.seed),
            "samplecount": lambda: SampleCountSketch(
                args.s1, args.s2, seed=args.seed, initial_range=max(n, 1)
            ),
            "samplecount-fast": lambda: SampleCountFastQuery(
                args.s1, args.s2, seed=args.seed, initial_range=max(n, 1)
            ),
            "moments": lambda: FrequencyMomentTracker(
                args.s1, args.s2, seed=args.seed, initial_range=max(n, 1)
            ),
            "naivesampling": lambda: NaiveSamplingEstimator(
                args.s1 * args.s2, seed=args.seed
            ),
            "frequency": FrequencyVector,
        }
        factory = factories.get(args.kind)
        if factory is None:
            raise KeyError(
                f"unknown sketch kind {args.kind!r}; choose from {sorted(factories)}"
            )
        if args.shards > 1:
            sketch = sharded_build(
                factory, values, num_shards=args.shards, max_workers=args.workers
            )
        else:
            sketch = factory()
            sketch.update_from_stream(values)
        save_file(sketch, args.out)
        print(_describe_sketch(sketch, args.out))
        return 0

    raise AssertionError(
        f"unhandled sketch command {args.sketch_command!r}"
    )  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "sketch":
        return _sketch_main(args)

    # Imports deferred so `--help` stays instant.
    from .experiments import figures, tables
    from .experiments.metrics import convergence_from_sweep

    if args.command == "table1":
        rows = tables.table1(seed=args.seed, scale=args.scale)
        print(tables.format_table1(rows))
        return 0

    if args.command == "figure":
        if args.number == 15:
            out = figures.figure15(estimators=1024, scale=args.scale, seed=args.seed)
            print(figures.format_figure15(out))
            return 0
        sweep = figures.figure(
            args.number,
            scale=args.scale,
            max_log2_s=args.max_log2_s,
            seed=args.seed,
            repeats=args.repeats,
        )
        print(sweep.format_table())
        conv = convergence_from_sweep(sweep)
        print("\n15%-convergence:", ", ".join(f"{a}={s}" for a, s in conv.items()))
        return 0

    if args.command == "convergence":
        table = tables.convergence_table(
            datasets=args.datasets,
            scale=args.scale,
            max_log2_s=args.max_log2_s,
            seed=args.seed,
        )
        print(tables.format_convergence_table(table))
        return 0

    if args.command == "section44":
        rows = tables.table_section44(
            seed=args.seed, scale=args.scale, use_paper_values=args.paper_values
        )
        print(tables.format_table_section44(rows))
        return 0

    if args.command == "sweep":
        sweep = figures.run_figure(
            args.dataset,
            scale=args.scale,
            max_log2_s=args.max_log2_s,
            seed=args.seed,
            repeats=args.repeats,
        )
        print(sweep.format_table())
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
