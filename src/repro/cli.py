"""Command-line interface: reproduce any paper figure or table.

Usage (also via ``python -m repro``):

    python -m repro table1 [--scale 0.1] [--seed 0]
    python -m repro figure 2 [--scale 0.1] [--max-log2-s 12]
    python -m repro figure 15
    python -m repro convergence [--datasets poisson mf2]
    python -m repro section44 [--paper-values]
    python -m repro sweep --dataset zipf1.0 [--scale 0.05]

Every subcommand prints the same rows/series the corresponding paper
artifact reports.  Heavy runs scale down with ``--scale`` (fraction of
the paper's stream lengths).
"""

from __future__ import annotations

import argparse
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables and figures from 'Tracking Join and "
        "Self-Join Sizes in Limited Storage' (PODS 1999).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, scale_default: float = 0.1) -> None:
        p.add_argument("--scale", type=float, default=scale_default,
                       help="fraction of the paper's stream lengths (1.0 = paper)")
        p.add_argument("--seed", type=int, default=0)

    p_table1 = sub.add_parser("table1", help="Table 1: data-set characteristics")
    add_common(p_table1)

    p_fig = sub.add_parser("figure", help="Figures 2-15")
    p_fig.add_argument("number", type=int, help="figure number (2-15)")
    add_common(p_fig)
    p_fig.add_argument("--max-log2-s", type=int, default=12,
                       help="largest sample size 2^this (paper: 14)")
    p_fig.add_argument("--repeats", type=int, default=1,
                       help="estimates per point (paper plots 1)")

    p_conv = sub.add_parser(
        "convergence", help="Section 3.1: 15%%-convergence summary"
    )
    add_common(p_conv, scale_default=0.05)
    p_conv.add_argument("--max-log2-s", type=int, default=12)
    p_conv.add_argument("--datasets", nargs="*", default=None,
                        help="subset of Table 1 names (default: all)")

    p_s44 = sub.add_parser("section44", help="Section 4.4: k-TW vs sampling")
    add_common(p_s44)
    p_s44.add_argument("--paper-values", action="store_true",
                       help="use the paper's (n, SJ) instead of generating data")

    p_sweep = sub.add_parser("sweep", help="accuracy sweep on one data set")
    p_sweep.add_argument("--dataset", required=True)
    add_common(p_sweep, scale_default=0.05)
    p_sweep.add_argument("--max-log2-s", type=int, default=12)
    p_sweep.add_argument("--repeats", type=int, default=1)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    # Imports deferred so `--help` stays instant.
    from .experiments import figures, tables
    from .experiments.metrics import convergence_from_sweep

    if args.command == "table1":
        rows = tables.table1(seed=args.seed, scale=args.scale)
        print(tables.format_table1(rows))
        return 0

    if args.command == "figure":
        if args.number == 15:
            out = figures.figure15(estimators=1024, scale=args.scale, seed=args.seed)
            print(figures.format_figure15(out))
            return 0
        sweep = figures.figure(
            args.number,
            scale=args.scale,
            max_log2_s=args.max_log2_s,
            seed=args.seed,
            repeats=args.repeats,
        )
        print(sweep.format_table())
        conv = convergence_from_sweep(sweep)
        print("\n15%-convergence:", ", ".join(f"{a}={s}" for a, s in conv.items()))
        return 0

    if args.command == "convergence":
        table = tables.convergence_table(
            datasets=args.datasets,
            scale=args.scale,
            max_log2_s=args.max_log2_s,
            seed=args.seed,
        )
        print(tables.format_convergence_table(table))
        return 0

    if args.command == "section44":
        rows = tables.table_section44(
            seed=args.seed, scale=args.scale, use_paper_values=args.paper_values
        )
        print(tables.format_table_section44(rows))
        return 0

    if args.command == "sweep":
        sweep = figures.run_figure(
            args.dataset,
            scale=args.scale,
            max_log2_s=args.max_log2_s,
            seed=args.seed,
            repeats=args.repeats,
        )
        print(sweep.format_table())
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
