"""Command-line interface: reproduce any paper figure or table.

Usage (also via ``python -m repro``):

    python -m repro table1 [--scale 0.1] [--seed 0]
    python -m repro figure 2 [--scale 0.1] [--max-log2-s 12]
    python -m repro figure 15
    python -m repro convergence [--datasets poisson mf2]
    python -m repro section44 [--paper-values]
    python -m repro sweep --dataset zipf1.0 [--scale 0.05]

Sketch persistence and distributed builds (the engine layer)::

    python -m repro sketch build --kind tugofwar --dataset zipf1.0 \
        --shards 4 --out sk.json
    python -m repro sketch info sk.json
    python -m repro sketch merge left.json right.json --out union.json
    python -m repro sketch estimate union.json
    python -m repro sketch kinds

The windowed store (continuous maintenance over time buckets)::

    python -m repro store init --kind tugofwar --bucket-width 100 \
        --out st.json
    python -m repro store init --kind fk_moments --moment-k 3 --keyed \
        --bucket-width 100 --out fleet.json
    python -m repro store ingest st.json --events-file events.txt
    python -m repro store ingest fleet.json --events-file events.txt \
        --key tenant-a
    python -m repro store query st.json --from 0 --until 1000
    python -m repro store query fleet.json --from 0 --until 1000 \
        --key tenant-a
    python -m repro store compact st.json --before 500
    python -m repro store snapshot st.json --out checkpoint.json
    python -m repro store info st.json

The estimation service (line-delimited JSON over TCP)::

    python -m repro serve st.json --port 7099
    echo '{"op": "estimate", "from": 0, "until": 1000}' | nc 127.0.0.1 7099

The scale-out cluster (hash-partitioned shard workers behind one
cluster-aware front end speaking the same wire protocol)::

    python -m repro serve st.json --shards 4 --port 7099
    python -m repro cluster info --connect 127.0.0.1:7099
    python -m repro cluster estimate --connect 127.0.0.1:7099 \
        --from 0 --until 1000
    python -m repro cluster ingest-bench --connect 127.0.0.1:7099 \
        --events 100000

The query planner (join-graph enumeration over estimator policies)::

    python -m repro plan --shape chain --relations 6 --policy all
    python -m repro plan --shape star --relations 5 --enumerator dp-bushy \
        --allow-cross-products

Every reproduction subcommand prints the same rows/series the
corresponding paper artifact reports.  Heavy runs scale down with
``--scale`` (fraction of the paper's stream lengths).  User-level
failures (missing files, corrupt payloads, unknown kinds, misaligned
windows, unknown figure/data-set/algorithm names) exit with code 2 and
a one-line message on stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


class CliError(Exception):
    """A user-correctable failure: printed as one line, exit code 2."""


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables and figures from 'Tracking Join and "
        "Self-Join Sizes in Limited Storage' (PODS 1999).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, scale_default: float = 0.1) -> None:
        p.add_argument("--scale", type=float, default=scale_default,
                       help="fraction of the paper's stream lengths (1.0 = paper)")
        p.add_argument("--seed", type=int, default=0)

    p_table1 = sub.add_parser("table1", help="Table 1: data-set characteristics")
    add_common(p_table1)

    p_fig = sub.add_parser("figure", help="Figures 2-15")
    p_fig.add_argument("number", type=int, help="figure number (2-15)")
    add_common(p_fig)
    p_fig.add_argument("--max-log2-s", type=int, default=12,
                       help="largest sample size 2^this (paper: 14)")
    p_fig.add_argument("--repeats", type=int, default=1,
                       help="estimates per point (paper plots 1)")

    p_conv = sub.add_parser(
        "convergence", help="Section 3.1: 15%%-convergence summary"
    )
    add_common(p_conv, scale_default=0.05)
    p_conv.add_argument("--max-log2-s", type=int, default=12)
    p_conv.add_argument("--datasets", nargs="*", default=None,
                        help="subset of Table 1 names (default: all)")

    p_s44 = sub.add_parser("section44", help="Section 4.4: k-TW vs sampling")
    add_common(p_s44)
    p_s44.add_argument("--paper-values", action="store_true",
                       help="use the paper's (n, SJ) instead of generating data")

    p_sweep = sub.add_parser("sweep", help="accuracy sweep on one data set")
    p_sweep.add_argument("--dataset", required=True)
    add_common(p_sweep, scale_default=0.05)
    p_sweep.add_argument("--max-log2-s", type=int, default=12)
    p_sweep.add_argument("--repeats", type=int, default=1)

    p_sketch = sub.add_parser(
        "sketch", help="build, save, load, and merge sketches (engine layer)"
    )
    sketch_sub = p_sketch.add_subparsers(dest="sketch_command", required=True)

    p_build = sketch_sub.add_parser(
        "build", help="bulk-load a sketch from a stream and save it as JSON"
    )
    p_build.add_argument("--kind", default="tugofwar",
                         help="registered sketch kind (see `sketch kinds`)")
    source = p_build.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", help="Table 1 data-set name")
    source.add_argument("--values-file",
                        help="text file of whitespace-separated integer values")
    p_build.add_argument("--scale", type=float, default=0.1,
                         help="fraction of the paper stream length (with --dataset)")
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument("--s1", type=int, default=256,
                         help="accuracy parameter (ignored by frequency)")
    p_build.add_argument("--s2", type=int, default=5,
                         help="confidence parameter (ignored by frequency)")
    p_build.add_argument("--moment-k", type=int, default=2,
                         help="moment order for the fk_moments kind "
                         "(F_k = sum of f_v^k; ignored by other kinds)")
    p_build.add_argument("--shards", type=int, default=1,
                         help="sharded build: partition, build per shard, merge "
                         "(mergeable kinds only)")
    p_build.add_argument("--workers", type=int, default=None,
                         help="thread count for the sharded build (default serial)")
    p_build.add_argument("--out", required=True, help="output JSON path")

    p_info = sketch_sub.add_parser("info", help="inspect a saved sketch")
    p_info.add_argument("path")

    p_estimate = sketch_sub.add_parser(
        "estimate", help="print a saved sketch's estimate"
    )
    p_estimate.add_argument("path")

    p_merge = sketch_sub.add_parser(
        "merge", help="merge two or more same-seed saved sketches"
    )
    p_merge.add_argument("paths", nargs="+", help="input sketch JSON files")
    p_merge.add_argument("--out", required=True, help="output JSON path")

    sketch_sub.add_parser(
        "kinds", help="list registered sketch kinds and what each estimates"
    )

    p_store = sub.add_parser(
        "store", help="windowed sketch store: continuous maintenance over time"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_st_init = store_sub.add_parser(
        "init", help="create an empty windowed store file"
    )
    p_st_init.add_argument("--kind", default="tugofwar",
                           help="registered sketch kind for every bucket")
    p_st_init.add_argument("--bucket-width", type=int, required=True,
                           help="time units per bucket")
    p_st_init.add_argument("--origin", type=int, default=0,
                           help="timestamp where bucket 0 begins")
    p_st_init.add_argument("--s1", type=int, default=256)
    p_st_init.add_argument("--s2", type=int, default=5)
    p_st_init.add_argument("--seed", type=int, default=0)
    p_st_init.add_argument("--moment-k", type=int, default=2,
                           help="moment order for the fk_moments kind "
                           "(ignored by other kinds)")
    p_st_init.add_argument("--keyed", action="store_true",
                           help="create a keyed fleet: every key gets its "
                           "own windowed store built lazily from this "
                           "template (multi-tenant isolation)")
    p_st_init.add_argument("--max-keys", type=int, default=None,
                           help="with --keyed: refuse ingest for new keys "
                           "beyond this many (default unbounded)")
    p_st_init.add_argument("--retention", type=int, default=None,
                           help="buckets of history to keep hot; older spans "
                           "are compacted or evicted after each ingest")
    p_st_init.add_argument("--retention-policy", choices=("compact", "evict"),
                           default="compact")
    p_st_init.add_argument("--out", required=True, help="output JSON path")

    p_st_ingest = store_sub.add_parser(
        "ingest", help="route a timestamped batch into the store's buckets"
    )
    p_st_ingest.add_argument("path", help="store JSON file (updated in place)")
    p_st_ingest.add_argument("--events-file", required=True,
                             help="whitespace-separated columns: timestamp "
                             "value [signed count]")
    p_st_ingest.add_argument("--workers", type=int, default=None,
                             help="thread count for per-bucket loading")
    p_st_ingest.add_argument("--key", default=None,
                             help="stream key of the batch (required for "
                             "keyed fleets, refused by plain stores)")

    p_st_query = store_sub.add_parser(
        "query", help="merge-on-query estimate over a time window"
    )
    p_st_query.add_argument("path")
    p_st_query.add_argument("--from", dest="t0", type=int, required=True,
                            help="window start (inclusive)")
    p_st_query.add_argument("--until", dest="t1", type=int, required=True,
                            help="window end (exclusive)")
    p_st_query.add_argument("--align", choices=("strict", "outer"),
                            default="strict",
                            help="strict: window must hit bucket/span "
                            "boundaries; outer: expand to the covering spans")
    p_st_query.add_argument("--key", default=None,
                            help="stream key to query (required for keyed "
                            "fleets, refused by plain stores)")

    p_st_compact = store_sub.add_parser(
        "compact", help="fold old bucket spans into one merged span"
    )
    p_st_compact.add_argument("path")
    p_st_compact.add_argument("--before", type=int, default=None,
                              help="bucket boundary; spans entirely before it "
                              "are merged (default: all spans)")

    p_st_snapshot = store_sub.add_parser(
        "snapshot", help="checkpoint the store to another file"
    )
    p_st_snapshot.add_argument("path")
    p_st_snapshot.add_argument("--out", required=True,
                               help="checkpoint JSON path")

    p_st_info = store_sub.add_parser("info", help="inspect a store file")
    p_st_info.add_argument("path")

    p_plan = sub.add_parser(
        "plan", help="enumerate join plans over a seeded workload and "
        "compare estimator policies"
    )
    p_plan.add_argument("--shape", choices=("chain", "star", "clique"),
                        default="chain",
                        help="join-graph topology of the workload")
    p_plan.add_argument("--relations", type=int, default=6,
                        help="number of relations in the workload")
    p_plan.add_argument("--rows", type=int, default=4000,
                        help="base relation cardinality (the fact table of a "
                        "star is 20x this)")
    p_plan.add_argument("--policy",
                        choices=("exact", "sketch", "bound", "all"),
                        default="all",
                        help="cardinality-estimation backend(s) to plan under")
    p_plan.add_argument("--enumerator",
                        choices=("greedy", "dp-leftdeep", "dp-bushy"),
                        default="dp-bushy",
                        help="plan-enumeration algorithm")
    p_plan.add_argument("--k", type=int, default=1024,
                        help="signature words per relation (sketch/bound "
                        "policies)")
    p_plan.add_argument("--confidence", type=float, default=1.0,
                        help="error-bound multiplier of the bound-aware "
                        "policy (standard errors added to each estimate)")
    p_plan.add_argument("--allow-cross-products", action="store_true",
                        help="let plans join unconnected relation sets "
                        "(costed as cartesian products)")
    p_plan.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser(
        "serve", help="serve windowed estimates over TCP "
        "(line-JSON and binary frames on one port)"
    )
    p_serve.add_argument("path", help="store JSON file (loaded into memory)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = pick an ephemeral port)")
    p_serve.add_argument("--cache-entries", type=int, default=256,
                         help="merged-window LRU cache capacity")
    p_serve.add_argument("--max-requests", type=int, default=None,
                         help="exit after serving this many requests "
                         "(bounded smoke runs)")
    p_serve.add_argument("--shards", type=int, default=None, metavar="N",
                         help="serve a scale-out cluster: spawn N shard "
                         "worker processes on ephemeral ports (the store "
                         "file is the config template and must be empty; "
                         "ingest is value-hash routed, queries are "
                         "scatter-gathered)")
    p_serve.add_argument("--replication", type=int, default=1, metavar="R",
                         help="with --shards: workers per shard (replica "
                         "set); ingest fans out to every replica, queries "
                         "are hedged, and a dead replica is respawned and "
                         "restored from a healthy peer")
    p_serve.add_argument("--read-timeout", type=float, default=300.0,
                         help="per-connection read timeout in seconds "
                         "(0 disables); stalled clients cannot pin "
                         "handler threads")
    p_serve.add_argument("--protocol", choices=("auto", "json", "binary"),
                         default="auto",
                         help="wire protocols accepted: 'auto' sniffs each "
                         "connection's first byte and serves both; 'json' "
                         "or 'binary' restrict the port to one")
    p_serve.add_argument("--max-frame-bytes", type=int, default=None,
                         metavar="N",
                         help="refuse binary frames with payloads larger "
                         "than N bytes (default 64 MiB); also bounds a "
                         "JSON request line")

    p_cluster = sub.add_parser(
        "cluster", help="scale-out cluster: shard workers and wire tools"
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    p_cw = cluster_sub.add_parser(
        "worker", help="run one shard worker (spawned by `serve --shards`; "
        "announces a JSON ready line with its bound port)"
    )
    p_cw.add_argument("--config-json", required=True,
                      help="store template JSON: "
                      '{"spec": {...}, "bucket_width": ..., "origin": ...}')
    p_cw.add_argument("--host", default="127.0.0.1")
    p_cw.add_argument("--port", type=int, default=0,
                      help="TCP port (0 = pick an ephemeral port)")
    p_cw.add_argument("--cache-entries", type=int, default=256)
    p_cw.add_argument("--read-timeout", type=float, default=300.0,
                      help="per-connection read timeout in seconds "
                      "(0 disables)")
    p_cw.add_argument("--max-requests", type=int, default=None)
    p_cw.add_argument("--max-frame-bytes", type=int, default=None,
                      metavar="N",
                      help="refuse binary frames with payloads larger "
                      "than N bytes (default 64 MiB)")

    def add_connect(p: argparse.ArgumentParser) -> None:
        p.add_argument("--connect", required=True, metavar="HOST:PORT",
                       help="address of a serving front end or shard worker")

    p_ci = cluster_sub.add_parser(
        "info", help="one-line summary of a running cluster or worker"
    )
    add_connect(p_ci)

    p_ce = cluster_sub.add_parser(
        "estimate", help="windowed estimate over the wire"
    )
    add_connect(p_ce)
    p_ce.add_argument("--from", dest="t0", type=int, required=True,
                      help="window start (inclusive)")
    p_ce.add_argument("--until", dest="t1", type=int, required=True,
                      help="window end (exclusive)")
    p_ce.add_argument("--align", choices=("strict", "outer"), default="strict")
    p_ce.add_argument("--key", default=None,
                      help="stream key to query (keyed fleets only)")

    p_cb = cluster_sub.add_parser(
        "ingest-bench", help="synthetic ingest load over the wire, with "
        "throughput report"
    )
    add_connect(p_cb)
    p_cb.add_argument("--events", type=int, default=100_000,
                      help="total synthetic events to ingest")
    p_cb.add_argument("--batch", type=int, default=10_000,
                      help="events per ingest request")
    p_cb.add_argument("--buckets", type=int, default=64,
                      help="spread timestamps over this many buckets")
    p_cb.add_argument("--values", type=int, default=10_000,
                      help="value domain size")
    p_cb.add_argument("--key", default=None,
                      help="ingest every batch under this stream key "
                      "(keyed fleets only)")
    p_cb.add_argument("--seed", type=int, default=0)

    def add_scenario(p: argparse.ArgumentParser) -> None:
        p.add_argument("--shards", type=int, default=2,
                       help="shard count of the spawned fleet")
        p.add_argument("--replication", type=int, default=2,
                       help="workers per shard")
        p.add_argument("--events", type=int, default=20_000,
                       help="synthetic events to stream through the fleet")
        p.add_argument("--kind", default="tugofwar",
                       help="mergeable sketch kind for every worker")
        p.add_argument("--s1", type=int, default=32)
        p.add_argument("--s2", type=int, default=3)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--bucket-width", type=int, default=100)

    p_cr = cluster_sub.add_parser(
        "reshard", help="self-contained mid-stream reshard scenario: spawn "
        "a fleet, ingest half the stream, reshard N->M under load, ingest "
        "the rest (with deletions of pre-reshard inserts), and verify the "
        "merged answer is bit-identical to a monolithic store"
    )
    add_scenario(p_cr)
    p_cr.add_argument("--to", dest="to_shards", type=int, default=3,
                      help="shard count after the mid-stream reshard")

    p_cc = cluster_sub.add_parser(
        "chaos", help="self-contained fault-injection smoke: spawn a "
        "replicated fleet, ingest half the stream, kill or stall a worker, "
        "finish the stream, and verify recovery plus bit-identity against "
        "a monolithic store"
    )
    add_scenario(p_cc)
    p_cc.add_argument("--mode", choices=("kill", "stall"), default="kill",
                      help="kill: SIGKILL a replica mid-stream (exercises "
                      "respawn + restore); stall: SIGSTOP it (exercises "
                      "hedged reads)")

    return parser


def _describe_sketch(sketch, path: str) -> str:
    """One-line human summary of a loaded sketch."""
    n = getattr(sketch, "n", None)
    size = "" if n is None else f", n={n:,}"
    scheme = getattr(sketch, "rng_scheme", None)
    rng = "" if scheme is None else f", rng={scheme}"
    return (
        f"{path}: kind={sketch.kind}, words={sketch.memory_words:,}{size}"
        f"{rng}, estimate={sketch.estimate():,.1f}"
    )


def _read_text(path: str) -> str:
    """Read a file, turning OS failures into one-line CLI errors."""
    from pathlib import Path

    try:
        return Path(path).read_text()
    except FileNotFoundError:
        raise CliError(f"no such file: {path}") from None
    except OSError as exc:
        raise CliError(f"cannot read {path}: {exc}") from exc


def _default_sketch_params(
    kind: str,
    s1: int,
    s2: int,
    seed: int,
    initial_range: int | None = None,
    moment_k: int = 2,
) -> dict:
    """Constructor params for a registered kind from the CLI knobs.

    The one shared mapping behind ``sketch build`` and ``store init``,
    so a kind's parameter convention lives in a single place.  Kinds
    not special-cased here are assumed to take ``(s1, s2, seed)``; a
    kind that does not is reported as a :class:`CliError` by the
    callers' probe build.
    """
    if kind == "naivesampling":
        return {"s": s1 * s2, "seed": seed}
    if kind == "frequency":
        return {}
    params: dict = {"s1": s1, "s2": s2, "seed": seed}
    if kind == "fk_moments":
        params["k"] = moment_k
    if initial_range is not None and kind in (
        "samplecount", "samplecount-fast", "moments"
    ):
        params["initial_range"] = initial_range
    return params


def _load_int_table(path: str, what: str):
    """Load a whitespace-separated integer table as a 2-D int64 array.

    The one loader behind ``sketch build --values-file`` and
    ``store ingest --events-file``; OS and parse failures become
    one-line :class:`CliError` messages describing ``what`` was
    expected.
    """
    import numpy as np

    try:
        return np.loadtxt(path, dtype=np.int64, ndmin=2)
    except FileNotFoundError:
        raise CliError(f"no such file: {path}") from None
    except ValueError as exc:
        raise CliError(f"{path}: expected {what}: {exc}") from exc


def _sketch_main(args) -> int:
    """The `sketch` subcommand group: build / info / estimate / merge."""
    import json
    from pathlib import Path

    from .engine import (
        MergeUnsupportedError,
        SketchPayloadError,
        UnknownSketchKindError,
        dump_sketch,
        loads_sketch,
        sharded_build,
        sketch_kinds,
    )
    from .store import SketchSpec

    def load_file(path: str):
        try:
            return loads_sketch(_read_text(path))
        except (SketchPayloadError, UnknownSketchKindError) as exc:
            raise CliError(f"{path}: {exc}") from exc

    def save_file(sketch, path: str) -> None:
        Path(path).write_text(json.dumps(dump_sketch(sketch)))

    if args.sketch_command == "kinds":
        from .engine import sketch_descriptions
        from .kernels import kernel_info

        descriptions = sketch_descriptions()
        for kind in sketch_kinds():
            desc = descriptions.get(kind)
            print(f"{kind}: {desc}" if desc else kind)
        info = kernel_info(probe=True)
        print(
            f"kernel backend: {info['active']} "
            f"(available: {', '.join(info['available'])})"
        )
        from .streams.reservoir import DEFAULT_SAMPLER_RNG

        print(
            f"sampler rng: {DEFAULT_SAMPLER_RNG} "
            "(legacy pcg64 snapshots load and continue)"
        )
        return 0

    if args.sketch_command in ("info", "estimate"):
        sketch = load_file(args.path)
        if args.sketch_command == "estimate":
            print(f"{sketch.estimate():.6g}")
        else:
            print(_describe_sketch(sketch, args.path))
        return 0

    if args.sketch_command == "merge":
        sketches = [load_file(p) for p in args.paths]
        merged = sketches[0]
        try:
            for other in sketches[1:]:
                merged = merged.merge(other)
        except (MergeUnsupportedError, ValueError, TypeError) as exc:
            raise CliError(f"cannot merge: {exc}") from exc
        save_file(merged, args.out)
        print(_describe_sketch(merged, args.out))
        return 0

    if args.sketch_command == "build":
        if args.dataset is not None:
            from .data.registry import load_dataset

            try:
                values = load_dataset(args.dataset, rng=args.seed, scale=args.scale)
            except KeyError as exc:
                raise CliError(f"unknown data set: {exc.args[0]}") from exc
        else:
            values = _load_int_table(
                args.values_file, "whitespace-separated integers"
            ).reshape(-1)
        n = int(values.size)

        try:
            spec = SketchSpec(
                args.kind,
                _default_sketch_params(
                    args.kind, args.s1, args.s2, args.seed,
                    initial_range=max(n, 1), moment_k=args.moment_k,
                ),
            )
            sketch = spec.build()  # probe: the params must fit the kind
        except (UnknownSketchKindError, ValueError) as exc:
            # ValueError covers bad parameter values, e.g. an
            # UnsupportedMomentError for `--moment-k 0`.
            raise CliError(str(exc)) from exc
        except TypeError as exc:
            raise CliError(
                f"sketch kind {args.kind!r} does not accept the default "
                f"CLI parameters: {exc}"
            ) from exc
        if args.shards > 1:
            try:
                sketch = sharded_build(
                    spec.build, values,
                    num_shards=args.shards, max_workers=args.workers,
                )
            except MergeUnsupportedError as exc:
                raise CliError(f"cannot build sharded: {exc}") from exc
        else:
            sketch.update_from_stream(values)
        save_file(sketch, args.out)
        print(_describe_sketch(sketch, args.out))
        return 0

    raise AssertionError(
        f"unhandled sketch command {args.sketch_command!r}"
    )  # pragma: no cover


def _load_store_file(path: str):
    """Load a store JSON file under the one-line error contract.

    Shared by ``store`` and ``serve``: missing files, bad JSON, and
    corrupt/unknown-kind payloads all become :class:`CliError`.  The
    payload's ``kind`` field picks the store class — a plain
    :class:`~repro.store.windowed.WindowedSketchStore` or a
    ``"keyed-store"`` :class:`~repro.store.keyed.KeyedSketchStore`
    fleet — so every store-consuming command handles both.
    """
    import json

    from .engine import SketchPayloadError, UnknownSketchKindError
    from .store import KeyedSketchStore, WindowedSketchStore

    try:
        payload = json.loads(_read_text(path))
    except json.JSONDecodeError as exc:
        raise CliError(f"{path}: not valid JSON: {exc}") from exc
    keyed = isinstance(payload, dict) and payload.get("kind") == "keyed-store"
    store_cls = KeyedSketchStore if keyed else WindowedSketchStore
    try:
        return store_cls.from_dict(payload)
    except (SketchPayloadError, UnknownSketchKindError) as exc:
        raise CliError(f"{path}: {exc}") from exc


def _store_main(args) -> int:
    """The `store` subcommand group: init/ingest/query/compact/snapshot/info."""
    import json
    from pathlib import Path

    from .engine import MergeUnsupportedError, UnknownSketchKindError
    from .store import (
        KeyedSketchStore,
        SketchSpec,
        WindowAlignmentError,
        WindowedSketchStore,
    )

    load_store = _load_store_file

    def save_store(store, path: str) -> None:
        # Atomic replace: ingest/compact rewrite the only copy of the
        # store, and a mid-write interruption must not truncate it.
        import os

        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(store.to_dict()))
        os.replace(tmp, target)

    def describe(store, path: str) -> str:
        coverage = store.coverage
        window = "empty" if coverage is None else f"[{coverage[0]}, {coverage[1]})"
        keyed = (
            f", keys={store.key_count}"
            if isinstance(store, KeyedSketchStore)
            else ""
        )
        return (
            f"{path}: kind={store.spec.kind}{keyed}, "
            f"width={store.bucket_width}, "
            f"spans={store.span_count}, coverage={window}, "
            f"words={store.memory_words:,}"
        )

    def checked_key(store) -> str | None:
        """The --key flag validated against the store's shape."""
        key = getattr(args, "key", None)
        if isinstance(store, KeyedSketchStore):
            if key is None:
                raise CliError(
                    f"{args.path} is a keyed fleet; pass --key to pick "
                    "the stream"
                )
            return key
        if key is not None:
            raise CliError(
                f"{args.path} is a plain windowed store; --key only "
                "applies to keyed fleets (`store init --keyed`)"
            )
        return None

    if args.store_command == "init":
        if args.max_keys is not None and not args.keyed:
            raise CliError("--max-keys requires --keyed")
        try:
            spec = SketchSpec(
                args.kind,
                _default_sketch_params(
                    args.kind, args.s1, args.s2, args.seed,
                    moment_k=args.moment_k,
                ),
            )
            spec.build()  # probe: the params must fit the kind
            store_kwargs = dict(
                bucket_width=args.bucket_width,
                origin=args.origin,
                retention_buckets=args.retention,
                retention_policy=args.retention_policy,
            )
            store = (
                KeyedSketchStore(spec, max_keys=args.max_keys, **store_kwargs)
                if args.keyed
                else WindowedSketchStore(spec, **store_kwargs)
            )
        except (UnknownSketchKindError, ValueError) as exc:
            raise CliError(str(exc)) from exc
        except TypeError as exc:
            raise CliError(
                f"sketch kind {args.kind!r} does not accept the default "
                f"CLI parameters: {exc}"
            ) from exc
        save_store(store, args.out)
        print(describe(store, args.out))
        return 0

    store = load_store(args.path)

    if args.store_command == "ingest":
        key = checked_key(store)
        events = _load_int_table(
            args.events_file, "integer columns 'timestamp value [count]'"
        )
        if events.size == 0:
            raise CliError(f"{args.events_file}: no events")
        if events.shape[1] not in (2, 3):
            raise CliError(
                f"{args.events_file}: expected 2 or 3 columns "
                f"(timestamp value [count]), got {events.shape[1]}"
            )
        counts = events[:, 2] if events.shape[1] == 3 else None
        try:
            if key is not None:
                store.ingest(
                    key, events[:, 0], events[:, 1], counts=counts,
                    max_workers=args.workers,
                )
            else:
                store.ingest(
                    events[:, 0], events[:, 1], counts=counts,
                    max_workers=args.workers,
                )
        except (ValueError, NotImplementedError) as exc:
            # NotImplementedError: e.g. deletion counts routed to a
            # naive-sampling bucket (insertion-only by design).
            # ValueError also covers KeyCardinalityError (a fleet at
            # its --max-keys bound refusing a new key).
            raise CliError(f"{args.events_file}: {exc}") from exc
        save_store(store, args.path)
        print(f"ingested {events.shape[0]:,} events")
        print(describe(store, args.path))
        return 0

    if args.store_command == "query":
        key = checked_key(store)
        try:
            if key is not None:
                t0, t1 = store.window_bounds(
                    key, args.t0, args.t1, align=args.align
                )
                estimate = store.estimate(
                    key, args.t0, args.t1, align=args.align
                )
            else:
                t0, t1 = store.window_bounds(args.t0, args.t1, align=args.align)
                estimate = store.estimate(args.t0, args.t1, align=args.align)
        except (ValueError, MergeUnsupportedError) as exc:
            # WindowAlignmentError and empty/inverted windows are both
            # ValueErrors; either way a user-correctable window problem.
            raise CliError(str(exc)) from exc
        print(f"window [{t0}, {t1}): estimate={estimate:.6g}")
        return 0

    if args.store_command == "compact":
        try:
            folded = store.compact(before=args.before)
        except (WindowAlignmentError, TypeError) as exc:
            raise CliError(str(exc)) from exc
        save_store(store, args.path)
        print(f"compacted {folded} spans")
        print(describe(store, args.path))
        return 0

    if args.store_command == "snapshot":
        # Round-trip through from_dict so a checkpoint that cannot be
        # restored is never written.
        restored = type(store).from_dict(store.to_dict())
        save_store(restored, args.out)
        print(describe(restored, args.out))
        return 0

    if args.store_command == "info":
        print(describe(store, args.path))
        if isinstance(store, KeyedSketchStore):
            for key in store.keys:
                per_key = store.store_for(key)
                for t0, t1 in per_key.spans:
                    print(f"  key={key}: span [{t0}, {t1})")
        else:
            for t0, t1 in store.spans:
                print(f"  span [{t0}, {t1})")
        return 0

    raise AssertionError(
        f"unhandled store command {args.store_command!r}"
    )  # pragma: no cover


def _plan_workload(shape: str, n: int, rows: int, seed: int):
    """A seeded planning workload: (join graph, materialized relations).

    Deterministic in ``(shape, n, rows, seed)``.  Relations share one
    joining attribute (the paper's footnote-2 model); the *graph*
    restricts which pairs a query joins:

    * ``chain`` — overlapping half-window domains, so adjacent
      relations join and non-adjacent ones are (truly) disjoint;
    * ``star`` — one large skewed fact table, small dimensions over
      subdomains of varying width (so edge selectivities differ);
    * ``clique`` — everything over one shared domain with varying
      sizes and skew (the old all-pairs setting, made explicit).
    """
    import numpy as np

    from .planner import JoinGraph
    from .relational import Relation

    if n < 2:
        raise CliError(f"--relations must be at least 2, got {n}")
    if rows < 1:
        raise CliError(f"--rows must be positive, got {rows}")
    try:
        rng = np.random.default_rng(seed)
    except ValueError as exc:
        raise CliError(f"--seed: {exc}") from exc
    relations: dict[str, Relation] = {}

    if shape == "star":
        dims = [f"D{i}" for i in range(1, n)]
        domain = max(4 * rows, 16)
        fact_values = (rng.zipf(1.3, size=20 * rows) % domain).astype(np.int64)
        relations["F"] = Relation("F", fact_values)
        dim_sizes: dict[str, int] = {}
        for i, dim in enumerate(dims):
            width = max(int(domain * rng.uniform(0.05, 0.6)), 4)
            size = max(rows // (i + 2), 20)
            relations[dim] = Relation(
                dim, rng.integers(0, width, size=size).astype(np.int64)
            )
            dim_sizes[dim] = relations[dim].size
        graph = JoinGraph.star("F", relations["F"].size, dim_sizes)
        return graph, relations

    names = [f"R{i}" for i in range(n)]
    if shape == "chain":
        width = max(rows, 16)
        for i, name in enumerate(names):
            size = max(int(rows * rng.uniform(0.5, 1.5)), 10)
            lo = i * (width // 2)
            relations[name] = Relation(
                name, rng.integers(lo, lo + width, size=size).astype(np.int64)
            )
        graph = JoinGraph.chain({m: relations[m].size for m in names})
        return graph, relations

    if shape == "clique":
        domain = max(rows // 2, 16)
        for name in names:
            size = max(int(rows * rng.uniform(0.4, 1.6)), 10)
            exponent = float(rng.uniform(1.2, 1.9))
            relations[name] = Relation(
                name, (rng.zipf(exponent, size=size) % domain).astype(np.int64)
            )
        graph = JoinGraph.clique({m: relations[m].size for m in names})
        return graph, relations

    raise CliError(f"unknown workload shape: {shape!r}")


def _plan_main(args) -> int:
    """The `plan` command: enumerate and compare join plans."""
    from .planner import (
        BoundAwareCardinalities,
        CrossProductError,
        ExactCardinalities,
        SketchCardinalities,
        evaluate_plan,
        plan_join,
        render_plan,
    )
    from .relational import SignatureCatalog

    graph, relations = _plan_workload(
        args.shape, args.relations, args.rows, args.seed
    )
    exact = ExactCardinalities(relations)
    policies: dict[str, object] = {"exact": exact}
    selected = (
        ["exact", "sketch", "bound"] if args.policy == "all" else [args.policy]
    )
    if "sketch" in selected or "bound" in selected:
        try:
            catalog = SignatureCatalog(k=args.k, seed=args.seed)
        except ValueError as exc:
            raise CliError(f"--k: {exc}") from exc
        for name, rel in relations.items():
            catalog.register(name, rel.values_array())
        if "sketch" in selected:
            policies["sketch"] = SketchCardinalities(catalog)
        if "bound" in selected:
            try:
                policies["bound"] = BoundAwareCardinalities(
                    catalog, confidence=args.confidence
                )
            except ValueError as exc:
                raise CliError(str(exc)) from exc

    def enumerate_policy(estimator):
        try:
            return plan_join(
                graph,
                estimator,
                args.enumerator,
                allow_cross_products=args.allow_cross_products,
            )
        except CrossProductError as exc:
            raise CliError(f"{exc} (or pass --allow-cross-products)") from exc

    sizes = ", ".join(f"{m}={graph.size(m):,}" for m in graph.relations)
    print(
        f"workload: shape={args.shape}, relations={len(graph)}, "
        f"edges={len(graph.edges)}, seed={args.seed}"
    )
    print(f"cardinalities: {sizes}")
    print(f"enumerator: {args.enumerator}"
          + (" (cross products allowed)" if args.allow_cross_products else ""))

    exact_tree = enumerate_policy(exact)
    baseline = evaluate_plan(exact_tree, graph, exact).cost
    for policy in selected:
        tree = exact_tree if policy == "exact" else enumerate_policy(policies[policy])
        true_cost = evaluate_plan(tree, graph, exact).cost
        regret = true_cost / baseline if baseline > 0 else 1.0
        print(f"\npolicy={policy}")
        print(render_plan(tree))
        print(
            f"  estimated cost {tree.cost:,.6g}   true cost "
            f"{true_cost:,.6g}   regret vs exact-policy plan {regret:.3f}x"
        )
    return 0


def _read_timeout_of(args) -> float | None:
    """The server read timeout from the CLI knob (0 disables)."""
    timeout = getattr(args, "read_timeout", 300.0)
    if timeout is None or timeout == 0:
        return None
    if timeout < 0:
        raise CliError(f"--read-timeout must be >= 0, got {timeout}")
    return float(timeout)


def _serve_front_kwargs(args) -> dict:
    """The protocol/framing knobs shared by both serve front ends."""
    kwargs = {"protocol": args.protocol}
    if args.max_frame_bytes is not None:
        kwargs["max_frame_bytes"] = args.max_frame_bytes
    return kwargs


def _serve_main(args) -> int:
    """The `serve` command: expose a store as an estimation service.

    The front end is the asyncio :class:`~repro.service.aserver.
    EventLoopServer`: line-JSON and binary-frame clients on one port
    (``--protocol`` restricts it), pipelined connections, bounded
    frames.  Without ``--shards`` the store file is loaded into one
    in-process :class:`~repro.service.service.SketchService`.  With
    ``--shards N`` the file is a *config template*: N shard worker
    processes are spawned on ephemeral ports, and the front end serves
    the same wire protocols through a scatter–gather
    :class:`~repro.cluster.service.ClusterService`.
    """
    from .service import EventLoopServer, KeyedSketchService, SketchService
    from .store import KeyedSketchStore

    store = _load_store_file(args.path)
    read_timeout = _read_timeout_of(args)

    if args.shards is not None:
        return _serve_cluster(args, store, read_timeout)

    try:
        service = (
            KeyedSketchService(store, cache_entries=args.cache_entries)
            if isinstance(store, KeyedSketchStore)
            else SketchService(store, cache_entries=args.cache_entries)
        )
        server = EventLoopServer(
            service,
            address=(args.host, args.port),
            max_requests=args.max_requests,
            read_timeout=read_timeout,
            **_serve_front_kwargs(args),
        )
    except (ValueError, OSError) as exc:
        # Bad cache size or an unbindable host/port are user errors.
        raise CliError(str(exc)) from exc
    host, port = server.server_address[:2]
    keyed = (
        f", keys={store.key_count}"
        if isinstance(store, KeyedSketchStore)
        else ""
    )
    from .kernels import active_backend
    from .streams.reservoir import DEFAULT_SAMPLER_RNG

    print(
        f"serving {args.path} on {host}:{port} "
        f"(kind={store.spec.kind}{keyed}, spans={store.span_count}, "
        f"protocol={args.protocol}, kernel={active_backend()}, "
        f"sampler_rng={DEFAULT_SAMPLER_RNG})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
    stats = service.stats()
    print(
        f"served: cache hits={stats['hits']}, misses={stats['misses']}, "
        f"coalesced={stats['coalesced']}, invalidated={stats['invalidated']}"
    )
    return 0


def _serve_cluster(args, store, read_timeout) -> int:
    """`serve --shards N`: spawn the fleet, front it, tear it down."""
    from .cluster import (
        ClusterService,
        LocalCluster,
        ShardMergeUnsupportedError,
        ShardUnreachableError,
        store_config,
    )
    from .service import EventLoopServer

    if args.shards < 1:
        raise CliError(f"--shards must be >= 1, got {args.shards}")
    replication = getattr(args, "replication", 1)
    if replication < 1:
        raise CliError(f"--replication must be >= 1, got {replication}")
    if store.span_count:
        raise CliError(
            f"{args.path} already holds {store.span_count} spans; a cluster "
            "shards future ingest by value-hash and cannot split existing "
            "sketches — start from an empty store (`repro store init`)"
        )
    try:
        cluster = LocalCluster(
            store_config(store),
            args.shards,
            read_timeout=read_timeout,
            replication=replication,
        )
    except ShardUnreachableError as exc:
        raise CliError(f"cannot spawn shard workers: {exc}") from exc
    service = server = None
    try:
        try:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            server = EventLoopServer(
                service,
                address=(args.host, args.port),
                max_requests=args.max_requests,
                read_timeout=read_timeout,
                **_serve_front_kwargs(args),
            )
        except (ValueError, OSError, ShardMergeUnsupportedError) as exc:
            # Unbindable host/port, unreachable or inconsistent shards,
            # and non-mergeable kinds are all user-correctable.
            raise CliError(str(exc)) from exc
        host, port = server.server_address[:2]
        from .kernels import active_backend
        from .streams.reservoir import DEFAULT_SAMPLER_RNG

        print(
            f"serving {args.path} on {host}:{port} "
            f"(kind={store.spec.kind}, protocol={args.protocol}, "
            f"shards={cluster.num_shards}, "
            f"replication={cluster.replication}, "
            f"kernel={active_backend()}, "
            f"sampler_rng={DEFAULT_SAMPLER_RNG}: "
            f"{', '.join(cluster.addresses)})",
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            server.server_close()
        try:
            stats = service.stats()
            print(
                f"served: cache hits={stats['hits']}, "
                f"misses={stats['misses']}, shards={stats['shards']}"
            )
        except (OSError, ValueError):  # pragma: no cover - workers died
            pass
        return 0
    finally:
        if service is not None:
            service.close()
        cluster.shutdown()


def _parse_connect(text: str) -> tuple[str, int]:
    """Split HOST:PORT under the one-line error contract."""
    host, sep, port = str(text).rpartition(":")
    if not sep or not host or not port.isdigit():
        raise CliError(f"--connect must be HOST:PORT, got {text!r}")
    return host, int(port)


def _cluster_main(args) -> int:
    """The `cluster` subcommand group: worker / info / estimate / ingest-bench."""
    import json

    from .cluster import (
        ClusterConfigError,
        ShardProtocolError,
        ShardRequestError,
        ShardUnreachableError,
        run_worker,
    )
    from .cluster.client import ShardClient

    if args.cluster_command == "worker":
        try:
            config = json.loads(args.config_json)
        except json.JSONDecodeError as exc:
            raise CliError(f"--config-json is not valid JSON: {exc}") from exc
        try:
            return run_worker(
                config,
                host=args.host,
                port=args.port,
                cache_entries=args.cache_entries,
                read_timeout=_read_timeout_of(args),
                max_requests=args.max_requests,
                max_frame_bytes=args.max_frame_bytes,
            )
        except (ClusterConfigError, ValueError, OSError) as exc:
            # Corrupt templates, unknown kinds, unbindable ports.
            raise CliError(str(exc)) from exc

    if args.cluster_command in ("reshard", "chaos"):
        return _cluster_scenario(args)

    host, port = _parse_connect(args.connect)
    wire_errors = (ShardUnreachableError, ShardProtocolError, ShardRequestError)

    if args.cluster_command == "info":
        with ShardClient(host, port, timeout=10.0) as client:
            try:
                info = client.request({"op": "info"})
            except wire_errors as exc:
                raise CliError(str(exc)) from exc
        coverage = info.get("coverage")
        window = (
            "empty" if coverage is None else f"[{coverage[0]}, {coverage[1]})"
        )
        keyed = (
            f", keys={info.get('key_count', 0)}" if info.get("keyed") else ""
        )
        print(
            f"{args.connect}: kind={info['kind']}{keyed}, "
            f"width={info['bucket_width']}, spans={len(info['spans'])}, "
            f"coverage={window}, words={info['memory_words']:,}"
        )
        return 0

    if args.cluster_command == "estimate":
        request = {
            "op": "estimate",
            "from": args.t0,
            "until": args.t1,
            "align": args.align,
        }
        if args.key is not None:
            request["key"] = args.key
        with ShardClient(host, port, timeout=30.0) as client:
            try:
                response = client.request(request)
            except wire_errors as exc:
                raise CliError(str(exc)) from exc
        lo, hi = response["window"]
        print(f"window [{lo}, {hi}): estimate={response['estimate']:.6g}")
        return 0

    if args.cluster_command == "ingest-bench":
        import time

        import numpy as np

        if args.events < 1 or args.batch < 1 or args.buckets < 1:
            raise CliError(
                "--events, --batch, and --buckets must all be positive"
            )
        rng = np.random.default_rng(args.seed)
        with ShardClient(host, port, timeout=60.0) as client:
            try:
                info = client.request({"op": "info"})
                width = int(info["bucket_width"])
                origin = int(info["origin"])
                sent = 0
                start = time.perf_counter()
                while sent < args.events:
                    size = min(args.batch, args.events - sent)
                    timestamps = origin + rng.integers(
                        0, args.buckets * width, size=size
                    )
                    values = rng.integers(0, args.values, size=size)
                    payload = {
                        "op": "ingest",
                        "timestamps": timestamps.tolist(),
                        "values": values.tolist(),
                    }
                    if args.key is not None:
                        payload["key"] = args.key
                    client.request(payload)
                    sent += size
                elapsed = time.perf_counter() - start
            except wire_errors as exc:
                raise CliError(str(exc)) from exc
        rate = sent / elapsed if elapsed else float("inf")
        print(
            f"ingested {sent:,} events in {elapsed:.3f} s "
            f"({rate / 1e6:.2f} M events/s) over {args.connect}"
        )
        return 0

    raise AssertionError(
        f"unhandled cluster command {args.cluster_command!r}"
    )  # pragma: no cover


def _cluster_scenario(args) -> int:
    """`cluster reshard` / `cluster chaos`: self-contained fault drills.

    Both spawn a throwaway replicated fleet, stream a synthetic signed
    workload through it while applying the requested disruption
    (mid-stream N->M reshard, or a killed / stalled worker), and verify
    the scatter-gathered answer is **bit-identical** to a monolithic
    store fed the same stream.  A one-line JSON verdict goes to stdout;
    a divergent answer exits 2.
    """
    import json
    import time

    import numpy as np

    from .cluster import (
        ClusterConfigError,
        ClusterService,
        FaultInjector,
        LocalCluster,
        ShardMergeUnsupportedError,
        ShardProtocolError,
        ShardRequestError,
        ShardUnreachableError,
        store_config,
    )
    from .engine.registry import dump_sketch
    from .store.spec import SketchSpec
    from .store.windowed import WindowedSketchStore

    if args.shards < 1:
        raise CliError(f"--shards must be >= 1, got {args.shards}")
    if args.replication < 1:
        raise CliError(f"--replication must be >= 1, got {args.replication}")
    if args.events < 8:
        raise CliError(f"--events must be >= 8, got {args.events}")
    if args.bucket_width < 1:
        raise CliError(
            f"--bucket-width must be >= 1, got {args.bucket_width}"
        )
    if args.cluster_command == "chaos" and args.replication < 2:
        raise CliError(
            "chaos needs --replication >= 2: recovery restores the hurt "
            "replica from a healthy peer of the same shard"
        )
    if args.cluster_command == "reshard" and args.to_shards < 1:
        raise CliError(f"--to must be >= 1, got {args.to_shards}")

    params = {"s1": args.s1, "s2": args.s2, "seed": args.seed}
    if args.kind == "frequency":
        params = {}  # the exact histogram takes no size/seed knobs
    width = args.bucket_width
    try:
        spec = SketchSpec(args.kind, params)
        mono = WindowedSketchStore(spec, bucket_width=width)
    except (LookupError, TypeError, ValueError) as exc:
        raise CliError(str(exc)) from exc

    # The stream: first half lands in buckets [0, 8), the rest in
    # buckets [8, 16) plus deletions reversing a quarter of the
    # first-half inserts at their original timestamps — the shape that
    # exercises cross-epoch (and cross-fault) deletion routing.
    rng = np.random.default_rng(args.seed)
    half = args.events // 2
    ts1 = rng.integers(0, 8 * width, size=half, dtype=np.int64)
    vals1 = rng.integers(0, 1000, size=half, dtype=np.int64)
    ts2 = rng.integers(
        8 * width, 16 * width, size=args.events - half, dtype=np.int64
    )
    vals2 = rng.integers(0, 1000, size=args.events - half, dtype=np.int64)
    deletions = half // 4
    drop = rng.choice(half, size=deletions, replace=False)
    ts_rest = np.concatenate([ts2, ts1[drop]])
    vals_rest = np.concatenate([vals2, vals1[drop]])
    counts_rest = np.concatenate(
        [np.ones(len(ts2), dtype=np.int64),
         np.full(deletions, -1, dtype=np.int64)]
    )

    wire_errors = (
        ClusterConfigError,
        ShardMergeUnsupportedError,
        ShardProtocolError,
        ShardRequestError,
        ShardUnreachableError,
    )
    verdict = {
        "scenario": args.cluster_command,
        "kind": args.kind,
        "shards": args.shards,
        "replication": args.replication,
        "events": int(args.events),
        "deletions": int(deletions),
    }
    started = time.perf_counter()
    try:
        cluster = LocalCluster(
            store_config(mono), args.shards, replication=args.replication
        )
    except ShardUnreachableError as exc:
        raise CliError(f"cannot spawn shard workers: {exc}") from exc
    service = None
    injector = FaultInjector(cluster)
    try:
        try:
            service = ClusterService(
                cluster.replica_clients(), supervisor=cluster
            )
            mono.ingest(ts1, vals1)
            service.ingest(ts1, vals1)

            if args.cluster_command == "reshard":
                verdict["to_shards"] = int(args.to_shards)
                service.reshard(args.to_shards, cutover=8 * width)
                verdict["epochs"] = service.num_epochs
            elif args.mode == "kill":
                verdict["mode"] = "kill"
                injector.kill(0, args.replication - 1)
            else:
                verdict["mode"] = "stall"

            if args.cluster_command == "chaos" and args.mode == "stall":
                # Finish the stream first (ingest fans out to every
                # replica and would wait on the straggler), then stall
                # the primary and time one hedged read around it.
                mono.ingest(ts_rest, vals_rest, counts_rest)
                service.ingest(ts_rest, vals_rest, counts_rest)
                injector.stall(0, 0)
                t0 = time.perf_counter()
                fleet_sketch = service.query(0, 16 * width)
                verdict["hedged_query_s"] = round(
                    time.perf_counter() - t0, 6
                )
                injector.resume_all()
            else:
                mono.ingest(ts_rest, vals_rest, counts_rest)
                service.ingest(ts_rest, vals_rest, counts_rest)
                fleet_sketch = service.query(0, 16 * width)
            verdict["failed_replicas"] = [
                list(entry) for entry in service.failed_replicas
            ]
        except wire_errors as exc:
            raise CliError(str(exc)) from exc
        verdict["identical"] = (
            dump_sketch(fleet_sketch) == dump_sketch(mono.query(0, 16 * width))
        )
        verdict["elapsed_s"] = round(time.perf_counter() - started, 6)
        print(json.dumps(verdict), flush=True)
        if verdict["failed_replicas"]:
            raise CliError(
                "replicas still out of rotation after recovery: "
                f"{verdict['failed_replicas']}"
            )
        if not verdict["identical"]:
            raise CliError(
                "cluster answer diverged from the monolithic store "
                "(bit-identity check failed)"
            )
        return 0
    finally:
        injector.resume_all()
        if service is not None:
            service.close()
        cluster.shutdown()


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    try:
        return _dispatch(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    """Route one parsed command; raises :class:`CliError` on user errors."""
    if args.command == "sketch":
        return _sketch_main(args)
    if args.command == "store":
        return _store_main(args)
    if args.command == "plan":
        return _plan_main(args)
    if args.command == "serve":
        return _serve_main(args)
    if args.command == "cluster":
        return _cluster_main(args)

    # Imports deferred so `--help` stays instant.
    from .experiments import figures, tables
    from .experiments.metrics import convergence_from_sweep

    return _experiments_main(args, figures, tables, convergence_from_sweep)


def _from_registry(call):
    """Run one registry-keyed runner under the exit-2 user-error contract.

    The figure/data-set/algorithm registries raise ``KeyError`` with a
    user-facing sentence (``figures.figure``, ``run_figure``,
    ``load_dataset``, ``estimate_once``); at the CLI boundary those are
    user errors, not tracebacks.  Wrapped per call site — not around
    the whole dispatch — so a genuine mapping bug elsewhere still
    surfaces loudly.
    """
    try:
        return call()
    except KeyError as exc:
        raise CliError(exc.args[0] if exc.args else exc) from exc


def _experiments_main(args, figures, tables, convergence_from_sweep) -> int:
    """The reproduction commands: table1 / figure / convergence / ..."""
    if args.command == "table1":
        rows = tables.table1(seed=args.seed, scale=args.scale)
        print(tables.format_table1(rows))
        return 0

    if args.command == "figure":
        if args.number == 15:
            out = figures.figure15(estimators=1024, scale=args.scale, seed=args.seed)
            print(figures.format_figure15(out))
            return 0
        sweep = _from_registry(lambda: figures.figure(
            args.number,
            scale=args.scale,
            max_log2_s=args.max_log2_s,
            seed=args.seed,
            repeats=args.repeats,
        ))
        print(sweep.format_table())
        conv = convergence_from_sweep(sweep)
        print("\n15%-convergence:", ", ".join(f"{a}={s}" for a, s in conv.items()))
        return 0

    if args.command == "convergence":
        table = _from_registry(lambda: tables.convergence_table(
            datasets=args.datasets,
            scale=args.scale,
            max_log2_s=args.max_log2_s,
            seed=args.seed,
        ))
        print(tables.format_convergence_table(table))
        return 0

    if args.command == "section44":
        rows = tables.table_section44(
            seed=args.seed, scale=args.scale, use_paper_values=args.paper_values
        )
        print(tables.format_table_section44(rows))
        return 0

    if args.command == "sweep":
        sweep = _from_registry(lambda: figures.run_figure(
            args.dataset,
            scale=args.scale,
            max_log2_s=args.max_log2_s,
            seed=args.seed,
            repeats=args.repeats,
        ))
        print(sweep.format_table())
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
