"""Vectorised bulk ingestion: coalesce operations, feed sketches in batches.

The seed implementation fed every tracker one Python ``int`` at a
time — per-element ``insert`` calls dominated run time long before the
sketch arithmetic did.  This module is the single stream-feeding path
for the whole system:

* :func:`coalesce_operations` folds an insert/delete sequence into a
  signed frequency histogram — for *linear* sketches (tug-of-war,
  frequency vectors) applying the histogram is bit-identical to
  replaying the operations one by one, by linearity;
* :func:`ingest_stream` / :func:`ingest_operations` feed a stream or an
  operation sequence to any sketch through its fastest correct bulk
  path, falling back to per-element calls for foreign trackers;
* :func:`replay_batched` is the batched drop-in for
  :func:`repro.streams.operations.replay`: it answers every ``Query``
  operation exactly where it occurs, batching the updates between
  queries.

Batching strategy
-----------------
``sketch.is_linear`` selects the strategy:

* **linear** — all updates between two queries coalesce into one signed
  histogram applied via ``update_from_frequencies`` (order-free, exact);
* **order-sensitive** (sample-count and friends) — maximal runs of
  consecutive inserts are handed to ``update_from_stream`` (whose
  vectorised implementations are RNG-for-RNG identical to the
  per-element loop), and deletes are applied at their exact positions.

Either way the estimates returned at query points are identical to a
per-element replay; the equivalence is asserted in the test suite.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List

import numpy as np

from ..streams.operations import Delete, Insert, Operation, Query

__all__ = [
    "coalesce_operations",
    "ingest_stream",
    "ingest_operations",
    "replay_batched",
]


def coalesce_operations(
    operations: Iterable[Operation],
) -> tuple[np.ndarray, np.ndarray]:
    """Fold an operation sequence into a signed frequency histogram.

    Returns sorted parallel ``(values, counts)`` int64 arrays where
    ``counts[i]`` is (inserts − deletes) of ``values[i]``; values whose
    operations cancel exactly are dropped.  ``Query`` operations are
    ignored — use :func:`replay_batched` when query placement matters.
    """
    histogram: Counter = Counter()
    for op in operations:
        if isinstance(op, Insert):
            histogram[op.value] += 1
        elif isinstance(op, Delete):
            histogram[op.value] -= 1
        elif not isinstance(op, Query):
            raise TypeError(f"not an operation: {op!r}")
    items = sorted((v, c) for v, c in histogram.items() if c)
    if not items:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    values = np.fromiter((v for v, _ in items), dtype=np.int64, count=len(items))
    counts = np.fromiter((c for _, c in items), dtype=np.int64, count=len(items))
    return values, counts


def ingest_stream(sketch, values: np.ndarray | Iterable[int]) -> None:
    """Feed an insertion-only stream through the fastest correct path.

    Dispatch order: ``update_from_stream`` (every
    :class:`~repro.engine.protocol.Sketch` has one, vectorised where
    possible), then a per-element ``insert`` loop for foreign trackers.
    """
    arr = np.asarray(values, dtype=np.int64)
    bulk = getattr(sketch, "update_from_stream", None)
    if bulk is not None:
        bulk(arr)
        return
    for v in arr.tolist():
        sketch.insert(v)


def _flush_linear(sketch, pending: List[Operation], live: Counter) -> None:
    """Apply buffered updates to a linear sketch as one signed histogram.

    ``live`` carries the multiset state across flushes so the prefix
    validation of the tracking problem (a delete must reverse a
    remaining insert — the multiset starts empty) still raises exactly
    where a per-element replay would have surfaced the caller bug,
    even though the coalesced histogram alone can no longer show it.
    """
    for op in pending:
        if isinstance(op, Insert):
            live[op.value] += 1
        else:
            if live[op.value] <= 0:
                raise ValueError(
                    f"delete({op.value}) with no remaining occurrence"
                )
            live[op.value] -= 1
    values, counts = coalesce_operations(pending)
    if values.size:
        sketch.update_from_frequencies(values, counts)


def _flush_ordered(sketch, pending: List[Operation]) -> None:
    """Apply buffered updates preserving order: vectorised insert runs."""
    bulk = getattr(sketch, "update_from_stream", None)
    run: List[int] = []
    for op in pending:
        if isinstance(op, Insert):
            run.append(op.value)
            continue
        if run:
            if bulk is not None:
                bulk(np.asarray(run, dtype=np.int64))
            else:
                for v in run:
                    sketch.insert(v)
            run = []
        sketch.delete(op.value)
    if run:
        if bulk is not None:
            bulk(np.asarray(run, dtype=np.int64))
        else:
            for v in run:
                sketch.insert(v)


def _use_linear_path(sketch) -> bool:
    return bool(getattr(sketch, "is_linear", False)) and hasattr(
        sketch, "update_from_frequencies"
    )


def ingest_operations(sketch, operations: Iterable[Operation]) -> None:
    """Feed an insert/delete sequence through the batched pipeline.

    ``Query`` operations are ignored; use :func:`replay_batched` to
    collect estimates.  Linear sketches get the whole sequence as one
    signed histogram; order-sensitive sketches get vectorised insert
    runs with deletes at their exact positions.
    """
    ops = [op for op in operations if not isinstance(op, Query)]
    for op in ops:
        if not isinstance(op, (Insert, Delete)):
            raise TypeError(f"not an operation: {op!r}")
    if _use_linear_path(sketch):
        _flush_linear(sketch, ops, Counter())
    else:
        _flush_ordered(sketch, ops)


def replay_batched(sequence: Iterable[Operation], tracker) -> List[float]:
    """Drive a tracker through an operation sequence, batched.

    The batched equivalent of the seed's per-element ``replay``: the
    list of estimates produced at the ``Query`` operations is returned
    in order, and each query observes exactly the updates that precede
    it.  The tracker must expose ``insert``/``delete`` and either
    ``estimate`` or ``self_join_size``.
    """
    answer = getattr(tracker, "estimate", None) or getattr(
        tracker, "self_join_size", None
    )
    if answer is None:
        raise TypeError(f"{type(tracker).__name__} has no estimate/self_join_size")
    linear = _use_linear_path(tracker)
    live: Counter = Counter()  # spans flushes: multiset state from empty

    def flush(pending: List[Operation]) -> None:
        if linear:
            _flush_linear(tracker, pending, live)
        else:
            _flush_ordered(tracker, pending)

    results: List[float] = []
    pending: List[Operation] = []
    for op in sequence:
        if isinstance(op, (Insert, Delete)):
            pending.append(op)
        elif isinstance(op, Query):
            if pending:
                flush(pending)
                pending = []
            results.append(float(answer()))
        else:
            raise TypeError(f"not an operation: {op!r}")
    if pending:
        flush(pending)
    return results
