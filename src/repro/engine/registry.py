"""Kind-keyed serialization registry: one entry point for any sketch.

Every concrete :class:`~repro.engine.protocol.Sketch` registers itself
under a short string ``kind`` (``"tugofwar"``, ``"samplecount"``, ...).
:func:`dump_sketch` turns any registered sketch into a JSON-compatible
payload and :func:`load_sketch` reconstructs the right class from a
payload, so callers — the CLI's ``sketch save/load/merge`` commands,
checkpointing harnesses, networked workers shipping partial sketches —
never need to know the concrete type in advance.

Registration happens at class-definition time via the
:func:`register_sketch` decorator in each sketch's own module, so
importing :mod:`repro` populates the registry with every built-in
kind.  Unknown or malformed payloads raise dedicated error types
(:class:`UnknownSketchKindError`, :class:`SketchPayloadError`) with
actionable messages.
"""

from __future__ import annotations

import json
from typing import Mapping, Type, TypeVar

from .protocol import Sketch

__all__ = [
    "register_sketch",
    "sketch_kinds",
    "sketch_descriptions",
    "sketch_class",
    "dump_sketch",
    "load_sketch",
    "dumps_sketch",
    "loads_sketch",
    "UnknownSketchKindError",
    "SketchPayloadError",
]

_REGISTRY: dict[str, Type[Sketch]] = {}

S = TypeVar("S", bound=Type[Sketch])


class UnknownSketchKindError(KeyError):
    """Raised when a payload names a ``kind`` no sketch registered."""

    def __init__(self, kind: object):
        super().__init__(kind)
        self.kind = kind

    def __str__(self) -> str:
        known = ", ".join(sketch_kinds()) or "<none>"
        return (
            f"unknown sketch kind {self.kind!r}; registered kinds: {known}. "
            "Import the module defining the sketch before loading."
        )


class SketchPayloadError(ValueError):
    """Raised when a payload is structurally invalid or corrupt."""


def register_sketch(cls: S) -> S:
    """Class decorator: register ``cls`` under its ``kind`` attribute.

    The class must define a non-empty string ``kind`` and the
    ``to_dict`` / ``from_dict`` pair.  Re-registering a kind with a
    different class is an error (a silent overwrite would make
    ``load_sketch`` ambiguous).
    """
    kind = getattr(cls, "kind", None)
    if not isinstance(kind, str) or not kind:
        raise TypeError(
            f"{cls.__name__} must define a non-empty string `kind` to register"
        )
    existing = _REGISTRY.get(kind)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"sketch kind {kind!r} already registered to {existing.__name__}"
        )
    _REGISTRY[kind] = cls
    return cls


def sketch_kinds() -> list[str]:
    """All registered kinds, sorted."""
    return sorted(_REGISTRY)


def sketch_descriptions() -> dict[str, str]:
    """``{kind: one-line description}`` for every registered kind, sorted.

    The description is the class's optional ``describe`` attribute
    (empty string when a kind does not set one); ``repro sketch kinds``
    prints this table so new kinds are discoverable.
    """
    return {
        kind: str(getattr(_REGISTRY[kind], "describe", "") or "")
        for kind in sketch_kinds()
    }


def sketch_class(kind: str) -> Type[Sketch]:
    """The class registered under ``kind`` (raises if unknown)."""
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise UnknownSketchKindError(kind)
    return cls


def dump_sketch(sketch: Sketch) -> dict:
    """Serialise any registered sketch to a JSON-compatible payload.

    The payload's ``"kind"`` key routes :func:`load_sketch` back to the
    defining class; dumping an unregistered sketch is an error so a
    payload that cannot round-trip is never produced.
    """
    payload = sketch.to_dict()
    if not isinstance(payload, dict) or "kind" not in payload:
        raise SketchPayloadError(
            f"{type(sketch).__name__}.to_dict() must return a dict with a 'kind' key"
        )
    if payload["kind"] not in _REGISTRY:
        raise UnknownSketchKindError(payload["kind"])
    return payload


def load_sketch(payload: Mapping) -> Sketch:
    """Reconstruct a sketch of any registered kind from its payload.

    Raises
    ------
    SketchPayloadError
        If the payload is not a mapping, lacks a ``kind``, or its body
        is corrupt (missing fields, wrong shapes, bad types).
    UnknownSketchKindError
        If the named kind was never registered.
    """
    if not isinstance(payload, Mapping):
        raise SketchPayloadError(
            f"sketch payload must be a mapping, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind is None:
        raise SketchPayloadError("sketch payload has no 'kind' key")
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise UnknownSketchKindError(kind)
    try:
        return cls.from_dict(dict(payload))
    except (UnknownSketchKindError, SketchPayloadError):
        raise
    except (KeyError, ValueError, TypeError, IndexError) as exc:
        raise SketchPayloadError(
            f"corrupt payload for sketch kind {kind!r}: {exc}"
        ) from exc


def dumps_sketch(sketch: Sketch, **json_kwargs) -> str:
    """JSON-string convenience wrapper around :func:`dump_sketch`."""
    return json.dumps(dump_sketch(sketch), **json_kwargs)


def loads_sketch(text: str) -> Sketch:
    """JSON-string convenience wrapper around :func:`load_sketch`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SketchPayloadError(f"sketch payload is not valid JSON: {exc}") from exc
    return load_sketch(payload)
