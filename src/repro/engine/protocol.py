"""The common :class:`Sketch` contract every tracker implements.

Each of the paper's synopses — tug-of-war, sample-count (and its
fast-query and frequency-moment variants), naive-sampling, and the
exact :class:`~repro.core.frequency.FrequencyVector` ground truth —
supports the same core operations: process ``insert(v)`` / ``delete(v)``
updates, answer an ``estimate()`` query, and report its storage cost in
the paper's memory-word model.  This module captures that contract as
an abstract base class so that the ingestion pipeline
(:mod:`repro.engine.ingest`), the serialization registry
(:mod:`repro.engine.registry`), and the sharded build path
(:mod:`repro.engine.sharded`) can treat every sketch uniformly.

Beyond the abstract core, the base class supplies portable default
implementations of the bulk-update surface (``update``,
``update_from_frequencies``, ``update_from_stream``) in terms of the
per-element operations; concrete sketches override them with
vectorised fast paths where their structure allows (the tug-of-war
sketch folds a whole histogram in with chunked matrix products;
sample-count walks a stream in vectorised segments between reservoir
events; naive-sampling advances its reservoir by skip arithmetic).

Two class-level attributes describe a sketch's algebra:

``kind``
    The registry key under which the sketch serialises (``None`` for
    unregistered sketches).
``is_linear``
    True when the sketch state is a linear function of the frequency
    vector, i.e. any insert/delete sequence may be coalesced into a
    signed histogram and applied in any order with bit-identical
    results.  The ingestion pipeline keys its batching strategy off
    this flag.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

__all__ = ["Sketch", "MergeUnsupportedError", "as_histogram"]


def as_histogram(
    values: np.ndarray | Iterable[int], counts: np.ndarray | Iterable[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a ``(values, counts)`` histogram pair into int64 arrays.

    The shared precondition of every ``update_from_frequencies``
    implementation: both inputs convert to equal-length 1-D int64
    arrays.  Raises ``ValueError`` otherwise.
    """
    vals = np.asarray(values, dtype=np.int64)
    cnts = np.asarray(counts, dtype=np.int64)
    if vals.shape != cnts.shape or vals.ndim != 1:
        raise ValueError(
            f"values {vals.shape} and counts {cnts.shape} must be equal-length 1-D"
        )
    return vals, cnts


class MergeUnsupportedError(TypeError):
    """Raised when a sketch family does not support merging.

    Mergeability requires the sketch state of a union stream to be
    computable from the states of its parts; position-based samplers
    (sample-count, naive-sampling) do not have that property, while
    linear sketches (tug-of-war, frequency vectors) do.
    """


class Sketch(abc.ABC):
    """Abstract base class for all self-join / frequency trackers.

    Subclasses must implement the per-element update operations, the
    query, the memory accounting, and the serialization pair
    ``to_dict`` / ``from_dict``.  The bulk-update defaults below reduce
    to per-element calls and are overridden with vectorised
    implementations wherever the concrete sketch permits.
    """

    #: Registry key for serialization; set by concrete sketches.
    kind: str | None = None

    #: Whether the sketch is a linear function of the frequency vector.
    is_linear: bool = False

    #: Optional one-line human description surfaced by the registry
    #: (``repro sketch kinds``); concrete sketches override it.
    describe: str = ""

    __slots__ = ()

    # -- abstract core -----------------------------------------------------
    @abc.abstractmethod
    def insert(self, value: int) -> None:
        """Process insert(v): add one occurrence of ``value``."""

    @abc.abstractmethod
    def delete(self, value: int) -> None:
        """Process delete(v): remove one occurrence of ``value``."""

    @abc.abstractmethod
    def estimate(self) -> float:
        """Answer the query operation (the tracked quantity's estimate)."""

    @property
    @abc.abstractmethod
    def memory_words(self) -> int:
        """Storage cost in the paper's memory-word model."""

    @abc.abstractmethod
    def to_dict(self) -> dict:
        """Serialise the full sketch state to JSON-compatible types.

        The payload must carry the sketch's ``kind`` so
        :func:`repro.engine.registry.load_sketch` can dispatch.
        """

    @classmethod
    @abc.abstractmethod
    def from_dict(cls, payload: dict) -> "Sketch":
        """Reconstruct a sketch from :meth:`to_dict` output."""

    # -- bulk updates (portable defaults; override for speed) --------------
    def update(self, value: int, count: int) -> None:
        """Fold ``count`` occurrences of ``value`` in at once.

        Negative counts are batched deletions.  The default reduces to
        ``|count|`` per-element calls; linear sketches override this
        with an O(words) implementation.
        """
        c = int(count)
        for _ in range(c):
            self.insert(value)
        for _ in range(-c):
            self.delete(value)

    def update_from_frequencies(
        self, values: np.ndarray | Iterable[int], counts: np.ndarray | Iterable[int]
    ) -> None:
        """Fold a (possibly signed) frequency histogram into the sketch.

        The default applies :meth:`update` pairwise in the given order;
        vectorised sketches override it.
        """
        vals, cnts = as_histogram(values, counts)
        for v, c in zip(vals.tolist(), cnts.tolist()):
            self.update(v, c)

    def update_from_stream(self, values: np.ndarray | Iterable[int]) -> None:
        """Insert every element of a stream, in order.

        The default is a per-element loop, which is correct for every
        sketch (including order-sensitive samplers); concrete sketches
        override it with their vectorised bulk-ingestion path.
        """
        for v in np.asarray(values, dtype=np.int64).tolist():
            self.insert(v)

    # -- algebra ------------------------------------------------------------
    def merge(self, other: "Sketch") -> "Sketch":
        """Return the sketch of the union of the two underlying streams.

        Only mergeable families override this; the default raises
        :class:`MergeUnsupportedError` with a clear message.
        """
        raise MergeUnsupportedError(
            f"{type(self).__name__} does not support merging: its state is "
            "not a function of the union multiset (position-based sampling)"
        )
