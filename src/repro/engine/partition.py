"""Stream partitioners: one tested path for every scale-out split.

Two layers of the system split streams across workers: the in-process
sharded build (:func:`repro.engine.sharded.sharded_build`) and the
multi-process cluster router (:mod:`repro.cluster`).  Both need the
same contract — assign every element of a stream to exactly one of
``num_shards`` partitions, deterministically — but with different
policies:

* :class:`ContiguousPartitioner` splits by *position*: shard ``i``
  gets the ``i``-th contiguous piece, sizes differing by at most one.
  Order-preserving and single-pass; the right choice when any shard
  may hold any element (a one-shot parallel build of a linear sketch).
* :class:`HashPartitioner` splits by *value*: every occurrence of a
  value lands on the shard chosen by a seeded stable 64-bit mix of the
  value itself.  This is the cluster invariant — a deletion routes to
  the shard that holds the inserts it retracts, and re-partitioning a
  stream on another host (or another day) gives the same assignment,
  because the hash depends only on ``(value, seed, num_shards)``,
  never on Python's per-process hash randomisation.

Both produce *index* partitions (``split``), so callers can slice any
set of parallel arrays (values, timestamps, signed counts) with one
assignment, and the concatenation of the slices is a permutation of
the input — nothing dropped, nothing duplicated (property-tested).
"""

from __future__ import annotations

import abc
import hashlib
from typing import Iterable, List

import numpy as np

from .. import kernels

__all__ = [
    "Partitioner",
    "ContiguousPartitioner",
    "HashPartitioner",
    "stable_hash64",
    "key_digest",
    "partitioner_from_dict",
]


def _as_stream(values: np.ndarray | Iterable[int]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
    return arr


class Partitioner(abc.ABC):
    """Deterministic assignment of stream elements to ``num_shards`` parts."""

    def __init__(self, num_shards: int):
        self.num_shards = int(num_shards)
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")

    @abc.abstractmethod
    def assign(self, values: np.ndarray | Iterable[int]) -> np.ndarray:
        """The shard index of every element, as an int64 array in
        ``[0, num_shards)`` of the same length as ``values``."""

    def split(self, values: np.ndarray | Iterable[int]) -> List[np.ndarray]:
        """Per-shard index arrays into ``values`` (order-preserving).

        ``split(v)[i]`` indexes the elements assigned to shard ``i``,
        in their original stream order, so parallel arrays (values,
        timestamps, counts) can all be sliced with one assignment.
        """
        arr = _as_stream(values)
        shards = self.assign(arr)
        return [
            np.flatnonzero(shards == i) for i in range(self.num_shards)
        ]

    def to_dict(self) -> dict:
        """JSON-compatible configuration (enough to rebuild the policy)."""
        return {"policy": self.policy, "num_shards": self.num_shards}

    policy: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class ContiguousPartitioner(Partitioner):
    """Position-based split into contiguous, near-equal pieces.

    Matches ``np.array_split`` semantics: the first ``n % num_shards``
    shards get one extra element.  Preserves stream order within each
    shard and costs one pass.
    """

    policy = "contiguous"

    def assign(self, values: np.ndarray | Iterable[int]) -> np.ndarray:
        """Shard indices by position: the i-th near-equal run is shard i."""
        arr = _as_stream(values)
        n = arr.size
        base, extra = divmod(n, self.num_shards)
        sizes = np.full(self.num_shards, base, dtype=np.int64)
        sizes[:extra] += 1
        return np.repeat(np.arange(self.num_shards, dtype=np.int64), sizes)

    def split(self, values: np.ndarray | Iterable[int]) -> List[np.ndarray]:
        """Contiguous index ranges — equivalent to ``np.array_split``."""
        arr = _as_stream(values)
        base, extra = divmod(arr.size, self.num_shards)
        sizes = np.full(self.num_shards, base, dtype=np.int64)
        sizes[:extra] += 1
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        return [
            np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
            for i in range(self.num_shards)
        ]


def stable_hash64(
    values: np.ndarray | Iterable[int], seed: int = 0
) -> np.ndarray:
    """A process-independent 64-bit hash of each int64 value.

    The splitmix64 finalizer over ``value + (seed + 1) * gamma``:
    deterministic in ``(value, seed)`` alone, vectorised, and
    avalanche-complete (every input bit flips ~half the output bits),
    unlike Python's ``hash`` which is salted per process for strings
    and the identity for small ints.  Dispatches through
    :func:`repro.kernels.splitmix64`; every backend wraps mod 2^64
    identically, so the output is bit-identical to the historical
    pure-numpy implementation.
    """
    return kernels.splitmix64(_as_stream(values), seed=seed)


def key_digest(key: str) -> int:
    """A process-independent 64-bit digest of a fleet key string.

    Folds a key into the value-routing hash: the keyed cluster routes
    an event by ``stable_hash64(value, seed=key_digest(key))`` fed to
    the shard partitioner, so assignment depends on the *(key, value)*
    pair.  Every occurrence of one pair — inserts and the deletions
    that retract them — lands on the same shard, while the same value
    under different keys spreads across shards (per-key load is not
    pinned to per-value hot spots).  blake2b is unsalted and
    byte-deterministic, so any host, any day, computes the same route.
    """
    if not isinstance(key, str) or not key:
        raise ValueError(f"key must be a non-empty string, got {key!r}")
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "little"
    )


class HashPartitioner(Partitioner):
    """Stable value-hash split: all occurrences of a value share a shard.

    The cluster-routing invariant: because assignment depends only on
    ``(value, seed, num_shards)``, per-shard sub-streams are a
    *value partition* of the whole stream — so per-shard linear
    sketches sum to the monolithic sketch, and a retraction routes to
    the shard holding the inserts it reverses.
    """

    policy = "hash"

    def __init__(self, num_shards: int, seed: int = 0):
        super().__init__(num_shards)
        self.seed = int(seed)

    def assign(self, values: np.ndarray | Iterable[int]) -> np.ndarray:
        """Shard indices by stable value hash: ``mix(v, seed) % shards``.

        The fused :func:`repro.kernels.shard_assign` kernel computes
        hash-and-modulo in one pass (no intermediate hash array on
        compiled backends).
        """
        return kernels.shard_assign(
            _as_stream(values), seed=self.seed, num_shards=self.num_shards
        )

    def to_dict(self) -> dict:
        """JSON-compatible configuration, including the hash seed."""
        payload = super().to_dict()
        payload["seed"] = self.seed
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashPartitioner(num_shards={self.num_shards}, seed={self.seed})"
        )


def partitioner_from_dict(payload: dict) -> Partitioner:
    """Rebuild a partitioner from :meth:`Partitioner.to_dict` output."""
    policy = payload.get("policy")
    if policy == "contiguous":
        return ContiguousPartitioner(int(payload["num_shards"]))
    if policy == "hash":
        return HashPartitioner(
            int(payload["num_shards"]), seed=int(payload.get("seed", 0))
        )
    raise ValueError(f"unknown partitioner policy: {policy!r}")
