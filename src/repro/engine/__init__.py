"""The unified sketch engine: protocol, registry, ingestion, sharding.

This package is the system layer above the individual algorithms of
:mod:`repro.core`:

* :mod:`repro.engine.protocol` — the :class:`Sketch` contract every
  tracker implements (updates, queries, bulk loads, merge, dict
  round-trip);
* :mod:`repro.engine.registry` — kind-keyed serialization, so any
  sketch persists and reloads through one
  :func:`load_sketch` / :func:`dump_sketch` entry point;
* :mod:`repro.engine.ingest` — vectorised bulk ingestion: operation
  coalescing into signed histograms and the batched ``replay`` used by
  the streams, relational, and experiment layers;
* :mod:`repro.engine.partition` — stream partitioners (contiguous and
  stable value-hash), the one split policy shared by the in-process
  sharded build and the multi-process cluster router;
* :mod:`repro.engine.sharded` — partition / build-per-shard / merge
  construction for mergeable sketches, serial or thread-parallel.
"""

from .ingest import (
    coalesce_operations,
    ingest_operations,
    ingest_stream,
    replay_batched,
)
from .partition import (
    ContiguousPartitioner,
    HashPartitioner,
    Partitioner,
    key_digest,
    partitioner_from_dict,
    stable_hash64,
)
from .protocol import MergeUnsupportedError, Sketch
from .registry import (
    SketchPayloadError,
    UnknownSketchKindError,
    dump_sketch,
    dumps_sketch,
    load_sketch,
    loads_sketch,
    register_sketch,
    sketch_class,
    sketch_descriptions,
    sketch_kinds,
)
from .sharded import merge_sketches, shard_stream, sharded_build

__all__ = [
    "Sketch",
    "MergeUnsupportedError",
    "register_sketch",
    "sketch_kinds",
    "sketch_descriptions",
    "sketch_class",
    "dump_sketch",
    "load_sketch",
    "dumps_sketch",
    "loads_sketch",
    "UnknownSketchKindError",
    "SketchPayloadError",
    "coalesce_operations",
    "ingest_stream",
    "ingest_operations",
    "replay_batched",
    "shard_stream",
    "merge_sketches",
    "sharded_build",
    "Partitioner",
    "ContiguousPartitioner",
    "HashPartitioner",
    "stable_hash64",
    "key_digest",
    "partitioner_from_dict",
]
