"""Sharded sketch construction: partition, build per shard, merge.

Mergeable sketches built from the *same seed* over disjoint sub-streams
combine into the sketch of the whole stream (for the tug-of-war sketch
the counters simply add — linearity again).  That makes the build
embarrassingly parallel: split a stream into shards, bulk-load one
sketch per shard, and :meth:`~repro.engine.protocol.Sketch.merge` the
results.  The merged sketch is **bit-identical** to a single-shot
build, which the test suite and ``benchmarks/bench_engine.py`` verify.

How the stream is split is a policy, factored out as
:class:`~repro.engine.partition.Partitioner`: the default contiguous
split is right for a one-shot parallel build, while the stable
value-hash split is the invariant the multi-process cluster layer
(:mod:`repro.cluster`) routes on.  Both give bit-identical merged
results for linear sketches — a value partition and a position
partition of the same multiset sum to the same counters.

Shard workers run either serially (each shard still takes the
vectorised bulk path, so this is already far faster than per-element
ingestion) or on a :class:`concurrent.futures.ThreadPoolExecutor` —
the heavy lifting is numpy matrix products that release the GIL, so
threads scale without the pickling constraints of process pools.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

import numpy as np

from .partition import Partitioner
from .protocol import Sketch

__all__ = ["shard_stream", "merge_sketches", "sharded_build"]

S = TypeVar("S", bound=Sketch)


def shard_stream(
    values: np.ndarray | Iterable[int], num_shards: int
) -> List[np.ndarray]:
    """Split a stream into ``num_shards`` contiguous pieces.

    Contiguous splitting preserves stream order within each shard
    (irrelevant for linear sketches, but it keeps the partition
    meaningful for order-aware consumers) and costs one pass.  Shard
    sizes differ by at most one element; empty shards are possible when
    the stream is shorter than the shard count.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
    # np.array_split is the zero-copy fast path for the contiguous
    # policy; the partitioner tests assert it slices identically to
    # ContiguousPartitioner.split, so the semantics live in one place.
    return [np.ascontiguousarray(piece) for piece in np.array_split(arr, num_shards)]


def merge_sketches(sketches: Sequence[S]) -> S:
    """Combine a non-empty sequence of same-seed sketches with ``merge``.

    The combination is a *balanced tree*, not a left fold: adjacent
    pairs merge, then pairs of pairs, so ``n`` inputs take ``ceil(log2
    n)`` rounds of depth instead of ``n - 1`` sequential merges.  Wide
    scatter–gather merges (one sketch per cluster shard) therefore do
    not degrade to O(n) sequential work chains.  Merging is associative
    for every mergeable kind (integer counter addition / histogram
    union), so the result is bit-identical to the old left fold — the
    engine tests assert exactly that.
    """
    if not sketches:
        raise ValueError("cannot merge an empty sequence of sketches")
    level: List[S] = list(sketches)
    while len(level) > 1:
        paired = [
            level[i].merge(level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def sharded_build(
    factory: Callable[[], S],
    values: np.ndarray | Iterable[int],
    num_shards: int = 4,
    max_workers: int | None = None,
    partitioner: Partitioner | None = None,
) -> S:
    """Build a sketch of ``values`` by sharding, bulk-loading, merging.

    Parameters
    ----------
    factory:
        Zero-argument callable producing a fresh, empty sketch.  Every
        call **must** produce sketches built from the same seed, or the
        merge step will (correctly) refuse to combine them.
    values:
        The insertion-only stream to sketch.
    num_shards:
        Number of partitions (also the number of worker sketches).
        Ignored when an explicit ``partitioner`` is given.
    max_workers:
        ``None`` builds the shards serially (each still vectorised);
        a positive integer uses that many threads.
    partitioner:
        The split policy; defaults to a
        :class:`~repro.engine.partition.ContiguousPartitioner` over
        ``num_shards``.  Pass a
        :class:`~repro.engine.partition.HashPartitioner` to build under
        the cluster's value-partition invariant — for linear sketches
        the merged result is bit-identical either way.

    Returns
    -------
    The merged sketch — bit-identical to ``factory()`` bulk-loaded with
    the whole stream, for any linear sketch.
    """
    if partitioner is None:
        shards = shard_stream(values, num_shards)
    else:
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
        shards = [
            np.ascontiguousarray(arr[idx]) for idx in partitioner.split(arr)
        ]

    def build_one(shard: np.ndarray) -> S:
        sketch = factory()
        sketch.update_from_stream(shard)
        return sketch

    if max_workers is None:
        parts = [build_one(shard) for shard in shards]
    else:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            parts = list(pool.map(build_one, shards))
    return merge_sketches(parts)
