"""Sharded sketch construction: partition, build per shard, merge.

Mergeable sketches built from the *same seed* over disjoint sub-streams
combine into the sketch of the whole stream (for the tug-of-war sketch
the counters simply add — linearity again).  That makes the build
embarrassingly parallel: split a stream into shards, bulk-load one
sketch per shard, and :meth:`~repro.engine.protocol.Sketch.merge` the
results.  The merged sketch is **bit-identical** to a single-shot
build, which the test suite and ``benchmarks/bench_engine.py`` verify.

Shard workers run either serially (each shard still takes the
vectorised bulk path, so this is already far faster than per-element
ingestion) or on a :class:`concurrent.futures.ThreadPoolExecutor` —
the heavy lifting is numpy matrix products that release the GIL, so
threads scale without the pickling constraints of process pools.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from functools import reduce
from typing import Callable, Iterable, List, Sequence, TypeVar

import numpy as np

from .protocol import Sketch

__all__ = ["shard_stream", "merge_sketches", "sharded_build"]

S = TypeVar("S", bound=Sketch)


def shard_stream(
    values: np.ndarray | Iterable[int], num_shards: int
) -> List[np.ndarray]:
    """Split a stream into ``num_shards`` contiguous pieces.

    Contiguous splitting preserves stream order within each shard
    (irrelevant for linear sketches, but it keeps the partition
    meaningful for order-aware consumers) and costs one pass.  Shard
    sizes differ by at most one element; empty shards are possible when
    the stream is shorter than the shard count.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"stream must be 1-D, got shape {arr.shape}")
    return [np.ascontiguousarray(piece) for piece in np.array_split(arr, num_shards)]


def merge_sketches(sketches: Sequence[S]) -> S:
    """Left-fold a non-empty sequence of same-seed sketches with ``merge``."""
    if not sketches:
        raise ValueError("cannot merge an empty sequence of sketches")
    return reduce(lambda acc, sk: acc.merge(sk), sketches)


def sharded_build(
    factory: Callable[[], S],
    values: np.ndarray | Iterable[int],
    num_shards: int = 4,
    max_workers: int | None = None,
) -> S:
    """Build a sketch of ``values`` by sharding, bulk-loading, merging.

    Parameters
    ----------
    factory:
        Zero-argument callable producing a fresh, empty sketch.  Every
        call **must** produce sketches built from the same seed, or the
        merge step will (correctly) refuse to combine them.
    values:
        The insertion-only stream to sketch.
    num_shards:
        Number of partitions (also the number of worker sketches).
    max_workers:
        ``None`` builds the shards serially (each still vectorised);
        a positive integer uses that many threads.

    Returns
    -------
    The merged sketch — bit-identical to ``factory()`` bulk-loaded with
    the whole stream, for any linear sketch.
    """
    shards = shard_stream(values, num_shards)

    def build_one(shard: np.ndarray) -> S:
        sketch = factory()
        sketch.update_from_stream(shard)
        return sketch

    if max_workers is None:
        parts = [build_one(shard) for shard in shards]
    else:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            parts = list(pool.map(build_one, shards))
    return merge_sketches(parts)
