"""Synthetic spatial coordinate streams (Table 1's xout1 / yout1 rows).

The paper's geometric data sets are x- and y-coordinates of a spatial
point set (provided by Ken Church and Christos Faloutsos).  The
coordinate streams have a distinctive frequency profile: ~12,000
distinct coordinate values, but a self-join size (9.2e7 at
n = 142,732) that implies an *effective support* of only a couple of
hundred values — i.e. a modest set of heavily-populated "grid lines"
(streets, scan lines) over a broad low-frequency background.

We model exactly that: a two-component mixture of (a) a Zipf-weighted
set of popular grid coordinates carrying ``popular_mass`` of the
stream, and (b) a uniform background over a wide quantised range.  The
defaults calibrate (n, t, SJ) to Table 1; the substitution is recorded
in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from .synthetic import zipf

__all__ = ["spatial_points", "spatial_coordinates"]


def spatial_coordinates(
    n: int = 142_732,
    popular: int = 200,
    background: int = 12_500,
    popular_mass: float = 0.31,
    value_range: int = 65_536,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """One coordinate stream (the paper's xout1 or yout1).

    Parameters
    ----------
    n:
        Stream length.
    popular:
        Number of heavy "grid line" coordinate values.
    background:
        Number of distinct background coordinate values.
    popular_mass:
        Fraction of points lying on a popular coordinate (Zipf(1.0)
        weighted among the popular values).
    value_range:
        Coordinates are quantised integers in [0, value_range).
    rng:
        Generator or seed.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if popular < 1 or background < 1:
        raise ValueError("popular and background counts must be >= 1")
    if not 0.0 <= popular_mass <= 1.0:
        raise ValueError(f"popular_mass must be in [0, 1], got {popular_mass}")
    if value_range < popular + background:
        raise ValueError(
            f"value_range={value_range} too small for "
            f"{popular} + {background} distinct coordinates"
        )
    gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    # Distinct coordinate values: popular grid lines spread across the
    # range, background values off the grid.
    all_coords = gen.choice(value_range, size=popular + background, replace=False)
    popular_coords = all_coords[:popular].astype(np.int64)
    background_coords = all_coords[popular:].astype(np.int64)

    on_grid = gen.random(n) < popular_mass
    n_pop = int(on_grid.sum())
    out = np.empty(n, dtype=np.int64)
    if n_pop:
        ranks = zipf(n_pop, popular, alpha=1.0, rng=gen) - 1
        out[on_grid] = popular_coords[ranks]
    n_bg = n - n_pop
    if n_bg:
        out[~on_grid] = background_coords[gen.integers(0, background, size=n_bg)]
    return out


def spatial_points(
    n: int = 142_732,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """A full synthetic spatial point set: (x-stream, y-stream).

    The two coordinate streams are generated with independent
    sub-streams of the supplied RNG, mirroring how xout1 and yout1 are
    two views of one point set with nearly identical statistics
    (Table 1: t = 12,113 vs 12,140; SJ = 9.17e7 vs 9.46e7).
    """
    gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    x = spatial_coordinates(n=n, rng=gen)
    y = spatial_coordinates(n=n, rng=gen)
    return x, y
