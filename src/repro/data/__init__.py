"""Data-set generators reproducing Table 1 of the paper.

Thirteen data sets spanning a factor of 50 in lengths, three orders of
magnitude in domain sizes, and nearly four orders of magnitude in
self-join sizes:

* seven **statistical** sets (:mod:`repro.data.synthetic`): Zipf(1.0),
  Zipf(1.5), uniform, two multifractals (p-model), self-similar
  (80/20-law), Poisson;
* three **text** sets (:mod:`repro.data.text`): synthetic
  Zipf-Mandelbrot word streams standing in for the Wuthering Heights /
  Genesis / Brown-corpus excerpts (substitution documented in
  DESIGN.md);
* two **geometric** sets (:mod:`repro.data.spatial`): x/y coordinate
  streams of a synthetic spatial point set;
* one **artificial** set (:mod:`repro.data.adversarial`): the `path`
  data set built to separate sample-count from tug-of-war, plus the
  lower-bound gadgets of Lemma 2.3 and Theorem 4.3.

:mod:`repro.data.registry` maps data-set names to generators and to the
paper's Table 1 targets, and is what the experiment harness iterates.
"""

from .adversarial import (
    lemma23_pair,
    path_dataset,
    theorem43_instance,
)
from .registry import DATASETS, DatasetSpec, load_dataset
from .spatial import spatial_coordinates, spatial_points
from .synthetic import (
    multifractal,
    poisson,
    self_similar,
    uniform,
    zipf,
)
from .text import synthetic_text

__all__ = [
    "zipf",
    "uniform",
    "multifractal",
    "self_similar",
    "poisson",
    "synthetic_text",
    "spatial_points",
    "spatial_coordinates",
    "path_dataset",
    "lemma23_pair",
    "theorem43_instance",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
]
