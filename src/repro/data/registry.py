"""Registry mapping Table 1 data-set names to generators and targets.

Each :class:`DatasetSpec` records the paper's reported characteristics
(length, domain size, self-join size, type, figure number) alongside a
generator closure, so the experiment harness can iterate "all Table 1
data sets" and the table-1 benchmark can print paper-vs-measured rows.

Scaling: ``load_dataset(name, scale=0.1)`` shrinks the stream length
(for quick CI runs) while keeping every distributional parameter fixed;
``scale=1.0`` reproduces the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .adversarial import path_dataset
from .spatial import spatial_coordinates
from .synthetic import multifractal, poisson, self_similar, uniform, zipf
from .text import synthetic_text

__all__ = ["DatasetSpec", "DATASETS", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 1 row: paper targets plus our generator."""

    name: str
    #: generator(n, rng) -> int64 stream of length n
    generator: Callable[[int, np.random.Generator], np.ndarray]
    paper_length: int
    paper_domain: int
    paper_self_join: float
    kind: str  # statistical | text | geometric | artificial
    figure: int

    def load(
        self, rng: np.random.Generator | int | None = None, scale: float = 1.0
    ) -> np.ndarray:
        """Generate the stream at ``scale`` times the paper length."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        gen = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        n = max(1, int(round(self.paper_length * scale)))
        return self.generator(n, gen)


def _gen_zipf10(n: int, rng: np.random.Generator) -> np.ndarray:
    return zipf(n, 10_000, alpha=1.0, rng=rng)


def _gen_zipf15(n: int, rng: np.random.Generator) -> np.ndarray:
    return zipf(n, 10_000, alpha=1.5, rng=rng)


def _gen_uniform(n: int, rng: np.random.Generator) -> np.ndarray:
    return uniform(n, 32_768, rng=rng)


def _gen_mf2(n: int, rng: np.random.Generator) -> np.ndarray:
    return multifractal(n, 0.2, 12, rng=rng)


def _gen_mf3(n: int, rng: np.random.Generator) -> np.ndarray:
    return multifractal(n, 0.3, 12, rng=rng)


def _gen_selfsimilar(n: int, rng: np.random.Generator) -> np.ndarray:
    return self_similar(n, 200, h=0.91, rng=rng)


def _gen_poisson(n: int, rng: np.random.Generator) -> np.ndarray:
    return poisson(n, lam=20.0, rng=rng)


def _gen_wuther(n: int, rng: np.random.Generator) -> np.ndarray:
    return synthetic_text(n, vocabulary=13_000, q=0.9, rng=rng)


def _gen_genesis(n: int, rng: np.random.Generator) -> np.ndarray:
    return synthetic_text(n, vocabulary=3_200, q=0.7, rng=rng)


def _gen_brown2(n: int, rng: np.random.Generator) -> np.ndarray:
    return synthetic_text(n, vocabulary=55_000, q=0.6, rng=rng)


def _gen_xout1(n: int, rng: np.random.Generator) -> np.ndarray:
    return spatial_coordinates(n=n, rng=rng)


def _gen_yout1(n: int, rng: np.random.Generator) -> np.ndarray:
    # Independent draw with the same profile; Table 1's yout1 differs
    # from xout1 only marginally (t 12,140 vs 12,113; SJ 9.46e7 vs 9.17e7).
    return spatial_coordinates(n=n, rng=rng)


def _gen_path(n: int, rng: np.random.Generator) -> np.ndarray:
    # Preserve the 40000:800 singleton:heavy proportion under scaling.
    singletons = max(1, int(round(n * 40_000 / 40_800)))
    heavy = max(1, n - singletons)
    return path_dataset(singletons=singletons, heavy_count=heavy, rng=rng)


#: Table 1, in paper order.
DATASETS: Mapping[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("zipf1.0", _gen_zipf10, 500_000, 9_994, 4.30e9, "statistical", 2),
        DatasetSpec("zipf1.5", _gen_zipf15, 120_000, 2_184, 2.59e9, "statistical", 3),
        DatasetSpec("uniform", _gen_uniform, 1_000_000, 32_768, 3.15e7, "statistical", 4),
        DatasetSpec("mf2", _gen_mf2, 19_998, 1_693, 3.98e6, "statistical", 5),
        DatasetSpec("mf3", _gen_mf3, 19_968, 2_881, 6.19e5, "statistical", 6),
        DatasetSpec(
            "selfsimilar", _gen_selfsimilar, 120_000, 200, 3.41e9, "statistical", 7
        ),
        DatasetSpec("poisson", _gen_poisson, 120_000, 39, 9.12e8, "statistical", 8),
        DatasetSpec("wuther", _gen_wuther, 120_952, 10_546, 1.12e8, "text", 9),
        DatasetSpec("genesis", _gen_genesis, 43_119, 2_674, 2.31e7, "text", 10),
        DatasetSpec("brown2", _gen_brown2, 855_043, 46_153, 5.84e9, "text", 11),
        DatasetSpec("xout1", _gen_xout1, 142_732, 12_113, 9.17e7, "geometric", 12),
        DatasetSpec("yout1", _gen_yout1, 142_732, 12_140, 9.46e7, "geometric", 13),
        DatasetSpec("path", _gen_path, 40_800, 40_001, 6.80e5, "artificial", 14),
    ]
}


def load_dataset(
    name: str,
    rng: np.random.Generator | int | None = None,
    scale: float = 1.0,
) -> np.ndarray:
    """Generate one Table 1 data set by name.

    Parameters
    ----------
    name:
        A Table 1 name (``"zipf1.0"``, ..., ``"path"``).
    rng:
        Generator or seed (datasets are randomized; fix the seed for
        reproducible experiments).
    scale:
        Fraction of the paper's stream length to generate.
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise KeyError(f"unknown data set {name!r}; choose from {sorted(DATASETS)}")
    return spec.load(rng=rng, scale=scale)
