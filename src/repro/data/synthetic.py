"""Statistical data-set generators (the first seven rows of Table 1).

Each generator returns a 1-D int64 numpy array of attribute values — an
insertion-only stream.  All are parameterised the way the paper
describes them, and the module docstrings record the closed-form
self-join sizes used to check the generators against Table 1:

* Zipf(alpha) over domain t:      SJ ~ n^2 * (sum i^-2a) / (sum i^-a)^2
* uniform over t:                 SJ ~ n^2/t + n (1 - 1/t)
* multifractal(n, bias, order):   SJ ~ n^2 (b^2 + (1-b)^2)^order + n
* self-similar (h-law, levels L): SJ ~ n^2 (h^2 + (1-h)^2)^L + n
* Poisson(lam):                   SJ ~ n^2 / (2 sqrt(pi lam))
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf", "uniform", "multifractal", "self_similar", "poisson"]


def _generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def zipf(
    n: int,
    domain: int,
    alpha: float = 1.0,
    rng: np.random.Generator | int | None = None,
    offset: float = 0.0,
) -> np.ndarray:
    """A Zipf(alpha) value stream: P(value = i) ~ 1 / (i + offset)^alpha.

    Values are 1..domain; larger ``alpha`` means more skew (the paper's
    zipf1.0 / zipf1.5 sets use alpha = 1.0 and 1.5).  The optional
    Zipf-Mandelbrot ``offset`` flattens the head, which is how the
    synthetic text streams are tuned (see :mod:`repro.data.text`).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if domain < 1:
        raise ValueError(f"domain must be >= 1, got {domain}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    gen = _generator(rng)
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks + offset, alpha)
    probs = weights / weights.sum()
    return gen.choice(domain, size=n, p=probs).astype(np.int64) + 1


def uniform(
    n: int, domain: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """A uniform value stream over {0, ..., domain-1}.

    Table 1's `uniform` set: n = 1,000,000 over t = 32,768; expected
    SJ = n^2/t + n (1 - 1/t) = 3.15e7, matching the paper exactly.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if domain < 1:
        raise ValueError(f"domain must be >= 1, got {domain}")
    gen = _generator(rng)
    return gen.integers(0, domain, size=n, dtype=np.int64)


def multifractal(
    n: int,
    bias: float,
    order: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A multifractal (binomial p-model) stream over 2^order values.

    Each value is assembled from ``order`` independent bits, each 1
    with probability ``bias``; the probability of a value whose binary
    representation has z ones is ``bias^z (1-bias)^(order-z)``.  The
    paper's mf2 = Multifractal(20000, 0.2, 12) and
    mf3 = Multifractal(20000, 0.3, 12).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0.0 <= bias <= 1.0:
        raise ValueError(f"bias must be in [0, 1], got {bias}")
    if order < 1 or order > 62:
        raise ValueError(f"order must be in [1, 62], got {order}")
    gen = _generator(rng)
    bits = gen.random((n, order)) < bias
    powers = (np.int64(1) << np.arange(order, dtype=np.int64))[np.newaxis, :]
    return (bits.astype(np.int64) * powers).sum(axis=1)


def self_similar(
    n: int,
    domain: int,
    h: float = 0.91,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A self-similar (recursive h-law / 80-20-rule) stream.

    The domain [0, domain) is split recursively: each halving sends a
    draw to the *lower* half with probability h.  After
    ``ceil(log2 domain)`` levels this yields the classic self-similar
    skew (h = 0.8 is the 80/20 law); draws that land beyond the domain
    (when it is not a power of two) are redrawn.  The default
    h = 0.91 calibrates SJ to Table 1's selfsimilar row
    (n = 120,000, t = 200, SJ = 3.41e9: solve
    (h^2 + (1-h)^2)^8 = SJ/n^2).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if domain < 1:
        raise ValueError(f"domain must be >= 1, got {domain}")
    if not 0.5 <= h < 1.0:
        raise ValueError(f"h must be in [0.5, 1), got {h}")
    gen = _generator(rng)
    levels = max(1, int(np.ceil(np.log2(domain))))
    out = np.empty(n, dtype=np.int64)
    filled = 0
    while filled < n:
        need = n - filled
        # Draw a batch with ~20% slack to cover rejections.
        batch = max(16, int(need * 1.25))
        bits = gen.random((batch, levels)) >= h  # True -> upper half
        powers = (np.int64(1) << np.arange(levels - 1, -1, -1, dtype=np.int64))[
            np.newaxis, :
        ]
        vals = (bits.astype(np.int64) * powers).sum(axis=1)
        vals = vals[vals < domain]
        take = min(need, vals.size)
        out[filled : filled + take] = vals[:take]
        filled += take
    return out


def poisson(
    n: int, lam: float = 20.0, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """A Poisson(lam) value stream.

    Table 1's poisson row (n = 120,000, t = 39 observed distinct
    values, SJ = 9.12e8) corresponds to lam ~ 20:
    SJ ~ n^2 / (2 sqrt(pi lam)) = 9.1e8.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if lam <= 0:
        raise ValueError(f"lam must be positive, got {lam}")
    gen = _generator(rng)
    return gen.poisson(lam, size=n).astype(np.int64)
