"""Synthetic text word streams (Table 1's wuther / genesis / brown2 rows).

The paper's text data sets are word streams from Wuthering Heights, the
book of Genesis, and an excerpt of the Brown corpus — none of which can
be bundled here.  Following the paper's own observation that "text is
often well-modeled by a Zipf(1.0) distribution" (Section 3.1), we stand
in a Zipf-Mandelbrot word-rank stream with the *same length and domain
size* as each original and with the Mandelbrot offset q tuned so the
self-join size lands near the Table 1 value (real word-frequency
distributions have a flatter head than pure Zipf: "the" carries ~6% of
tokens, not 1/H ~ 10%).

The estimators only ever see the frequency profile, so matching
(n, t, SJ) preserves everything the Section 3 experiments measure.
The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from .synthetic import zipf

__all__ = ["synthetic_text", "tokenize_text", "TEXT_PROFILES"]

#: Generator parameters per text data set: (n, vocabulary, mandelbrot q).
#: n and the Table 1 domain sizes are the paper's; q is calibrated so
#: the measured SJ approximates Table 1 (see tests/test_data_registry).
TEXT_PROFILES: dict[str, dict[str, float | int]] = {
    "wuther": {"n": 120_952, "vocabulary": 13_000, "q": 0.9},
    "genesis": {"n": 43_119, "vocabulary": 3_200, "q": 0.7},
    "brown2": {"n": 855_043, "vocabulary": 55_000, "q": 0.6},
}


def synthetic_text(
    name_or_n: str | int,
    vocabulary: int | None = None,
    q: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A synthetic word-rank stream with text-like frequency profile.

    Parameters
    ----------
    name_or_n:
        Either one of the profile names (``"wuther"``, ``"genesis"``,
        ``"brown2"``) — in which case the calibrated profile is used —
        or an explicit stream length.
    vocabulary:
        Vocabulary size (required when a length is given).
    q:
        Zipf-Mandelbrot offset: P(rank i) ~ 1/(i + q).
    rng:
        Generator or seed.

    Returns
    -------
    numpy.ndarray
        int64 stream of word ranks (1 = most frequent word).
    """
    if isinstance(name_or_n, str):
        profile = TEXT_PROFILES.get(name_or_n)
        if profile is None:
            raise KeyError(
                f"unknown text profile {name_or_n!r}; "
                f"choose from {sorted(TEXT_PROFILES)}"
            )
        return zipf(
            int(profile["n"]),
            int(profile["vocabulary"]),
            alpha=1.0,
            offset=float(profile["q"]),
            rng=rng,
        )
    n = int(name_or_n)
    if vocabulary is None:
        raise ValueError("explicit stream length requires a vocabulary size")
    return zipf(n, int(vocabulary), alpha=1.0, offset=float(q), rng=rng)


def tokenize_text(text: str, lowercase: bool = True) -> np.ndarray:
    """Turn real text into the word-rank stream the paper's study uses.

    Splits on non-alphanumeric characters and maps each word to its
    frequency rank (1 = most common word in this text), so users with
    access to the original corpora (Wuthering Heights, Genesis, the
    Brown corpus) can reproduce Figures 9–11 on the real data:

    >>> stream = tokenize_text(open("wuthering_heights.txt").read())
    >>> accuracy_sweep(stream, dataset="wuther-real")   # doctest: +SKIP

    The rank encoding is frequency-preserving (the estimators only see
    the frequency profile), keeps the domain dense in 1..t, and matches
    how the synthetic substitutes are encoded.
    """
    import re
    from collections import Counter

    if lowercase:
        text = text.lower()
    words = re.findall(r"[a-z0-9']+" if lowercase else r"[A-Za-z0-9']+", text)
    if not words:
        return np.empty(0, dtype=np.int64)
    counts = Counter(words)
    # Rank 1 = most frequent; ties broken lexicographically for
    # determinism.
    by_rank = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    rank = {word: i + 1 for i, (word, _) in enumerate(by_rank)}
    return np.fromiter((rank[w] for w in words), dtype=np.int64, count=len(words))
