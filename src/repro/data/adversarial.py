"""Adversarial and lower-bound data sets.

Three constructions from the paper:

* :func:`path_dataset` — Table 1's `path` set (Section 3.2): 40,000
  values occurring exactly once plus one value occurring 800 times
  (n = 40,800, t = 40,001, SJ = 40,000 + 800^2 = 6.8e5).  Built to
  separate sample-count (which needs Theta(sqrt t) samples to ever see
  the heavy value) from tug-of-war (O(1) words), verifying the
  worst-case gap between Theorems 2.1 and 2.2 is real.
* :func:`lemma23_pair` — the Lemma 2.3 gadget: R1 has n all-distinct
  values, R2 has n/2 pairs; SJ(R2) = 2 SJ(R1), yet an o(sqrt n) sample
  of either usually contains no duplicate, so naive-sampling estimates
  both as n and is a factor 2 off on R2 (birthday bound).
* :func:`theorem43_instance` — the Theorem 4.3 lower-bound input pair:
  a uni-type relation F drawn from D1 and a spread relation G drawn
  from D2 (built on a random set system over t = 10 m^2/B types with
  small pairwise intersections), each padded with sqrt(B) tuples of
  type 0 so every join size is at least the sanity bound B; the join
  size is B or 2B depending on whether F's type lands in G's set.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "path_dataset",
    "lemma23_pair",
    "theorem43_instance",
    "theorem43_set_system",
    "theorem43_parameters",
]


def path_dataset(
    singletons: int = 40_000,
    heavy_count: int = 800,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """The pathological `path` data set of Section 3.2 (Figure 14).

    ``singletons`` values occur exactly once and one additional value
    occurs ``heavy_count`` times; the stream is shuffled.  With the
    defaults: n = 40,800, t = 40,001, SJ = 6.8e5 — exactly Table 1.
    """
    if singletons < 0 or heavy_count < 0:
        raise ValueError("singletons and heavy_count must be >= 0")
    gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    # Values 1..singletons once each; value 0 heavy_count times.
    stream = np.concatenate(
        [
            np.arange(1, singletons + 1, dtype=np.int64),
            np.zeros(heavy_count, dtype=np.int64),
        ]
    )
    gen.shuffle(stream)
    return stream


def lemma23_pair(
    n: int, rng: np.random.Generator | int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """The Lemma 2.3 pair (R1, R2) separating naive-sampling.

    R1: n items, all distinct (SJ = n).  R2: n/2 values, each occurring
    exactly twice (SJ = 2n).  Both shuffled.  ``n`` must be even.
    """
    if n < 2 or n % 2:
        raise ValueError(f"n must be a positive even integer, got {n}")
    gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    r1 = np.arange(n, dtype=np.int64)
    gen.shuffle(r1)
    r2 = np.repeat(np.arange(n // 2, dtype=np.int64), 2)
    gen.shuffle(r2)
    return r1, r2


def theorem43_set_system(
    t: int,
    set_size: int,
    count: int,
    rng: np.random.Generator,
    max_intersection: int | None = None,
    max_attempts: int = 10_000,
) -> list[np.ndarray]:
    """A family of ``count`` subsets of {1..t} with small pairwise overlap.

    The probabilistic-method construction behind Theorem 4.3: random
    ``set_size``-subsets of a t-element universe have expected pairwise
    intersection ``set_size^2 / t``; we draw candidates and reject any
    exceeding ``max_intersection`` (default ``set_size / 2``, the
    paper's t/20 for set_size = t/10).  Raises if the target family
    cannot be realised — which, per the probabilistic method, does not
    happen for the parameter ranges the theorem uses.
    """
    if set_size > t:
        raise ValueError(f"set_size {set_size} exceeds universe size {t}")
    if max_intersection is None:
        max_intersection = set_size // 2
    family: list[np.ndarray] = []
    family_masks: list[set[int]] = []
    attempts = 0
    while len(family) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not build {count} sets of size {set_size} over {t} types "
                f"with pairwise intersection <= {max_intersection} "
                f"in {max_attempts} attempts"
            )
        candidate = rng.choice(t, size=set_size, replace=False) + 1  # types 1..t
        cset = set(candidate.tolist())
        if all(len(cset & other) <= max_intersection for other in family_masks):
            family.append(np.sort(candidate).astype(np.int64))
            family_masks.append(cset)
    return family


def theorem43_parameters(k: int, c: int) -> tuple[int, int]:
    """Valid (n, sanity_bound) pairs for :func:`theorem43_instance`.

    The construction needs ``B = root^2`` with ``m = n - root``,
    ``m | B`` (integral per-type multiplicity B/m) and ``B | m^2``
    (integral set size m^2/B).  Parameterising ``m = c k^2`` and
    ``B = c^2 k^2`` satisfies all three with root = c k, giving
    ``n = c k (k + 1)``, per-type multiplicity c, and set size k^2.

    Parameters
    ----------
    k:
        Controls the set size (k^2) and hence the lower bound
        ``m^2/B = k^2`` bits.
    c:
        Per-type multiplicity B/m.

    Returns
    -------
    (n, B)
        Ready to pass to :func:`theorem43_instance`.
    """
    if k < 1 or c < 1:
        raise ValueError(f"k and c must be >= 1, got k={k}, c={c}")
    n = c * k * (k + 1)
    b = c * c * k * k
    if not n <= b <= n * n // 2:
        raise ValueError(
            f"parameters k={k}, c={c} give B={b} outside [n, n^2/2] for n={n}; "
            "increase c"
        )
    return n, b


def theorem43_instance(
    n: int,
    sanity_bound: int,
    rng: np.random.Generator | int | None = None,
    family_size: int | None = None,
) -> dict:
    """One random (F, G) input pair from the Theorem 4.3 distributions.

    Parameters
    ----------
    n:
        Relation size; the construction uses m = n - sqrt(B) "payload"
        tuples plus sqrt(B) tuples of the shared type 0.
    sanity_bound:
        The sanity bound B, with n <= B <= n^2 / 2.
    family_size:
        Size of the D2 set family to draw from (default: min(64,
        2^(m^2/B)) — the full 2^(t/10) family of the proof is
        astronomically large; estimation hardness only needs a few
        mutually-confusable members).

    Returns
    -------
    dict
        ``F`` (uni-type relation from D1), ``G`` (spread relation from
        D2), ``join_size`` (exact: B if F's type misses G's set, 2B if
        it hits), ``f_type`` and ``g_set`` for inspection.

    Notes
    -----
    Type 0 contributes ``sqrt(B) * sqrt(B) = B`` to every join, the
    guaranteed sanity-bound floor.  F's m tuples all share one type i;
    G spreads B/m tuples over each of m^2/B types, so the payload join
    is m * (B/m) = B exactly when ``i`` is in G's set and 0 otherwise.
    """
    gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    if n < 4:
        raise ValueError(f"n must be >= 4, got {n}")
    b = int(sanity_bound)
    if not n <= b <= n * n // 2:
        raise ValueError(f"sanity bound must satisfy n <= B <= n^2/2, got {b}")
    root_b = int(math.isqrt(b))
    if root_b * root_b != b:
        raise ValueError(f"sanity bound must be a perfect square, got {b}")
    m = n - root_b
    if m < 1:
        raise ValueError(f"n - sqrt(B) = {m} must be positive")
    if b % m:
        raise ValueError(
            f"construction needs m | B for an integral per-type multiplicity; "
            f"got m={m}, B={b} (use theorem43_parameters to pick valid (n, B))"
        )
    per_type = b // m
    if (m * m) % b:
        raise ValueError(
            f"construction needs B | m^2 for an integral set size; got m={m}, B={b}"
        )
    set_size = m * m // b
    if set_size < 1:
        raise ValueError(
            f"m^2/B = {m * m}/{b} < 1; increase n or decrease the sanity bound"
        )
    t = 10 * set_size

    if family_size is None:
        family_size = min(64, 2 ** min(20, set_size))
    family = theorem43_set_system(
        t, set_size, family_size, gen, max_intersection=max(1, set_size // 2)
    )

    # D1: uniform over uni-type relations (m tuples of one random type).
    f_type = int(gen.integers(1, t + 1))
    pad = np.zeros(root_b, dtype=np.int64)  # type 0: sqrt(B) tuples each
    f_rel = np.concatenate([np.full(m, f_type, dtype=np.int64), pad])

    # D2: uniform over the set family (B/m tuples of each type in S).
    g_set = family[int(gen.integers(0, len(family)))]
    g_rel = np.concatenate([np.repeat(g_set, per_type), pad])

    join = b + (m * per_type if f_type in set(g_set.tolist()) else 0)
    return {
        "F": f_rel,
        "G": g_rel,
        "join_size": int(join),
        "f_type": f_type,
        "g_set": g_set,
        "types": t,
        "payload_size": m,
    }
