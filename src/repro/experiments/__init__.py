"""Experiment harness reproducing the paper's evaluation (Sections 3–4).

* :mod:`repro.experiments.harness` — accuracy-vs-memory sweeps: run the
  three self-join estimators over sample sizes 2^0..2^14 on any stream;
* :mod:`repro.experiments.metrics` — normalized estimates and the
  15%-relative-error convergence metric of Section 3.1;
* :mod:`repro.experiments.figures` — one runner per paper figure
  (Figures 2–15);
* :mod:`repro.experiments.tables` — Table 1, the Section 3.1
  convergence summary, and the Section 4.4 analytic comparison;
* :mod:`repro.experiments.joins` — the join-signature study the paper
  lists as future work (k-TW vs sample signatures);
* :mod:`repro.experiments.lowerbounds` — empirical demonstrations of
  Lemma 2.3 and Theorem 4.3.

Scale control: every runner takes ``scale`` (fraction of paper stream
lengths) and ``max_log2_s``; :func:`default_scale` reads the
``REPRO_SCALE`` environment variable (``quick`` | ``full`` | a float).
"""

from .harness import AccuracyPoint, SweepResult, accuracy_sweep, default_scale
from .metrics import convergence_sample_size, normalized_estimates, relative_error
from . import figures, joins, lowerbounds, tables

__all__ = [
    "AccuracyPoint",
    "SweepResult",
    "accuracy_sweep",
    "default_scale",
    "normalized_estimates",
    "relative_error",
    "convergence_sample_size",
    "figures",
    "tables",
    "joins",
    "lowerbounds",
]
