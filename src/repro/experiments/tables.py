"""Table runners: Table 1, the Section 3.1 summary, and Section 4.4.

* :func:`table1` — generate each Table 1 data set and report measured
  length / domain size / self-join size against the paper's values;
* :func:`convergence_table` — the Section 3.1 summary ("tug-of-war
  needed only 4-256 memory words ... over 4 times fewer than
  sample-count, over 50 times fewer than naive-sampling"): the
  15%-convergence sample size per data set and algorithm;
* :func:`table_section44` — the analytic comparison of Section 4.4:
  per data set, the B/n threshold ``C^2/n^3`` above which k-TW beats
  sample signatures and the advantage ``n^3/C^2`` at B = n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.bounds import ktw_advantage, ktw_break_even_sanity_bound
from ..core.frequency import distinct_values, self_join_size
from ..data.registry import DATASETS
from .figures import run_figure
from .metrics import convergence_from_sweep

__all__ = [
    "Table1Row",
    "table1",
    "format_table1",
    "convergence_table",
    "format_convergence_table",
    "Section44Row",
    "table_section44",
    "format_table_section44",
]


@dataclass(frozen=True)
class Table1Row:
    """One data set's paper-vs-measured characteristics."""

    name: str
    kind: str
    figure: int
    paper_length: int
    paper_domain: int
    paper_self_join: float
    measured_length: int
    measured_domain: int
    measured_self_join: float


def table1(
    seed: int = 0,
    scale: float = 1.0,
    datasets: Sequence[str] | None = None,
) -> list[Table1Row]:
    """Generate every Table 1 data set and measure its characteristics."""
    names = list(datasets) if datasets is not None else list(DATASETS)
    rows: list[Table1Row] = []
    for name in names:
        spec = DATASETS[name]
        values = spec.load(rng=np.random.default_rng(seed), scale=scale)
        rows.append(
            Table1Row(
                name=name,
                kind=spec.kind,
                figure=spec.figure,
                paper_length=spec.paper_length,
                paper_domain=spec.paper_domain,
                paper_self_join=spec.paper_self_join,
                measured_length=int(values.size),
                measured_domain=distinct_values(values),
                measured_self_join=float(self_join_size(values)),
            )
        )
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table 1 with paper and measured columns side by side."""
    lines = [
        "# Table 1: data sets and their characteristics (paper / measured)",
        f"{'data set':<12} {'type':<12} {'length':>19} {'domain size':>17} "
        f"{'self-join size':>23}",
    ]
    for r in rows:
        lines.append(
            f"{r.name:<12} {r.kind:<12} "
            f"{r.paper_length:>9}/{r.measured_length:<9} "
            f"{r.paper_domain:>8}/{r.measured_domain:<8} "
            f"{r.paper_self_join:>10.2e}/{r.measured_self_join:<10.2e}"
        )
    return "\n".join(lines)


def convergence_table(
    datasets: Sequence[str] | None = None,
    scale: float = 1.0,
    max_log2_s: int = 14,
    seed: int = 0,
    repeats: int = 1,
    tolerance: float = 0.15,
) -> dict[str, Mapping[str, int | None]]:
    """15%-convergence sample sizes per data set and algorithm.

    Returns ``{dataset: {algorithm: convergence s or None}}`` — the
    numbers behind the paper's "tug-of-war needed a sample size of only
    16, sample-count 128, naive-sampling 2048" style statements.
    """
    names = list(datasets) if datasets is not None else list(DATASETS)
    out: dict[str, Mapping[str, int | None]] = {}
    for name in names:
        sweep = run_figure(
            name, scale=scale, max_log2_s=max_log2_s, seed=seed, repeats=repeats
        )
        out[name] = convergence_from_sweep(sweep, tolerance=tolerance)
    return out


def format_convergence_table(
    table: Mapping[str, Mapping[str, int | None]], tolerance: float = 0.15
) -> str:
    """Render the convergence summary (None -> 'not conv.')."""

    def fmt(v: int | None) -> str:
        return str(v) if v is not None else "not conv."

    algos = ["tug-of-war", "sample-count", "naive-sampling"]
    lines = [
        f"# Minimum sample size within {tolerance:.0%} relative error "
        "(this and all larger sizes)",
        f"{'data set':<12} " + " ".join(f"{a:>15}" for a in algos),
    ]
    for name, per_algo in table.items():
        lines.append(
            f"{name:<12} " + " ".join(f"{fmt(per_algo.get(a)):>15}" for a in algos)
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class Section44Row:
    """One data set's analytic k-TW-vs-sampling comparison."""

    name: str
    n: int
    self_join: float
    #: B/n threshold above which k-TW wins (C^2 / n^3); <= 1 means
    #: k-TW already wins at the minimum sanity bound B = n.
    break_even_factor: float
    #: storage advantage of k-TW at B = n (n^3 / C^2); < 1 means
    #: sampling wins at B = n.
    advantage_at_n: float


def table_section44(
    seed: int = 0,
    scale: float = 1.0,
    datasets: Sequence[str] | None = None,
    use_paper_values: bool = False,
) -> list[Section44Row]:
    """The Section 4.4 analytic comparison for every Table 1 data set.

    With ``use_paper_values=True`` the paper's (n, SJ) are used
    directly (reproducing the quoted factors exactly); otherwise the
    data sets are generated and measured.
    """
    names = list(datasets) if datasets is not None else list(DATASETS)
    rows: list[Section44Row] = []
    for name in names:
        spec = DATASETS[name]
        if use_paper_values:
            n = spec.paper_length
            sj = spec.paper_self_join
        else:
            values = spec.load(rng=np.random.default_rng(seed), scale=scale)
            n = int(values.size)
            sj = float(self_join_size(values))
        rows.append(
            Section44Row(
                name=name,
                n=n,
                self_join=sj,
                break_even_factor=ktw_break_even_sanity_bound(n, sj),
                advantage_at_n=ktw_advantage(n, sj, float(n)),
            )
        )
    return rows


def format_table_section44(rows: Sequence[Section44Row]) -> str:
    """Render the Section 4.4 comparison table."""
    lines = [
        "# Section 4.4: k-TW vs sample signatures (C = self-join size)",
        "#   break-even: B must exceed n by this factor for k-TW to win",
        "#   advantage@B=n: storage ratio sampling/k-TW at B = n (>1 = k-TW wins)",
        f"{'data set':<12} {'n':>9} {'SJ':>11} {'break-even B/n':>15} "
        f"{'advantage@B=n':>14}",
    ]
    for r in rows:
        lines.append(
            f"{r.name:<12} {r.n:>9} {r.self_join:>11.3g} "
            f"{r.break_even_factor:>15.3g} {r.advantage_at_n:>14.3g}"
        )
    return "\n".join(lines)
