"""Markdown report generation: regenerate EXPERIMENTS.md from code.

``generate_report()`` runs the full reproduction suite — Table 1, the
per-figure convergence summary, Figure 15, and the Section 4.4 analytic
comparison — and renders one self-contained markdown document with
paper-vs-measured columns.  EXPERIMENTS.md in the repository root is a
frozen output of this function (plus commentary); regenerate with::

    python -c "from repro.experiments.report import generate_report;
               print(generate_report(scale=1.0))" > EXPERIMENTS.md
"""

from __future__ import annotations

import numpy as np

from ..data.registry import DATASETS
from .figures import figure15
from .metrics import convergence_from_sweep
from .tables import table1, table_section44
from .figures import run_figure

__all__ = ["generate_report"]


def _md_table(header: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _fmt_conv(value: int | None) -> str:
    return str(value) if value is not None else "not conv."


def generate_report(
    scale: float = 0.1,
    max_log2_s: int = 12,
    seed: int = 0,
    datasets: list[str] | None = None,
) -> str:
    """Run the reproduction suite and render a markdown report.

    Parameters
    ----------
    scale:
        Fraction of the paper's stream lengths (1.0 = paper scale).
    max_log2_s:
        Largest sample size 2^this in the sweeps (paper: 14).
    seed:
        Master seed.
    datasets:
        Optional subset of Table 1 names.
    """
    names = datasets if datasets is not None else list(DATASETS)
    parts: list[str] = []
    parts.append(
        f"# Reproduction report (scale={scale}, max sample size 2^{max_log2_s}, "
        f"seed={seed})\n"
    )

    # ---- Table 1 ---------------------------------------------------------
    rows = table1(seed=seed, scale=scale, datasets=names)
    parts.append("## Table 1 — data-set characteristics (paper / measured)\n")
    parts.append(
        _md_table(
            ["data set", "type", "length", "domain size", "self-join size"],
            [
                [
                    r.name,
                    r.kind,
                    f"{r.paper_length:,} / {r.measured_length:,}",
                    f"{r.paper_domain:,} / {r.measured_domain:,}",
                    f"{r.paper_self_join:.2e} / {r.measured_self_join:.2e}",
                ]
                for r in rows
            ],
        )
    )

    # ---- Figures 2-14 via the convergence metric ---------------------------
    parts.append(
        "\n## Figures 2–14 — minimum sample size within 15% relative error\n"
    )
    conv_rows = []
    for name in names:
        sweep = run_figure(
            name, scale=scale, max_log2_s=max_log2_s, seed=seed, repeats=1
        )
        conv = convergence_from_sweep(sweep)
        spec = DATASETS[name]
        conv_rows.append(
            [
                f"Fig {spec.figure}",
                name,
                _fmt_conv(conv.get("tug-of-war")),
                _fmt_conv(conv.get("sample-count")),
                _fmt_conv(conv.get("naive-sampling")),
            ]
        )
    parts.append(
        _md_table(
            ["figure", "data set", "tug-of-war", "sample-count", "naive-sampling"],
            conv_rows,
        )
    )

    # ---- Figure 15 ---------------------------------------------------------
    out = figure15(estimators=1024, scale=scale, seed=seed)
    x = out["sorted_estimators"]
    actual = out["actual"]
    far = float(np.mean(np.abs(x - actual) > 0.5 * actual))
    parts.append("\n## Figure 15 — robustness of individual estimators (zipf1.5)\n")
    parts.append(
        f"- 1024 individual X_ij; actual SJ = {actual:.4g}\n"
        f"- median individual estimator = {out['median']:.4g} "
        f"({out['median'] / actual:.2f} of actual)\n"
        f"- fraction more than 50% from actual: {far:.0%} "
        "(spread, not clustered — median-of-means is essential)\n"
        f"- range: [{x.min():.3g}, {x.max():.3g}]"
    )

    # ---- Section 4.4 ---------------------------------------------------------
    parts.append("\n## Section 4.4 — k-TW vs sample signatures (paper values)\n")
    s44 = table_section44(use_paper_values=True, datasets=names)
    parts.append(
        _md_table(
            ["data set", "break-even B/n", "advantage at B=n"],
            [
                [r.name, f"{r.break_even_factor:.3g}", f"{r.advantage_at_n:.3g}"]
                for r in s44
            ],
        )
    )
    parts.append("")
    return "\n".join(parts)
