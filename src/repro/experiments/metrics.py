"""Accuracy metrics, including the paper's 15%-convergence measure.

Section 3.1: "As a simple means of quantifying convergence towards a
reasonable approximation, we will consider the metric of the minimum
sample size each algorithm needed to be within 15% relative error for
this and all larger sample sizes."  :func:`convergence_sample_size`
implements exactly that over a sweep series.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "relative_error",
    "normalized_estimates",
    "convergence_sample_size",
    "convergence_from_sweep",
]


def relative_error(estimate: float, actual: float) -> float:
    """|estimate - actual| / actual (inf for actual == 0 and estimate != 0)."""
    if actual == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - actual) / abs(actual)


def normalized_estimates(
    estimates: Sequence[float] | np.ndarray, actual: float
) -> np.ndarray:
    """estimate / actual for each estimate — the figures' y-axis."""
    arr = np.asarray(estimates, dtype=np.float64)
    if actual == 0:
        raise ValueError("cannot normalise by an exact value of zero")
    return arr / actual


def convergence_sample_size(
    series: Sequence[tuple[int, float]],
    tolerance: float = 0.15,
) -> int | None:
    """Minimum s within ``tolerance`` relative error *for all s' >= s*.

    Parameters
    ----------
    series:
        (sample_size, normalized_estimate) pairs; normalized = 1.0 is
        exact.  Unsorted input is sorted by sample size.
    tolerance:
        Relative-error threshold (paper: 0.15).

    Returns
    -------
    int or None
        The convergence sample size, or None if even the largest
        sample size is outside tolerance (the paper's "has yet to
        converge", e.g. naive-sampling on mf3 in Figure 6).
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    ordered = sorted(series, key=lambda p: p[0])
    if not ordered:
        raise ValueError("empty series")
    answer: int | None = None
    for s, normalized in ordered:
        if abs(normalized - 1.0) <= tolerance:
            if answer is None:
                answer = int(s)
        else:
            answer = None
    return answer


def convergence_from_sweep(
    sweep, tolerance: float = 0.15
) -> Mapping[str, int | None]:
    """Per-algorithm convergence sample sizes for a SweepResult."""
    return {
        algo: convergence_sample_size(sweep.series(algo), tolerance=tolerance)
        for algo in sweep.algorithms()
    }
