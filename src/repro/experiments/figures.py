"""One runner per paper figure (Figures 2–15).

Figures 2–14 are accuracy-vs-memory sweeps on the 13 Table 1 data sets;
:func:`figure` dispatches by number, :func:`run_figure` by data-set
name.  Figure 15 (:func:`figure15`) is the estimator-robustness plot:
1024 individual tug-of-war basic estimators X_ij on zipf1.5, sorted by
value, showing the wide spread that makes median-of-means combining
essential.

Every runner returns plain data (a SweepResult or numpy array) plus a
``format_*`` helper that prints the same series the paper plots; the
benchmark suite calls these and asserts the qualitative shapes.
"""

from __future__ import annotations

import numpy as np

from ..core.frequency import self_join_size
from ..core.tugofwar import TugOfWarSketch
from ..data.registry import DATASETS
from .harness import SweepResult, accuracy_sweep, default_sample_sizes

__all__ = [
    "FIGURE_DATASETS",
    "figure",
    "run_figure",
    "figure15",
    "format_figure15",
]

#: Figure number -> Table 1 data-set name (Figures 2-14).
FIGURE_DATASETS: dict[int, str] = {
    spec.figure: name for name, spec in DATASETS.items()
}


def run_figure(
    dataset: str,
    scale: float = 1.0,
    max_log2_s: int = 14,
    seed: int = 0,
    repeats: int = 1,
) -> SweepResult:
    """The Figures 2–14 sweep for one named Table 1 data set.

    Parameters
    ----------
    dataset:
        Table 1 name (``"zipf1.0"`` ... ``"path"``).
    scale:
        Fraction of the paper's stream length (1.0 = paper scale).
    max_log2_s:
        Largest sample size 2^max_log2_s (paper: 14).
    seed:
        Seed for both the data generator and the estimators.
    repeats:
        Estimates per point (the paper plots 1; benchmarks use more
        for stable shape assertions).
    """
    spec = DATASETS.get(dataset)
    if spec is None:
        raise KeyError(f"unknown data set {dataset!r}; choose from {sorted(DATASETS)}")
    rng = np.random.default_rng(seed)
    values = spec.load(rng=rng, scale=scale)
    return accuracy_sweep(
        values,
        dataset=dataset,
        sample_sizes=default_sample_sizes(max_log2_s),
        rng=rng,
        repeats=repeats,
    )


def figure(
    number: int,
    scale: float = 1.0,
    max_log2_s: int = 14,
    seed: int = 0,
    repeats: int = 1,
) -> SweepResult:
    """Dispatch Figures 2–14 by figure number."""
    name = FIGURE_DATASETS.get(number)
    if name is None:
        raise KeyError(
            f"figure {number} is not an accuracy sweep; valid numbers: "
            f"{sorted(FIGURE_DATASETS)} (use figure15() for Figure 15)"
        )
    return run_figure(
        name, scale=scale, max_log2_s=max_log2_s, seed=seed, repeats=repeats
    )


def figure15(
    estimators: int = 1024,
    scale: float = 1.0,
    seed: int = 0,
) -> dict:
    """Figure 15: the distribution of individual estimators X_ij.

    Builds one tug-of-war sketch with ``estimators`` basic estimators
    on the zipf1.5 data set and returns the X_ij sorted in increasing
    order, together with the exact self-join size — the paper plots
    estimator value against rank with the actual SJ as a horizontal
    line.  (The paper uses 10^3 estimators; we default to 1024.)

    Returns
    -------
    dict
        ``sorted_estimators`` (float64 array), ``actual`` (exact SJ),
        ``median`` (median individual estimator), ``n``.
    """
    if estimators < 1:
        raise ValueError(f"estimators must be >= 1, got {estimators}")
    rng = np.random.default_rng(seed)
    values = DATASETS["zipf1.5"].load(rng=rng, scale=scale)
    sketch = TugOfWarSketch(s1=estimators, s2=1, seed=int(rng.integers(0, 2**63 - 1)))
    sketch.update_from_stream(values)
    x = np.sort(sketch.basic_estimators())
    actual = self_join_size(values)
    return {
        "sorted_estimators": x,
        "actual": float(actual),
        "median": float(np.median(x)),
        "n": int(values.size),
    }


def format_figure15(result: dict, bins: int = 16) -> str:
    """Render Figure 15 as a text table of ranked estimator quantiles."""
    x = result["sorted_estimators"]
    actual = result["actual"]
    lines = [
        f"# Figure 15: {x.size} individual tug-of-war estimators on zipf1.5",
        f"# actual SJ = {actual:.4g}; median estimator = {result['median']:.4g} "
        f"({result['median'] / actual:.3f} of actual)",
        "rank-quantile    estimator    normalized",
    ]
    for q in np.linspace(0.0, 1.0, bins + 1):
        idx = min(x.size - 1, int(q * (x.size - 1)))
        lines.append(f"{q:>12.3f}  {x[idx]:>12.4g}  {x[idx] / actual:>10.4f}")
    return "\n".join(lines)
