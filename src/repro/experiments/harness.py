"""Accuracy-vs-memory sweeps: the engine behind Figures 2–14.

For each sample size s = 2^0 .. 2^14 (by powers of two, as in the
paper) and each algorithm, produce one estimate of the self-join size
and normalise it by the exact value.  "Each plotted point corresponds
to one run of an algorithm" (Section 3) — each estimator is already an
aggregation of many independent basic estimators, so no extra averaging
is applied; we keep that convention, with an optional ``repeats``
parameter for smoother summary statistics where wanted.

Algorithm evaluation uses the vectorised estimators so full-paper-scale
sweeps (a million-element stream at s = 16,384) complete in seconds:

* tug-of-war: a :class:`~repro.core.tugofwar.TugOfWarSketch` bulk-loaded
  from the stream's histogram (bit-identical to element-wise inserts,
  by linearity — verified in the test suite);
* sample-count: :func:`~repro.core.samplecount.sample_count_estimate_offline`
  (the [AMS99] known-n description; validated against the Figure 1
  tracker);
* naive-sampling: :func:`~repro.core.naivesampling.naive_sampling_estimate_offline`.

The (s1, s2) split per total budget s follows
:func:`repro.core.estimators.split_parameters`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.estimators import split_parameters
from ..core.frequency import self_join_size
from ..core.naivesampling import naive_sampling_estimate_offline
from ..core.samplecount import sample_count_estimate_offline
from ..core.tugofwar import TugOfWarSketch
from ..engine.ingest import ingest_stream

__all__ = [
    "ALGORITHMS",
    "AccuracyPoint",
    "SweepResult",
    "accuracy_sweep",
    "default_scale",
    "default_sample_sizes",
    "estimate_once",
]


def default_scale() -> float:
    """Experiment scale from the REPRO_SCALE environment variable.

    ``full`` (or 1.0) reproduces paper sizes; ``quick`` (the default)
    uses 5% of each stream and caps s at 2^12, keeping CI fast while
    preserving every qualitative shape.
    """
    raw = os.environ.get("REPRO_SCALE", "quick").strip().lower()
    if raw in ("full", "paper", "1", "1.0"):
        return 1.0
    if raw in ("quick", "ci", ""):
        return 0.05
    value = float(raw)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"REPRO_SCALE must be in (0, 1], got {value}")
    return value


def default_sample_sizes(max_log2_s: int = 14) -> list[int]:
    """The paper's sweep: sample sizes 1..2^max_log2_s by powers of two."""
    if max_log2_s < 0:
        raise ValueError(f"max_log2_s must be >= 0, got {max_log2_s}")
    return [1 << j for j in range(max_log2_s + 1)]


# ----------------------------------------------------------------------
# Single-estimate dispatch
# ----------------------------------------------------------------------
def _tug_of_war(values: np.ndarray, s: int, rng: np.random.Generator) -> float:
    s1, s2 = split_parameters(s)
    seed = int(rng.integers(0, 2**63 - 1))
    sketch = TugOfWarSketch(s1=s1, s2=s2, seed=seed)
    ingest_stream(sketch, values)  # engine bulk path (histogram + matrix products)
    return sketch.estimate()


def _sample_count(values: np.ndarray, s: int, rng: np.random.Generator) -> float:
    s1, s2 = split_parameters(s)
    return sample_count_estimate_offline(values, s1=s1, s2=s2, rng=rng)


def _naive_sampling(values: np.ndarray, s: int, rng: np.random.Generator) -> float:
    return naive_sampling_estimate_offline(values, s=s, rng=rng)


#: Name -> estimator(values, s, rng) for the three Section 2 algorithms.
ALGORITHMS: Mapping[str, Callable[[np.ndarray, int, np.random.Generator], float]] = {
    "tug-of-war": _tug_of_war,
    "sample-count": _sample_count,
    "naive-sampling": _naive_sampling,
}


def estimate_once(
    algorithm: str,
    values: np.ndarray | Iterable[int],
    s: int,
    rng: np.random.Generator | int | None = None,
) -> float:
    """One self-join estimate with ``s`` memory words.

    ``algorithm`` is one of ``"tug-of-war"``, ``"sample-count"``,
    ``"naive-sampling"``.
    """
    fn = ALGORITHMS.get(algorithm)
    if fn is None:
        raise KeyError(f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}")
    if s < 1:
        raise ValueError(f"sample size s must be >= 1, got {s}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    arr = np.asarray(values, dtype=np.int64)
    return fn(arr, int(s), gen)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccuracyPoint:
    """One plotted point: an algorithm's estimate at one sample size."""

    algorithm: str
    sample_size: int
    estimate: float
    normalized: float  # estimate / exact SJ — the paper's y-axis


@dataclass
class SweepResult:
    """A full sweep over sample sizes for one data stream."""

    dataset: str
    n: int
    exact_self_join: int
    points: list[AccuracyPoint] = field(default_factory=list)

    def series(self, algorithm: str) -> list[tuple[int, float]]:
        """(sample_size, normalized estimate) pairs for one algorithm."""
        return [
            (p.sample_size, p.normalized)
            for p in self.points
            if p.algorithm == algorithm
        ]

    def algorithms(self) -> list[str]:
        """Algorithms present, in first-appearance order."""
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.algorithm, None)
        return list(seen)

    def rows(self) -> list[tuple[int, dict[str, float]]]:
        """Figure-style rows: (s, {algorithm: normalized estimate})."""
        table: dict[int, dict[str, float]] = {}
        for p in self.points:
            table.setdefault(p.sample_size, {})[p.algorithm] = p.normalized
        return sorted(table.items())

    def format_table(self) -> str:
        """Render the sweep as the figure's data table (plain text)."""
        algos = self.algorithms()
        header = "log2(s)  " + "  ".join(f"{a:>14}" for a in algos)
        lines = [
            f"# {self.dataset}: n={self.n}, exact SJ={self.exact_self_join:.4g} "
            "(normalized estimates; actual = 1.0)",
            header,
        ]
        for s, by_algo in self.rows():
            row = f"{int(np.log2(s)):>7}  " + "  ".join(
                f"{by_algo.get(a, float('nan')):>14.4f}" for a in algos
            )
            lines.append(row)
        return "\n".join(lines)


def accuracy_sweep(
    values: np.ndarray | Iterable[int],
    dataset: str = "stream",
    algorithms: Sequence[str] = ("sample-count", "tug-of-war", "naive-sampling"),
    sample_sizes: Sequence[int] | None = None,
    rng: np.random.Generator | int | None = None,
    repeats: int = 1,
) -> SweepResult:
    """Run the Section 3 accuracy sweep on one stream.

    Parameters
    ----------
    values:
        The insertion-only stream.
    dataset:
        Label carried into the result (for table headers).
    algorithms:
        Which of the three estimators to run.
    sample_sizes:
        Memory-word budgets; defaults to 1..2^14 by powers of two.
    rng:
        Generator or seed; each (algorithm, s, repeat) uses a fresh
        stream drawn from it, so points are independent runs as in the
        paper.
    repeats:
        Estimates per (algorithm, s); the paper plots 1.  With
        ``repeats > 1`` the *median* normalized estimate is recorded,
        giving smoother series for the shape assertions in benchmarks.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    arr = np.asarray(values, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("cannot sweep an empty stream")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    sizes = list(sample_sizes) if sample_sizes is not None else default_sample_sizes()
    for algo in algorithms:
        if algo not in ALGORITHMS:
            raise KeyError(f"unknown algorithm {algo!r}; choose from {sorted(ALGORITHMS)}")

    exact = self_join_size(arr)
    result = SweepResult(dataset=dataset, n=int(arr.size), exact_self_join=exact)
    for algo in algorithms:
        fn = ALGORITHMS[algo]
        for s in sizes:
            estimates = [fn(arr, int(s), gen) for _ in range(repeats)]
            est = float(np.median(estimates))
            result.points.append(
                AccuracyPoint(
                    algorithm=algo,
                    sample_size=int(s),
                    estimate=est,
                    normalized=est / exact if exact else float("nan"),
                )
            )
    return result
