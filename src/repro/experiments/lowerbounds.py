"""Empirical demonstrations of the paper's lower bounds.

* :func:`lemma23_demo` — Lemma 2.3: naive-sampling with an o(sqrt n)
  sample cannot distinguish R1 (all distinct, SJ = n) from R2 (n/2
  pairs, SJ = 2n): with sizeable probability its sample contains no
  duplicate at all and both estimates equal n — a factor 2 off on R2.
* :func:`theorem43_demo` — Theorem 4.3: on the D1/D2 input pair, a
  signature scheme whose stored bits are far below (n - sqrt(B))^2 / B
  cannot tell join size B from 2B.  We run the *sampling* signature
  at sub-lower-bound budgets and report how often its estimate falls
  on the wrong side of 1.5B — the separation the proof argues no small
  scheme can achieve.
"""

from __future__ import annotations

import numpy as np

from ..core.frequency import self_join_size
from ..core.join import sample_join_estimate
from ..core.naivesampling import naive_sampling_estimate_offline
from ..data.adversarial import lemma23_pair, theorem43_instance

__all__ = ["lemma23_demo", "theorem43_demo"]


def lemma23_demo(
    n: int = 10_000,
    sample_size: int | None = None,
    trials: int = 100,
    seed: int = 0,
) -> dict:
    """Run naive-sampling on the Lemma 2.3 pair and measure the failure.

    Parameters
    ----------
    n:
        Size of each relation (even).
    sample_size:
        Sample budget; defaults to ``int(sqrt(n) / 4)`` — comfortably
        o(sqrt n), the regime where the lemma predicts failure.
    trials:
        Independent runs.

    Returns
    -------
    dict
        The exact SJ of both relations, per-relation median estimates,
        and ``factor2_failure_rate`` — the fraction of trials whose R2
        estimate is off by at least (almost) a factor of 2 (we test
        estimate <= 0.55 * SJ(R2), allowing the +n diagonal term).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = np.random.default_rng(seed)
    r1, r2 = lemma23_pair(n, rng=rng)
    s = sample_size if sample_size is not None else max(2, int(np.sqrt(n) / 4))
    sj1 = self_join_size(r1)
    sj2 = self_join_size(r2)
    est1 = np.array(
        [naive_sampling_estimate_offline(r1, s, rng=rng) for _ in range(trials)]
    )
    est2 = np.array(
        [naive_sampling_estimate_offline(r2, s, rng=rng) for _ in range(trials)]
    )
    failures = float(np.mean(est2 <= 0.55 * sj2))
    return {
        "n": n,
        "sample_size": s,
        "sj_r1": sj1,
        "sj_r2": sj2,
        "median_estimate_r1": float(np.median(est1)),
        "median_estimate_r2": float(np.median(est2)),
        "factor2_failure_rate": failures,
        "trials": trials,
    }


def theorem43_demo(
    k: int = 8,
    c: int = 16,
    signature_words: int | None = None,
    trials: int = 50,
    seed: int = 0,
) -> dict:
    """Sampling signatures below the Theorem 4.3 bound cannot separate B from 2B.

    The instance family is parameterised via
    :func:`~repro.data.adversarial.theorem43_parameters` (k = 8, c = 16
    gives n = 1152, B = 16384, a 64-bit lower bound).  Draws ``trials``
    independent (F, G) pairs from the D1/D2 distributions, estimates
    each join with sample signatures of expected size
    ``signature_words`` (default: a quarter of the Lemma 4.2
    requirement n^2/B), and classifies the estimate as "B" or "2B" by
    thresholding at 1.5B.

    Returns the misclassification rate; at sub-lower-bound budgets it
    stays far from 0 (the theorem says >= a constant for *any* scheme).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    from ..data.adversarial import theorem43_parameters

    n, b = theorem43_parameters(k, c)
    rng = np.random.default_rng(seed)
    words = (
        signature_words
        if signature_words is not None
        else max(2, (n * n // b) // 4)
    )
    p = min(1.0, words / n)
    wrong = 0
    for _ in range(trials):
        inst = theorem43_instance(n, b, rng=rng)
        est = sample_join_estimate(inst["F"], inst["G"], p, rng=rng)
        predicted_large = est >= 1.5 * b
        actually_large = inst["join_size"] == 2 * b
        if predicted_large != actually_large:
            wrong += 1
    return {
        "n": n,
        "sanity_bound": b,
        "signature_words": words,
        "lower_bound_bits": (n - int(np.sqrt(b))) ** 2 / b,
        "misclassification_rate": wrong / trials,
        "trials": trials,
    }
