"""Join-signature experiments (the study Section 5 lists as future work).

The paper analyses the k-TW join signature scheme (Section 4.3) and
compares it analytically with sample signatures (Section 4.4), but its
experiments cover self-joins only and the conclusion calls an
experimental comparison of join signatures future work.  This module
performs that study:

* :func:`join_accuracy_sweep` — estimate |F join G| with k-TW and with
  sample signatures at matched memory budgets, over a grid of budgets;
* :func:`ktw_error_vs_bound` — measure how the k-TW error tracks the
  Lemma 4.4 standard-error bound ``sqrt(2 SJ(F) SJ(G) / k)``;
* :func:`make_relation_pair` — relation pairs with controllable skew
  and overlap, built from the Table 1 generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.frequency import join_size, self_join_size
from ..core.join import JoinSignatureFamily, sample_join_estimate
from ..data.registry import DATASETS

__all__ = [
    "make_relation_pair",
    "JoinAccuracyPoint",
    "join_accuracy_sweep",
    "ktw_error_vs_bound",
    "format_join_sweep",
]


def make_relation_pair(
    dataset: str = "zipf1.0",
    n: int = 50_000,
    overlap: float = 0.5,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Two relations with the profile of a Table 1 data set.

    Both are drawn from the same generator; ``overlap`` controls what
    fraction of the second relation's values is shifted outside the
    first's domain (overlap = 1 joins fully, overlap = 0 makes the
    payload join empty).
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    spec = DATASETS.get(dataset)
    if spec is None:
        raise KeyError(f"unknown data set {dataset!r}; choose from {sorted(DATASETS)}")
    rng = np.random.default_rng(seed)
    scale = min(1.0, n / spec.paper_length)
    left = spec.load(rng=rng, scale=scale)
    right = spec.load(rng=rng, scale=scale)
    # Shift a (1 - overlap) fraction of right's tuples into a disjoint
    # value range so the join only sees the overlapping part.
    if overlap < 1.0:
        move = rng.random(right.size) >= overlap
        offset = int(max(left.max(), right.max())) + 1
        right = right.copy()
        right[move] += offset
    return left, right


@dataclass(frozen=True)
class JoinAccuracyPoint:
    """One (scheme, budget) join estimate with its relative error."""

    scheme: str
    memory_words: int
    estimate: float
    relative_error: float


def join_accuracy_sweep(
    left: np.ndarray,
    right: np.ndarray,
    budgets: Sequence[int] = (16, 64, 256, 1024, 4096),
    seed: int = 0,
    repeats: int = 3,
) -> dict:
    """k-TW vs sample signatures at matched memory budgets.

    For each budget k: the k-TW scheme stores k words per relation; the
    sampling scheme stores an expected k values per relation
    (p = k / n).  The median relative error over ``repeats`` trials is
    reported per point.

    Returns a dict with the exact join size, the relations' self-join
    sizes, and the list of :class:`JoinAccuracyPoint`.
    """
    rng = np.random.default_rng(seed)
    exact = join_size(left, right)
    sj_left = self_join_size(left)
    sj_right = self_join_size(right)
    points: list[JoinAccuracyPoint] = []
    for k in budgets:
        if k < 1:
            raise ValueError(f"budgets must be >= 1, got {k}")
        ktw_errors = []
        ktw_last = 0.0
        for _ in range(repeats):
            family = JoinSignatureFamily(int(k), seed=int(rng.integers(0, 2**63 - 1)))
            sig_l = family.signature_from_stream(left)
            sig_r = family.signature_from_stream(right)
            ktw_last = sig_l.join_estimate(sig_r)
            ktw_errors.append(_rel_err(ktw_last, exact))
        points.append(
            JoinAccuracyPoint(
                scheme="k-TW",
                memory_words=int(k),
                estimate=ktw_last,
                relative_error=float(np.median(ktw_errors)),
            )
        )

        p = min(1.0, k / max(1, min(left.size, right.size)))
        samp_errors = []
        samp_last = 0.0
        for _ in range(repeats):
            samp_last = sample_join_estimate(left, right, p, rng=rng)
            samp_errors.append(_rel_err(samp_last, exact))
        points.append(
            JoinAccuracyPoint(
                scheme="sample",
                memory_words=int(k),
                estimate=samp_last,
                relative_error=float(np.median(samp_errors)),
            )
        )
    return {
        "exact_join": exact,
        "self_join_left": sj_left,
        "self_join_right": sj_right,
        "points": points,
    }


def ktw_error_vs_bound(
    left: np.ndarray,
    right: np.ndarray,
    k: int = 256,
    trials: int = 32,
    seed: int = 0,
) -> dict:
    """Empirical k-TW error against the Lemma 4.4 standard-error bound.

    Runs ``trials`` independent k-TW estimates and reports the RMS
    absolute error alongside ``sqrt(2 SJ(F) SJ(G) / k)``; Lemma 4.4
    guarantees RMS error at or below the bound.
    """
    if k < 1 or trials < 1:
        raise ValueError("k and trials must be >= 1")
    rng = np.random.default_rng(seed)
    exact = join_size(left, right)
    sj_l = self_join_size(left)
    sj_r = self_join_size(right)
    errors = []
    for _ in range(trials):
        family = JoinSignatureFamily(k, seed=int(rng.integers(0, 2**63 - 1)))
        est = family.signature_from_stream(left).join_estimate(
            family.signature_from_stream(right)
        )
        errors.append(est - exact)
    rms = float(np.sqrt(np.mean(np.square(errors))))
    bound = float(np.sqrt(2.0 * sj_l * sj_r / k))
    return {
        "exact_join": exact,
        "rms_error": rms,
        "bound": bound,
        "ratio": rms / bound if bound else float("inf"),
        "k": k,
        "trials": trials,
    }


def format_join_sweep(result: dict) -> str:
    """Render a join accuracy sweep as a text table."""
    lines = [
        f"# join accuracy: exact |F join G| = {result['exact_join']:.4g}, "
        f"SJ(F) = {result['self_join_left']:.3g}, "
        f"SJ(G) = {result['self_join_right']:.3g}",
        f"{'scheme':<8} {'words':>7} {'estimate':>13} {'rel. error':>11}",
    ]
    for p in result["points"]:
        lines.append(
            f"{p.scheme:<8} {p.memory_words:>7} {p.estimate:>13.4g} "
            f"{p.relative_error:>11.3f}"
        )
    return "\n".join(lines)


def _rel_err(estimate: float, actual: float) -> float:
    if actual == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - actual) / abs(actual)
