"""KeyedSketchService: per-(key, window) caching and keyed wire ops.

Service layer of ISSUE 8.  The bars: query methods refuse key-less
calls with an actionable TypeError; cache invalidation is precise per
key (one tenant's ingest never evicts another's hot windows); keyed
requests work over BOTH wire protocols on one port; and a keyed
request against an unkeyed service is a handled error, never a wrong
answer.
"""

from __future__ import annotations

import json
import socket
import threading

import numpy as np
import pytest

from repro.service import (
    EventLoopServer,
    KeyedSketchService,
    SketchService,
    SketchServiceServer,
    wire,
)
from repro.service.surface import handle_request_mapping
from repro.store import SketchSpec, WindowedSketchStore
from repro.store.keyed import KeyedSketchStore

SPEC = SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 7})


def make_keyed_service(cache_entries: int = 64) -> KeyedSketchService:
    return KeyedSketchService(
        KeyedSketchStore(SPEC, bucket_width=10), cache_entries=cache_entries
    )


def _serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def _stop(server, thread):
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    assert not thread.is_alive()


def _json_exchange(sock_file, request: dict) -> dict:
    sock_file.write((json.dumps(request) + "\n").encode())
    sock_file.flush()
    return json.loads(sock_file.readline())


class TestRequireKey:
    def test_query_methods_refuse_missing_key(self):
        service = make_keyed_service()
        for call in (
            lambda: service.estimate(0, 10),
            lambda: service.query(0, 10),
            lambda: service.estimate_window(0, 10),
            lambda: service.sketch_window(0, 10),
            lambda: service.window_bounds(0, 10),
            lambda: service.ingest([1], [2]),
        ):
            with pytest.raises(TypeError, match="keyed fleet.*key="):
                call()

    def test_bad_key_values_still_value_errors(self):
        service = make_keyed_service()
        with pytest.raises(ValueError, match="key"):
            service.estimate(0, 10, key="")

    def test_optional_key_methods_accept_none(self):
        service = make_keyed_service()
        service.ingest([1], [2], key="a")
        assert service.compact() == 0
        assert service.evict(0) == 0
        assert service.stats()["keyed"] is True
        assert service.stats()["sampler_rng"] == "counter"
        assert isinstance(service.snapshot(), dict)


class TestCachePrecision:
    def test_ingest_only_invalidates_its_own_key(self):
        service = make_keyed_service()
        service.ingest([1, 2], [5, 6], key="a")
        service.ingest([1, 2], [5, 6], key="b")
        # Warm both keys' windows.
        service.estimate(0, 10, key="a")
        service.estimate(0, 10, key="b")
        hits_before = service.stats()["hits"]
        service.ingest([3], [7], key="a")
        # b's window is still hot...
        service.estimate(0, 10, key="b")
        assert service.stats()["hits"] == hits_before + 1
        # ...while a's was invalidated and recomputes.
        misses_before = service.stats()["misses"]
        service.estimate(0, 10, key="a")
        assert service.stats()["misses"] == misses_before + 1

    def test_ingest_outside_window_keeps_same_key_hot(self):
        service = make_keyed_service()
        service.ingest([1], [5], key="a")
        service.estimate(0, 10, key="a")
        hits_before = service.stats()["hits"]
        service.ingest([55], [9], key="a")  # different bucket entirely
        service.estimate(0, 10, key="a")
        assert service.stats()["hits"] == hits_before + 1

    def test_same_window_different_keys_cached_separately(self):
        service = make_keyed_service()
        service.ingest([1], [5], key="a")
        service.ingest([1, 1], [5, 5], key="b")
        assert service.estimate(0, 10, key="a") != service.estimate(
            0, 10, key="b"
        )

    def test_keyed_answers_match_raw_store(self):
        service = make_keyed_service()
        rng = np.random.default_rng(2)
        raw = KeyedSketchStore(SPEC, bucket_width=10)
        for key in ("a", "b"):
            ts = rng.integers(0, 60, size=400).astype(np.int64)
            vals = rng.integers(0, 50, size=400).astype(np.int64)
            service.ingest(ts, vals, key=key)
            raw.ingest(key, ts, vals)
        for key in ("a", "b"):
            assert service.estimate(0, 60, key=key) == raw.estimate(key, 0, 60)
            got = service.query(0, 60, key=key)
            assert np.array_equal(got.counters, raw.query(key, 0, 60).counters)


class TestSnapshotRestore:
    def test_per_key_round_trip(self):
        service = make_keyed_service()
        service.ingest([1, 2], [5, 6], key="a")
        payload = service.snapshot(key="a")
        other = make_keyed_service()
        other.restore(payload, key="a")
        assert other.estimate(0, 10, key="a") == service.estimate(
            0, 10, key="a"
        )

    def test_whole_fleet_round_trip_invalidates_everything(self):
        service = make_keyed_service()
        service.ingest([1], [5], key="a")
        service.ingest([1], [6], key="b")
        checkpoint = service.snapshot()
        service.ingest([2], [7], key="a")
        stale = service.estimate(0, 10, key="a")
        service.restore(checkpoint)
        rolled_back = service.estimate(0, 10, key="a")
        assert rolled_back != stale
        assert service.keys == ["a", "b"]

    def test_whole_fleet_restore_refuses_mismatched_template(self):
        service = make_keyed_service()
        alien = KeyedSketchStore(SPEC, bucket_width=60)
        with pytest.raises(ValueError, match="bucket_width"):
            service.restore(alien.to_dict())

    def test_stats_key_filter(self):
        service = make_keyed_service()
        service.ingest([1, 2], [5, 6], key="a")
        service.ingest([1], [5], key="b")
        full = service.stats()
        assert full["items_by_key"] == {"a": 2, "b": 1}
        assert full["items"] == 3 and full["key_count"] == 2
        only_a = service.stats(key="a")
        assert only_a["items_by_key"] == {"a": 2} and only_a["items"] == 2
        ghost = service.stats(key="ghost")
        assert ghost["items_by_key"] == {"ghost": 0}


@pytest.mark.parametrize("server_cls", [SketchServiceServer, EventLoopServer])
class TestKeyedWireBothProtocols:
    """Keyed ops must work over JSON lines AND binary frames, one port."""

    def test_keyed_ops_both_protocols_one_port(self, server_cls):
        service = make_keyed_service()
        server = server_cls(service, ("127.0.0.1", 0), read_timeout=10.0)
        thread = _serve(server)
        try:
            host, port = server.server_address[:2]
            # JSON connection: ingest + estimate for tenant-a.
            with socket.create_connection((host, port), timeout=10) as conn:
                f = conn.makefile("rwb")
                reply = _json_exchange(f, {
                    "op": "ingest", "timestamps": [1, 2, 3],
                    "values": [5, 5, 9], "key": "tenant-a",
                })
                assert reply["ok"] and reply["ingested"] == 3
                est_a = _json_exchange(f, {
                    "op": "estimate", "from": 0, "until": 10, "key": "tenant-a",
                })
                assert est_a["ok"]
            # Binary connection: keyed ingest frame + keyed estimate
            # for tenant-b on the same port.
            with socket.create_connection((host, port), timeout=10) as conn:
                rf = conn.makefile("rb")
                conn.sendall(wire.pack_frame(wire.OP_INGEST, wire.pack_ingest(
                    np.array([1, 2], dtype=np.int64),
                    np.array([5, 5], dtype=np.int64),
                    key="tenant-b",
                )))
                _, _, _, payload = wire.read_frame(rf)
                assert wire.decode_compact(payload)["ingested"] == 2
                conn.sendall(wire.pack_frame(
                    wire.OP_ESTIMATE,
                    wire.encode_compact(
                        {"from": 0, "until": 10, "key": "tenant-b"}
                    ),
                ))
                _, _, _, payload = wire.read_frame(rf)
                est_b = wire.decode_compact(payload)
                assert est_b["ok"]
            # Both transports answered from the right stream: the
            # in-process service agrees per key.
            assert est_a["estimate"] == service.estimate(0, 10, key="tenant-a")
            assert est_b["estimate"] == service.estimate(0, 10, key="tenant-b")
            assert est_a["estimate"] != est_b["estimate"]
            assert service.keys == ["tenant-a", "tenant-b"]
        finally:
            _stop(server, thread)

    def test_keyless_request_against_keyed_service_is_handled(self, server_cls):
        service = make_keyed_service()
        service.ingest([1], [5], key="a")
        server = server_cls(service, ("127.0.0.1", 0), read_timeout=10.0)
        thread = _serve(server)
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as conn:
                f = conn.makefile("rwb")
                reply = _json_exchange(f, {"op": "estimate", "from": 0, "until": 10})
                assert reply["ok"] is False
                assert "keyed fleet" in reply["error"]
                # The connection survives the handled error.
                assert _json_exchange(f, {"op": "ping"})["pong"] is True
        finally:
            _stop(server, thread)


class TestKeyedVsUnkeyedMismatch:
    def test_keyed_request_against_plain_service_is_handled(self):
        plain = SketchService(WindowedSketchStore(SPEC, bucket_width=10))
        reply = handle_request_mapping(
            plain, {"op": "estimate", "from": 0, "until": 10, "key": "a"}
        )
        assert reply["ok"] is False
        assert "key" in reply["error"]

    def test_keyed_ingest_against_plain_service_is_handled(self):
        plain = SketchService(WindowedSketchStore(SPEC, bucket_width=10))
        reply = handle_request_mapping(
            plain,
            {"op": "ingest", "timestamps": [1], "values": [5], "key": "a"},
        )
        assert reply["ok"] is False

    def test_keyed_request_in_process_answers_match_wire(self):
        service = make_keyed_service()
        service.ingest([1, 2], [5, 5], key="a")
        reply = handle_request_mapping(
            service, {"op": "estimate", "from": 0, "until": 10, "key": "a"}
        )
        assert reply["ok"] is True
        assert reply["estimate"] == service.estimate(0, 10, key="a")
        stats = handle_request_mapping(service, {"op": "stats", "key": "a"})
        assert stats["ok"] and stats["cache"]["items_by_key"] == {"a": 2}
