"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests needing other seeds build their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_stream(rng) -> np.ndarray:
    """A 2,000-element moderately skewed stream over ~60 values."""
    return (rng.zipf(1.5, size=2000) % 60).astype(np.int64)


@pytest.fixture
def uniform_stream(rng) -> np.ndarray:
    """A 3,000-element uniform stream over 500 values."""
    return rng.integers(0, 500, size=3000, dtype=np.int64)
