"""Unit tests for the planner subsystem: graphs, enumerators, policies.

Covers the ISSUE 4 satellites: estimator-policy agreement (bound-aware
>= sketch >= 0; exact backend bit-for-bit against brute force), the
DP/greedy agreement property on small graphs, the tested
``render_plan`` behind ``JoinPlan.__str__``, and the typed
cross-product rejection in the legacy adapter.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner import (
    BoundAwareCardinalities,
    CrossProductError,
    ExactCardinalities,
    JoinGraph,
    PlanNode,
    SketchCardinalities,
    UnknownGraphRelationError,
    checked_estimate,
    enumerate_dp,
    enumerate_greedy,
    evaluate_plan,
    plan_join,
    render_plan,
)
from repro.planner.enumerators import _edge_selectivities, _subset_cardinalities
from repro.relational import (
    JoinPlan,
    Relation,
    SignatureCatalog,
    choose_join_order,
    plan_cost,
)


class _FixedEstimates:
    """Deterministic pairwise estimates from an explicit table."""

    def __init__(self, graph: JoinGraph, selectivities: dict):
        self.graph = graph
        self.sel = {frozenset(k): v for k, v in selectivities.items()}

    def join_estimate(self, left: str, right: str) -> float:
        sel = self.sel.get(frozenset((left, right)), 0.01)
        return sel * self.graph.size(left) * self.graph.size(right)


class TestJoinGraph:
    def test_construction_and_lookups(self):
        g = JoinGraph({"A": 10, "B": 20}, edges=[("A", "B")])
        assert g.relations == ["A", "B"]
        assert g.sizes == {"A": 10, "B": 20}
        assert g.size("B") == 20
        assert g.has_edge("A", "B") and g.has_edge("B", "A")
        assert g.edges == [("A", "B")]
        assert "A" in g and "Z" not in g
        assert len(g) == 2 and list(g) == ["A", "B"]

    def test_duplicate_relation_rejected(self):
        g = JoinGraph({"A": 1})
        with pytest.raises(KeyError, match="already"):
            g.add_relation("A", 2)

    def test_empty_name_and_negative_size_rejected(self):
        g = JoinGraph()
        with pytest.raises(ValueError, match="non-empty"):
            g.add_relation("", 1)
        with pytest.raises(ValueError, match="negative size"):
            g.add_relation("A", -1)

    def test_unknown_relation_typed_error(self):
        g = JoinGraph({"A": 1})
        with pytest.raises(UnknownGraphRelationError) as excinfo:
            g.add_edge("A", "Z")
        assert not isinstance(excinfo.value, KeyError)
        assert excinfo.value.name == "Z"
        assert "add_relation" in str(excinfo.value)

    def test_self_edge_rejected(self):
        g = JoinGraph({"A": 1, "B": 2})
        with pytest.raises(ValueError, match="self-edge"):
            g.add_edge("A", "A")

    def test_neighbors(self):
        g = JoinGraph.star("F", 100, {"D1": 10, "D2": 20})
        assert g.neighbors("F") == ["D1", "D2"]
        assert g.neighbors("D1") == ["F"]

    def test_factories(self):
        chain = JoinGraph.chain({"A": 1, "B": 2, "C": 3})
        assert chain.edges == [("A", "B"), ("B", "C")]
        star = JoinGraph.star("F", 9, {"D1": 1, "D2": 2})
        assert star.edges == [("F", "D1"), ("F", "D2")]
        clique = JoinGraph.clique({"A": 1, "B": 2, "C": 3})
        assert len(clique.edges) == 3

    def test_is_connected(self):
        g = JoinGraph.chain({"A": 1, "B": 2, "C": 3})
        assert g.is_connected()
        assert g.is_connected(["A", "B"])
        assert not g.is_connected(["A", "C"])  # B missing: no path
        assert g.is_connected(["A"]) and g.is_connected([])
        disconnected = JoinGraph({"A": 1, "B": 2})
        assert not disconnected.is_connected()

    def test_masks_round_trip(self):
        g = JoinGraph.clique({"A": 1, "B": 2, "C": 3})
        mask = g.subset_mask(["C", "A"])
        assert g.mask_names(mask) == ["A", "C"]  # insertion order


class TestPlanNodeAndRendering:
    @pytest.fixture
    def plan(self):
        g = JoinGraph.chain({"A": 100, "B": 200, "C": 50})
        est = _FixedEstimates(g, {("A", "B"): 0.01, ("B", "C"): 0.02})
        return g, enumerate_dp(g, est, mode="left-deep")

    def test_annotations(self, plan):
        g, tree = plan
        assert tree.relations == ("A", "B", "C")
        assert not tree.is_leaf
        assert tree.cost >= tree.cardinality > 0
        leaf_names = set(tree.order())
        assert leaf_names == {"A", "B", "C"}
        assert tree.depth() == 3  # left-deep over three relations

    def test_leaf_accessors(self):
        leaf = PlanNode(relations=("A",), cardinality=5.0, cost=0.0)
        assert leaf.is_leaf and leaf.name == "A" and leaf.order() == ("A",)
        join = PlanNode(
            relations=("A", "B"), cardinality=1.0, cost=1.0,
            left=leaf, right=PlanNode(("B",), 2.0, 0.0),
        )
        with pytest.raises(ValueError, match="no name"):
            join.name

    def test_render_plan_shows_every_node(self, plan):
        _, tree = plan
        text = render_plan(tree)
        lines = text.splitlines()
        assert len(lines) == 5  # 2 joins + 3 leaves
        for name in ("A", "B", "C"):
            assert any(name in line for line in lines)
        assert "card" in lines[0] and "cost" in lines[0]
        assert str(tree) == text

    def test_render_marks_cross_products(self):
        g = JoinGraph({"A": 3, "B": 4})
        tree = enumerate_greedy(
            g, _FixedEstimates(g, {}), allow_cross_products=True
        )
        assert tree.cross_product
        assert "×" in render_plan(tree)
        assert tree.cardinality == 12.0

    def test_structure_fingerprint(self, plan):
        g, tree = plan
        fingerprint = tree.structure()
        assert isinstance(fingerprint, tuple)
        est = _FixedEstimates(g, {("A", "B"): 0.01, ("B", "C"): 0.02})
        assert enumerate_dp(g, est, mode="left-deep").structure() == fingerprint

    def test_joinplan_str_uses_render_plan(self):
        g = JoinGraph.chain({"A": 100, "B": 200, "C": 50})
        sizes = {"A": 100, "B": 200, "C": 50}
        est = _FixedEstimates(g, {("A", "B"): 0.01, ("B", "C"): 0.02})
        plan = choose_join_order(
            ["A", "B", "C"], sizes, est, edges=g.edges
        )
        assert plan.tree is not None
        assert str(plan) == render_plan(plan.tree)

    def test_treeless_joinplan_str_is_one_line(self):
        plan = JoinPlan(order=("A", "B"), estimated_cost=12.5)
        text = str(plan)
        assert "A ⋈ B" in text and "12.5" in text
        assert "\n" not in text


class TestEstimatorPolicies:
    @pytest.fixture
    def workload(self, rng):
        relations = {
            "A": Relation("A", rng.integers(0, 40, size=2000)),
            "B": Relation("B", rng.integers(0, 40, size=1500)),
            "C": Relation("C", rng.integers(20, 60, size=1000)),
        }
        catalog = SignatureCatalog(k=512, seed=7)
        for name, rel in relations.items():
            catalog.register(name, rel.values_array())
        return relations, catalog

    def test_exact_backend_matches_brute_force_bit_for_bit(self, workload):
        relations, _ = workload
        exact = ExactCardinalities(relations)
        for left, right in itertools.combinations(relations, 2):
            a = relations[left].values_array()
            b = relations[right].values_array()
            brute = sum(
                int(np.sum(a == v)) * int(np.sum(b == v))
                for v in np.unique(np.concatenate([a, b]))
            )
            assert exact.join_estimate(left, right) == float(brute)

    def test_exact_backend_unknown_relation(self, workload):
        relations, _ = workload
        from repro.relational import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            ExactCardinalities(relations).join_estimate("A", "Z")

    def test_bound_aware_dominates_sketch_dominates_zero(self, workload):
        relations, catalog = workload
        sketch = SketchCardinalities(catalog)
        bound = BoundAwareCardinalities(catalog, confidence=1.0)
        for left, right in itertools.combinations(relations, 2):
            s = sketch.join_estimate(left, right)
            b = bound.join_estimate(left, right)
            assert b >= s >= 0.0
            # With a positive error bound the domination is strict.
            assert b > s

    def test_bound_confidence_scales_inflation(self, workload):
        _, catalog = workload
        lo = BoundAwareCardinalities(catalog, confidence=0.5)
        hi = BoundAwareCardinalities(catalog, confidence=2.0)
        assert hi.join_estimate("A", "B") > lo.join_estimate("A", "B")
        zero = BoundAwareCardinalities(catalog, confidence=0.0)
        sketch = SketchCardinalities(catalog)
        assert zero.join_estimate("A", "B") == sketch.join_estimate("A", "B")

    def test_bound_aware_requires_error_bound(self, workload):
        relations, _ = workload

        class _NoBound:
            def join_estimate(self, left, right):
                return 1.0

        with pytest.raises(TypeError, match="join_error_bound"):
            BoundAwareCardinalities(_NoBound())
        with pytest.raises(ValueError, match="confidence"):
            BoundAwareCardinalities(
                ExactCardinalities(relations), confidence=-1.0
            )

    def test_exact_is_a_degenerate_bound_backend(self, workload):
        relations, _ = workload
        exact = ExactCardinalities(relations)
        assert exact.join_error_bound("A", "B") == 0.0
        bound = BoundAwareCardinalities(exact, confidence=3.0)
        assert bound.join_estimate("A", "B") == exact.join_estimate("A", "B")

    def test_checked_estimate_rejects_non_finite(self):
        with pytest.raises(ValueError, match=r"non-finite.*'A'.*'B'"):
            checked_estimate(float("nan"), "A", "B")
        assert checked_estimate(-5.0, "A", "B") == 0.0


def _brute_force_best(graph, estimator, mode, allow_cross_products=False):
    """Minimum plan cost by exhaustive enumeration (small n only)."""
    names = graph.relations
    idx = {n: i for i, n in enumerate(names)}
    sel = _edge_selectivities(graph, estimator, names)
    card = _subset_cardinalities(
        len(names), [float(graph.size(n)) for n in names], sel
    )

    def connected(mask_a, mask_b):
        return any(
            graph.has_edge(a, b)
            for a in graph.mask_names(mask_a)
            for b in graph.mask_names(mask_b)
        )

    best = None
    if mode == "left-deep":
        for perm in itertools.permutations(names):
            mask = 1 << idx[perm[0]]
            cost = 0.0
            ok = True
            for name in perm[1:]:
                bit = 1 << idx[name]
                if not (allow_cross_products or connected(mask, bit)):
                    ok = False
                    break
                mask |= bit
                cost += card[mask]
            if ok and (best is None or cost < best):
                best = cost
        return best

    full = (1 << len(names)) - 1
    memo: dict[int, float | None] = {1 << i: 0.0 for i in range(len(names))}

    def solve(mask):
        if mask in memo:
            return memo[mask]
        result = None
        sub = (mask - 1) & mask
        while sub:
            other = mask ^ sub
            if other and (allow_cross_products or connected(sub, other)):
                lc, rc = solve(sub), solve(other)
                if lc is not None and rc is not None:
                    total = lc + rc + card[mask]
                    if result is None or total < result:
                        result = total
            sub = (sub - 1) & mask
        memo[mask] = result
        return result

    return solve(full)


class TestEnumerators:
    def _random_graph(self, rng, n, shape):
        sizes = {f"R{i}": int(rng.integers(10, 3000)) for i in range(n)}
        if shape == "chain":
            graph = JoinGraph.chain(sizes)
        elif shape == "clique":
            graph = JoinGraph.clique(sizes)
        else:
            items = list(sizes.items())
            graph = JoinGraph.star(items[0][0], items[0][1], dict(items[1:]))
        sel = {
            frozenset(edge): float(rng.uniform(1e-4, 5e-2))
            for edge in graph.edges
        }
        return graph, _FixedEstimates(graph, {tuple(k): v for k, v in sel.items()})

    @pytest.mark.parametrize("shape", ["chain", "star", "clique"])
    @pytest.mark.parametrize("mode", ["left-deep", "bushy"])
    def test_dp_matches_brute_force(self, rng, shape, mode):
        for trial in range(5):
            graph, est = self._random_graph(rng, int(rng.integers(3, 6)), shape)
            plan = enumerate_dp(graph, est, mode=mode)
            brute = _brute_force_best(graph, est, mode)
            assert plan.cost == pytest.approx(brute, rel=1e-12)

    def test_bushy_never_worse_than_left_deep(self, rng):
        for shape in ("chain", "star", "clique"):
            graph, est = self._random_graph(rng, 5, shape)
            bushy = enumerate_dp(graph, est, mode="bushy")
            leftdeep = enumerate_dp(graph, est, mode="left-deep")
            assert bushy.cost <= leftdeep.cost * (1 + 1e-12)

    def test_dp_deterministic_across_runs(self, rng):
        graph, est = self._random_graph(rng, 6, "clique")
        first = enumerate_dp(graph, est, mode="bushy")
        for _ in range(3):
            again = enumerate_dp(graph, est, mode="bushy")
            assert again.structure() == first.structure()
            assert again.cost == first.cost

    def test_unknown_mode_rejected(self):
        g = JoinGraph.clique({"A": 1, "B": 2})
        with pytest.raises(ValueError, match="unknown DP mode"):
            enumerate_dp(g, _FixedEstimates(g, {}), mode="zigzag")

    def test_single_relation_rejected(self):
        g = JoinGraph({"A": 1})
        with pytest.raises(ValueError, match="two relations"):
            enumerate_dp(g, _FixedEstimates(g, {}))
        with pytest.raises(ValueError, match="two relations"):
            enumerate_greedy(g, _FixedEstimates(g, {}))

    def test_disconnected_graph_raises_typed_cross_product(self):
        g = JoinGraph({"A": 10, "B": 20, "C": 30}, edges=[("A", "B")])
        est = _FixedEstimates(g, {("A", "B"): 0.01})
        with pytest.raises(CrossProductError, match="cross product") as excinfo:
            enumerate_dp(g, est)
        assert set(excinfo.value.left) == {"A", "B"}
        assert set(excinfo.value.right) == {"C"}
        with pytest.raises(CrossProductError):
            enumerate_greedy(g, est)

    def test_disconnected_graph_allowed_with_flag(self):
        g = JoinGraph({"A": 10, "B": 20, "C": 30}, edges=[("A", "B")])
        est = _FixedEstimates(g, {("A", "B"): 0.01})
        plan = enumerate_dp(g, est, allow_cross_products=True)
        assert set(plan.order()) == {"A", "B", "C"}
        greedy = enumerate_greedy(g, est, allow_cross_products=True)
        assert set(greedy.order()) == {"A", "B", "C"}

    def test_dp_beats_greedy_on_star_via_cross_product(self):
        # Every fact join keeps the intermediate near |F|; crossing the
        # tiny dimensions first is cheaper, but a left-deep heuristic
        # can never see it.
        g = JoinGraph.star("F", 200_000, {"D1": 40, "D2": 50, "D3": 60})
        est = _FixedEstimates(
            g,
            {("F", "D1"): 1 / 40, ("F", "D2"): 1 / 50, ("F", "D3"): 1 / 60},
        )
        greedy = enumerate_greedy(g, est)
        dp = enumerate_dp(g, est, mode="bushy", allow_cross_products=True)
        assert dp.cost < greedy.cost
        assert "×" in render_plan(dp)  # the win comes from a cross product

    def test_plan_join_dispatch(self):
        g = JoinGraph.clique({"A": 10, "B": 20, "C": 5})
        est = _FixedEstimates(g, {})
        for name in ("greedy", "dp-leftdeep", "dp-bushy"):
            plan = plan_join(g, est, name)
            assert set(plan.order()) == {"A", "B", "C"}
        with pytest.raises(KeyError, match="unknown enumerator"):
            plan_join(g, est, "exhaustive")

    def test_evaluate_plan_repricing(self, rng):
        relations = {
            "A": Relation("A", rng.integers(0, 30, size=800)),
            "B": Relation("B", rng.integers(0, 30, size=700)),
            "C": Relation("C", rng.integers(0, 30, size=600)),
        }
        g = JoinGraph.clique({n: r.size for n, r in relations.items()})
        exact = ExactCardinalities(relations)
        catalog = SignatureCatalog(k=512, seed=3)
        for name, rel in relations.items():
            catalog.register(name, rel.values_array())
        sketched = enumerate_dp(g, SketchCardinalities(catalog))
        repriced = evaluate_plan(sketched, g, exact)
        assert repriced.structure() == sketched.structure()
        direct = enumerate_dp(g, exact)
        # Re-pricing the sketch plan under truth can never beat the
        # exact-policy optimum.
        assert repriced.cost >= direct.cost * (1 - 1e-12)


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=2, max_size=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_dp_and_greedy_agree_on_tiny_graphs(sizes, seed):
    """ISSUE 4 satellite: DP == greedy on 2-3 relation clique graphs.

    On two relations there is one plan; on three, every left-deep
    order's final intermediate is the same set cardinality, so the
    greedy seed (cheapest first pair) is provably optimal — the DP must
    agree on cost.
    """
    names = [f"R{i}" for i in range(len(sizes))]
    graph = JoinGraph.clique(dict(zip(names, sizes)))
    rng = np.random.default_rng(seed)
    est = _FixedEstimates(
        graph,
        {tuple(e): float(rng.uniform(1e-4, 0.9)) for e in graph.edges},
    )
    greedy = enumerate_greedy(graph, est)
    dp = enumerate_dp(graph, est, mode="left-deep")
    assert dp.cost == pytest.approx(greedy.cost, rel=1e-9)
    bushy = enumerate_dp(graph, est, mode="bushy")
    assert bushy.cost == pytest.approx(greedy.cost, rel=1e-9)


class TestLegacyAdapter:
    """The old surface must behave identically, plus the new knobs."""

    def test_choose_join_order_carries_tree(self, rng):
        relations = {
            "A": Relation("A", rng.integers(0, 20, size=500)),
            "B": Relation("B", rng.integers(0, 20, size=400)),
            "C": Relation("C", rng.integers(0, 20, size=300)),
        }
        exact = ExactCardinalities(relations)
        sizes = {n: r.size for n, r in relations.items()}
        plan = choose_join_order(["A", "B", "C"], sizes, exact)
        assert plan.tree is not None
        assert plan.tree.order() == plan.order
        assert plan.tree.cost == pytest.approx(plan.estimated_cost)

    def test_choose_join_order_rejects_cross_product_with_edges(self, rng):
        relations = {
            "A": Relation("A", rng.integers(0, 20, size=500)),
            "B": Relation("B", rng.integers(0, 20, size=400)),
            "C": Relation("C", rng.integers(0, 20, size=300)),
        }
        exact = ExactCardinalities(relations)
        sizes = {n: r.size for n, r in relations.items()}
        with pytest.raises(CrossProductError, match="allow_cross_products"):
            choose_join_order(
                ["A", "B", "C"], sizes, exact, edges=[("A", "B")]
            )
        plan = choose_join_order(
            ["A", "B", "C"], sizes, exact,
            edges=[("A", "B")], allow_cross_products=True,
        )
        assert set(plan.order) == {"A", "B", "C"}

    def test_plan_cost_rejects_cross_product_orders(self):
        sizes = {"A": 10, "B": 20, "C": 30}
        edges = [("A", "B"), ("B", "C")]
        join_size = lambda a, b: 5.0  # noqa: E731

        # A-C as the first pair has no edge: typed rejection.
        with pytest.raises(CrossProductError) as excinfo:
            plan_cost(["A", "C", "B"], sizes, join_size, edges=edges)
        assert isinstance(excinfo.value, ValueError)
        # Legal order under the same edges still works.
        cost = plan_cost(["A", "B", "C"], sizes, join_size, edges=edges)
        assert cost > 0

    def test_plan_cost_cross_product_allowed_is_cartesian(self):
        sizes = {"A": 10, "B": 20}
        cost = plan_cost(
            ["A", "B"], sizes, lambda a, b: 5.0,
            edges=[], allow_cross_products=True,
        )
        assert cost == 200.0  # |A| * |B|, not the join_size callable

    def test_plan_cost_edges_restrict_selectivities(self):
        # With edges declared, only edge pairs contribute selectivity;
        # the unconnected pair must not call join_size at all.
        sizes = {"A": 10, "B": 20, "C": 30}
        calls = []

        def join_size(a, b):
            calls.append(frozenset((a, b)))
            return 5.0

        plan_cost(
            ["A", "B", "C"], sizes, join_size,
            edges=[("A", "B"), ("B", "C")],
        )
        assert frozenset(("A", "C")) not in calls

    def test_plan_cost_rejects_malformed_edges(self):
        with pytest.raises(ValueError, match="two distinct relations"):
            plan_cost(
                ["A", "B"], {"A": 1, "B": 1}, lambda a, b: 1.0,
                edges=[("A", "A")],
            )

    def test_plan_cost_rejects_unknown_edge_endpoints(self):
        # A typo'd endpoint must raise the same typed error
        # choose_join_order gives, not silently become "no edge".
        with pytest.raises(UnknownGraphRelationError, match="'Bee'"):
            plan_cost(
                ["A", "B"], {"A": 10, "B": 20}, lambda a, b: 5.0,
                edges=[("A", "Bee")], allow_cross_products=True,
            )

    def test_plan_cost_without_edges_is_unchanged(self):
        # The historical all-pairs behaviour: every pair contributes.
        sizes = {"A": 100, "B": 200, "C": 300}
        legacy = plan_cost(["A", "B", "C"], sizes, lambda a, b: 50.0)
        expected = 50.0 + 50.0 * 300 * (50.0 / (100 * 300)) * (50.0 / (200 * 300))
        assert legacy == pytest.approx(expected)


class TestServiceWindowPlanning:
    """Planning over live windowed data through CatalogService."""

    @pytest.fixture
    def service(self, rng):
        from repro.relational import WindowedSignatureCatalog
        from repro.service import CatalogService

        catalog = WindowedSignatureCatalog(k=512, bucket_width=10, seed=2)
        service = CatalogService(catalog)
        self.streams = {
            "A": rng.integers(0, 30, size=2000),
            "B": rng.integers(0, 30, size=1800),
            "C": rng.integers(0, 30, size=1500),
        }
        for name, values in self.streams.items():
            service.register(name)
            ts = rng.integers(0, 50, size=values.size)
            service.ingest(name, ts, values)
        return service

    def test_window_view_supports_bound_aware_planning(self, service):
        view = service.at_window(0, 50)
        bound = BoundAwareCardinalities(view, confidence=1.0)
        sketch = SketchCardinalities(view)
        assert (
            bound.join_estimate("A", "B")
            > sketch.join_estimate("A", "B")
            >= 0.0
        )
        graph = JoinGraph.clique(
            {name: len(vals) for name, vals in self.streams.items()}
        )
        plan = enumerate_dp(graph, bound)
        assert set(plan.order()) == {"A", "B", "C"}

    def test_join_error_bound_is_cached(self, service):
        before = service.stats()["misses"]
        first = service.join_error_bound("A", "B", 0, 50)
        second = service.join_error_bound("B", "A", 0, 50)  # order-normalised
        assert first == second > 0.0
        stats = service.stats()
        assert stats["misses"] == before + 1
        assert stats["hits"] >= 1

    def test_ingest_invalidates_bound_entries(self, service, rng):
        first = service.join_error_bound("A", "B", 0, 50)
        service.ingest(
            "A", rng.integers(0, 50, size=200), rng.integers(0, 30, size=200)
        )
        after = service.join_error_bound("A", "B", 0, 50)
        assert after != first  # recomputed over the mutated window

    def test_windowed_bound_matches_catalog_formula(self, rng):
        from repro.core.bounds import ktw_join_error_bound
        from repro.relational import WindowedSignatureCatalog

        catalog = WindowedSignatureCatalog(k=500, bucket_width=10, seed=2, s2=5)
        for name in ("A", "B"):
            catalog.register(name)
            catalog.ingest(
                name,
                rng.integers(0, 50, size=1000),
                rng.integers(0, 30, size=1000),
            )
        expected = ktw_join_error_bound(
            max(0.0, catalog.self_join_estimate("A", 0, 50)),
            max(0.0, catalog.self_join_estimate("B", 0, 50)),
            catalog.k,
        )
        assert catalog.join_error_bound("A", "B", 0, 50) == pytest.approx(expected)
