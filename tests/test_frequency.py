"""Unit tests for FrequencyVector and the exact SJ/join helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import (
    FrequencyVector,
    distinct_values,
    first_moment,
    join_size,
    self_join_size,
)


class TestFrequencyVector:
    def test_empty(self):
        fv = FrequencyVector()
        assert fv.total == 0
        assert fv.distinct == 0
        assert fv.self_join_size() == 0

    def test_insert_counts(self):
        fv = FrequencyVector()
        for v in [1, 2, 2, 3, 3, 3]:
            fv.insert(v)
        assert fv.total == 6
        assert fv.distinct == 3
        assert fv.frequency(3) == 3
        assert fv.frequency(99) == 0

    def test_self_join_size(self):
        fv = FrequencyVector({1: 1, 2: 2, 3: 3})
        assert fv.self_join_size() == 1 + 4 + 9

    def test_delete(self):
        fv = FrequencyVector({5: 2})
        fv.delete(5)
        assert fv.total == 1
        assert fv.frequency(5) == 1
        fv.delete(5)
        assert fv.total == 0
        assert 5 not in fv

    def test_delete_absent_raises(self):
        fv = FrequencyVector({1: 1})
        with pytest.raises(KeyError, match="not present"):
            fv.delete(2)

    def test_delete_below_zero_raises(self):
        fv = FrequencyVector({1: 1})
        fv.delete(1)
        with pytest.raises(KeyError):
            fv.delete(1)

    def test_from_stream(self, small_stream):
        fv = FrequencyVector.from_stream(small_stream)
        assert fv.total == small_stream.size
        assert fv.self_join_size() == self_join_size(small_stream)

    def test_from_empty_stream(self):
        fv = FrequencyVector.from_stream(np.array([], dtype=np.int64))
        assert fv.total == 0

    def test_join_size_symmetric(self, small_stream, uniform_stream):
        a = FrequencyVector.from_stream(small_stream)
        b = FrequencyVector.from_stream(uniform_stream % 60)
        assert a.join_size(b) == b.join_size(a)

    def test_join_with_self_is_sj(self, small_stream):
        fv = FrequencyVector.from_stream(small_stream)
        assert fv.join_size(fv) == fv.self_join_size()

    def test_join_size_manual(self):
        a = FrequencyVector({1: 2, 2: 3})
        b = FrequencyVector({2: 5, 3: 7})
        assert a.join_size(b) == 15

    def test_join_disjoint_is_zero(self):
        a = FrequencyVector({1: 4})
        b = FrequencyVector({2: 4})
        assert a.join_size(b) == 0

    def test_join_type_error(self):
        with pytest.raises(TypeError, match="FrequencyVector"):
            FrequencyVector().join_size([1, 2, 3])

    def test_skew_all_distinct(self):
        fv = FrequencyVector.from_stream(np.arange(100))
        assert fv.skew() == pytest.approx(1.0)

    def test_skew_single_value(self):
        fv = FrequencyVector({7: 50})
        assert fv.skew() == pytest.approx(50.0)

    def test_skew_empty(self):
        assert FrequencyVector().skew() == 0.0

    def test_max_frequency(self):
        fv = FrequencyVector({1: 3, 2: 9, 3: 1})
        assert fv.max_frequency() == 9
        assert FrequencyVector().max_frequency() == 0

    def test_as_arrays_sorted(self):
        fv = FrequencyVector({5: 2, 1: 3, 9: 1})
        values, counts = fv.as_arrays()
        assert values.tolist() == [1, 5, 9]
        assert counts.tolist() == [3, 2, 1]

    def test_as_arrays_empty(self):
        values, counts = FrequencyVector().as_arrays()
        assert values.size == 0 and counts.size == 0

    def test_copy_is_independent(self):
        fv = FrequencyVector({1: 1})
        cp = fv.copy()
        cp.insert(2)
        assert fv.distinct == 1
        assert cp.distinct == 2

    def test_equality(self):
        assert FrequencyVector({1: 2}) == FrequencyVector({1: 2})
        assert FrequencyVector({1: 2}) != FrequencyVector({1: 3})
        assert FrequencyVector() != object()

    def test_len_and_contains(self):
        fv = FrequencyVector({4: 3})
        assert len(fv) == 3
        assert 4 in fv
        assert 5 not in fv

    def test_constructor_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="negative"):
            FrequencyVector({1: -1})

    def test_constructor_skips_zero_counts(self):
        fv = FrequencyVector({1: 0, 2: 3})
        assert 1 not in fv
        assert fv.total == 3

    def test_insert_delete_roundtrip(self, rng):
        fv = FrequencyVector()
        values = rng.integers(0, 20, size=200).tolist()
        for v in values:
            fv.insert(int(v))
        for v in values:
            fv.delete(int(v))
        assert fv == FrequencyVector()

    def test_update_from_frequencies_no_int64_overflow(self):
        # Per-value and total sums beyond int64: the vectorised path
        # must not silently wrap (the class is the exactness ground
        # truth, so Python-int arithmetic is the contract).
        fv = FrequencyVector()
        big = (1 << 62) + 3
        fv.update_from_frequencies([5, 5, 5], [big, big, big])
        assert fv.frequency(5) == 3 * big
        assert fv.total == 3 * big
        # And the vectorised path still composes with prior state.
        fv.update_from_frequencies([5, 6], [1, 2])
        assert fv.frequency(5) == 3 * big + 1
        assert fv.total == 3 * big + 3

    def test_update_from_frequencies_matches_per_entry_near_bound(self):
        batch_vals = [1, 2, 1, 2]
        batch_cnts = [(1 << 62), 7, (1 << 62), 5]
        fast = FrequencyVector()
        fast.update_from_frequencies(batch_vals, batch_cnts)
        slow = FrequencyVector()
        for v, c in zip(batch_vals, batch_cnts):
            slow.update(v, c)
        assert fast == slow
        assert fast.total == slow.total == 2 * (1 << 62) + 12


class TestArrayHelpers:
    def test_self_join_size_manual(self):
        assert self_join_size(np.array([1, 1, 2])) == 5

    def test_self_join_size_empty(self):
        assert self_join_size(np.array([], dtype=np.int64)) == 0

    def test_self_join_size_all_distinct_is_n(self):
        assert self_join_size(np.arange(1000)) == 1000

    def test_self_join_size_single_value_is_n_squared(self):
        assert self_join_size(np.zeros(40, dtype=np.int64)) == 1600

    def test_join_size_manual(self):
        assert join_size([1, 1, 2], [1, 2, 2]) == 2 * 1 + 1 * 2

    def test_join_size_empty(self):
        assert join_size([], [1, 2]) == 0

    def test_join_size_matches_frequency_vector(self, rng):
        a = rng.integers(0, 50, size=500)
        b = rng.integers(0, 50, size=700)
        fa = FrequencyVector.from_stream(a)
        fb = FrequencyVector.from_stream(b)
        assert join_size(a, b) == fa.join_size(fb)

    def test_first_moment(self):
        assert first_moment([1, 2, 3]) == 3

    def test_distinct_values(self):
        assert distinct_values([1, 1, 2, 9]) == 3
        assert distinct_values([]) == 0

    def test_rejects_float_stream(self):
        with pytest.raises(TypeError, match="integer"):
            self_join_size(np.array([1.5, 2.5]))

    def test_rejects_2d_stream(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            self_join_size(np.zeros((2, 2), dtype=np.int64))

    def test_negative_values_allowed(self):
        assert self_join_size(np.array([-1, -1, 3])) == 5
