"""Unit tests for the synthetic / text / spatial data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import distinct_values, self_join_size
from repro.data.spatial import spatial_coordinates, spatial_points
from repro.data.synthetic import multifractal, poisson, self_similar, uniform, zipf
from repro.data.text import TEXT_PROFILES, synthetic_text


class TestZipf:
    def test_length_and_domain(self):
        out = zipf(5000, 100, alpha=1.0, rng=0)
        assert out.size == 5000
        assert out.min() >= 1 and out.max() <= 100

    def test_zero_length(self):
        assert zipf(0, 10, rng=0).size == 0

    def test_more_alpha_more_skew(self):
        lo = zipf(30_000, 500, alpha=0.8, rng=1)
        hi = zipf(30_000, 500, alpha=1.8, rng=1)
        assert self_join_size(hi) > self_join_size(lo)

    def test_rank_one_most_frequent(self):
        out = zipf(50_000, 50, alpha=1.2, rng=2)
        values, counts = np.unique(out, return_counts=True)
        assert values[np.argmax(counts)] == 1

    def test_offset_flattens_head(self):
        plain = zipf(50_000, 500, alpha=1.0, offset=0.0, rng=3)
        flat = zipf(50_000, 500, alpha=1.0, offset=3.0, rng=3)
        assert self_join_size(flat) < self_join_size(plain)

    def test_sj_matches_analytic(self):
        # SJ ~ n^2 sum p_i^2 for a big sample.
        n, t = 200_000, 100
        out = zipf(n, t, alpha=1.0, rng=4)
        ranks = np.arange(1, t + 1, dtype=np.float64)
        p = (1 / ranks) / np.sum(1 / ranks)
        expected = n * n * float(np.sum(p * p))
        assert self_join_size(out) == pytest.approx(expected, rel=0.05)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf(-1, 10)
        with pytest.raises(ValueError):
            zipf(1, 0)
        with pytest.raises(ValueError):
            zipf(1, 10, alpha=-1)
        with pytest.raises(ValueError):
            zipf(1, 10, offset=-0.5)


class TestUniform:
    def test_range(self):
        out = uniform(1000, 64, rng=0)
        assert out.min() >= 0 and out.max() < 64

    def test_sj_matches_analytic(self):
        # E[SJ] = n^2/t + n(1 - 1/t).
        n, t = 100_000, 1024
        out = uniform(n, t, rng=1)
        expected = n * n / t + n * (1 - 1 / t)
        assert self_join_size(out) == pytest.approx(expected, rel=0.05)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            uniform(-1, 10)
        with pytest.raises(ValueError):
            uniform(1, 0)


class TestMultifractal:
    def test_domain_bound(self):
        out = multifractal(2000, 0.2, 8, rng=0)
        assert out.min() >= 0 and out.max() < 256

    def test_sj_matches_pmodel(self):
        # sum p_leaf^2 = (b^2 + (1-b)^2)^order.
        n, b, order = 60_000, 0.2, 10
        out = multifractal(n, b, order, rng=1)
        expected = n * n * (b * b + (1 - b) ** 2) ** order
        assert self_join_size(out) == pytest.approx(expected, rel=0.1)

    def test_bias_half_is_uniform(self):
        out = multifractal(50_000, 0.5, 6, rng=2)  # 64 values, uniform
        n, t = 50_000, 64
        expected = n * n / t + n
        assert self_join_size(out) == pytest.approx(expected, rel=0.05)

    def test_bias_zero_all_zero(self):
        out = multifractal(100, 0.0, 5, rng=0)
        assert np.all(out == 0)

    def test_bias_one_all_max(self):
        out = multifractal(100, 1.0, 5, rng=0)
        assert np.all(out == 31)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            multifractal(1, -0.1, 4)
        with pytest.raises(ValueError):
            multifractal(1, 0.5, 0)
        with pytest.raises(ValueError):
            multifractal(-1, 0.5, 4)


class TestSelfSimilar:
    def test_domain_bound(self):
        out = self_similar(5000, 200, rng=0)
        assert out.min() >= 0 and out.max() < 200

    def test_skew_increases_with_h(self):
        lo = self_similar(40_000, 256, h=0.6, rng=1)
        hi = self_similar(40_000, 256, h=0.95, rng=1)
        assert self_join_size(hi) > self_join_size(lo)

    def test_sj_matches_analytic_power_of_two(self):
        # For a power-of-two domain there is no rejection: sum p^2 =
        # (h^2 + (1-h)^2)^levels.
        n, t, h = 80_000, 256, 0.905
        out = self_similar(n, t, h=h, rng=2)
        expected = n * n * (h * h + (1 - h) ** 2) ** 8
        assert self_join_size(out) == pytest.approx(expected, rel=0.1)

    def test_low_values_most_popular(self):
        out = self_similar(50_000, 256, h=0.9, rng=3)
        values, counts = np.unique(out, return_counts=True)
        assert values[np.argmax(counts)] == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            self_similar(1, 0)
        with pytest.raises(ValueError):
            self_similar(1, 10, h=0.4)
        with pytest.raises(ValueError):
            self_similar(1, 10, h=1.0)


class TestPoisson:
    def test_small_domain(self):
        out = poisson(120_000, lam=20.0, rng=0)
        assert distinct_values(out) < 70

    def test_sj_matches_analytic(self):
        # SJ ~ n^2 / (2 sqrt(pi lam)).
        n, lam = 200_000, 20.0
        out = poisson(n, lam=lam, rng=1)
        expected = n * n / (2 * np.sqrt(np.pi * lam))
        assert self_join_size(out) == pytest.approx(expected, rel=0.05)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            poisson(-1)
        with pytest.raises(ValueError):
            poisson(1, lam=0)


class TestSyntheticText:
    def test_named_profiles(self):
        for name in TEXT_PROFILES:
            out = synthetic_text(name, rng=0)
            assert out.size == TEXT_PROFILES[name]["n"]

    def test_explicit_parameters(self):
        out = synthetic_text(5000, vocabulary=300, q=1.0, rng=0)
        assert out.size == 5000
        assert out.max() <= 300

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="unknown text profile"):
            synthetic_text("moby-dick")

    def test_length_requires_vocabulary(self):
        with pytest.raises(ValueError, match="vocabulary"):
            synthetic_text(100)

    def test_textlike_head_frequency(self):
        # The most common "word" should carry roughly 4-9% of tokens,
        # like "the" in English text (pure Zipf over a 22k vocabulary
        # would give ~10%).
        out = synthetic_text("wuther", rng=1)
        _, counts = np.unique(out, return_counts=True)
        top_share = counts.max() / out.size
        assert 0.03 < top_share < 0.10


class TestSpatial:
    def test_shapes(self):
        out = spatial_coordinates(n=5000, rng=0)
        assert out.size == 5000
        assert out.min() >= 0

    def test_distinct_count_scales(self):
        out = spatial_coordinates(n=142_732, rng=1)
        # ~popular + background distinct values at full length.
        assert 9_000 < distinct_values(out) < 15_000

    def test_point_set_pair(self):
        x, y = spatial_points(n=3000, rng=2)
        assert x.size == y.size == 3000
        assert not np.array_equal(x, y)

    def test_popular_mass_increases_skew(self):
        light = spatial_coordinates(n=40_000, popular_mass=0.1, rng=3)
        heavy = spatial_coordinates(n=40_000, popular_mass=0.6, rng=3)
        assert self_join_size(heavy) > self_join_size(light)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            spatial_coordinates(n=-1)
        with pytest.raises(ValueError):
            spatial_coordinates(popular_mass=1.5)
        with pytest.raises(ValueError):
            spatial_coordinates(value_range=10, popular=100, background=100)
