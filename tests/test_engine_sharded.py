"""Sharded build path: partition, build per shard, merge — exactly.

Acceptance criterion of ISSUE 1: a sharded 4-way build merges to a
bit-identical tug-of-war sketch versus the single-shot build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import FrequencyVector
from repro.core.samplecount import SampleCountSketch
from repro.core.tugofwar import TugOfWarSketch
from repro.engine import (
    MergeUnsupportedError,
    merge_sketches,
    shard_stream,
    sharded_build,
)


def _stream(n=20_000):
    rng = np.random.default_rng(21)
    return (rng.zipf(1.3, size=n) % 2_000).astype(np.int64)


class TestShardStream:
    def test_partition_preserves_order_and_content(self):
        values = _stream()
        shards = shard_stream(values, 4)
        assert len(shards) == 4
        assert np.array_equal(np.concatenate(shards), values)
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_more_shards_than_elements(self):
        shards = shard_stream(np.array([1, 2], dtype=np.int64), 5)
        assert len(shards) == 5
        assert sum(s.size for s in shards) == 2

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_stream(_stream(100), 0)


class TestShardedBuild:
    @pytest.mark.parametrize("max_workers", [None, 4])
    def test_tugofwar_bit_identical_to_single_shot(self, max_workers):
        values = _stream()
        factory = lambda: TugOfWarSketch(s1=64, s2=5, seed=17)  # noqa: E731
        single = factory()
        single.update_from_stream(values)
        sharded = sharded_build(
            factory, values, num_shards=4, max_workers=max_workers
        )
        assert np.array_equal(sharded.counters, single.counters)
        assert sharded.n == single.n
        assert sharded.estimate() == single.estimate()

    def test_frequency_vector_sharded_build_exact(self):
        values = _stream()
        sharded = sharded_build(FrequencyVector, values, num_shards=3)
        assert sharded == FrequencyVector.from_stream(values)

    def test_mismatched_seeds_refuse_to_merge(self):
        seeds = iter([1, 2, 3, 4])
        factory = lambda: TugOfWarSketch(16, 3, seed=next(seeds))  # noqa: E731
        with pytest.raises(ValueError, match="seed"):
            sharded_build(factory, _stream(1000), num_shards=4)

    def test_unmergeable_sketch_raises(self):
        factory = lambda: SampleCountSketch(16, 3, seed=1)  # noqa: E731
        with pytest.raises(MergeUnsupportedError):
            sharded_build(factory, _stream(1000), num_shards=2)

    def test_merge_sketches_requires_nonempty(self):
        with pytest.raises(ValueError):
            merge_sketches([])
