"""Sharded build path: partition, build per shard, merge — exactly.

Acceptance criterion of ISSUE 1: a sharded 4-way build merges to a
bit-identical tug-of-war sketch versus the single-shot build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import FrequencyVector
from repro.core.samplecount import SampleCountSketch
from repro.core.tugofwar import TugOfWarSketch
from repro.engine import (
    MergeUnsupportedError,
    merge_sketches,
    shard_stream,
    sharded_build,
)


def _stream(n=20_000):
    rng = np.random.default_rng(21)
    return (rng.zipf(1.3, size=n) % 2_000).astype(np.int64)


class TestShardStream:
    def test_partition_preserves_order_and_content(self):
        values = _stream()
        shards = shard_stream(values, 4)
        assert len(shards) == 4
        assert np.array_equal(np.concatenate(shards), values)
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_more_shards_than_elements(self):
        shards = shard_stream(np.array([1, 2], dtype=np.int64), 5)
        assert len(shards) == 5
        assert sum(s.size for s in shards) == 2

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_stream(_stream(100), 0)


class TestShardedBuild:
    @pytest.mark.parametrize("max_workers", [None, 4])
    def test_tugofwar_bit_identical_to_single_shot(self, max_workers):
        values = _stream()
        factory = lambda: TugOfWarSketch(s1=64, s2=5, seed=17)  # noqa: E731
        single = factory()
        single.update_from_stream(values)
        sharded = sharded_build(
            factory, values, num_shards=4, max_workers=max_workers
        )
        assert np.array_equal(sharded.counters, single.counters)
        assert sharded.n == single.n
        assert sharded.estimate() == single.estimate()

    def test_frequency_vector_sharded_build_exact(self):
        values = _stream()
        sharded = sharded_build(FrequencyVector, values, num_shards=3)
        assert sharded == FrequencyVector.from_stream(values)

    def test_mismatched_seeds_refuse_to_merge(self):
        seeds = iter([1, 2, 3, 4])
        factory = lambda: TugOfWarSketch(16, 3, seed=next(seeds))  # noqa: E731
        with pytest.raises(ValueError, match="seed"):
            sharded_build(factory, _stream(1000), num_shards=4)

    def test_unmergeable_sketch_raises(self):
        factory = lambda: SampleCountSketch(16, 3, seed=1)  # noqa: E731
        with pytest.raises(MergeUnsupportedError):
            sharded_build(factory, _stream(1000), num_shards=2)

    def test_merge_sketches_requires_nonempty(self):
        with pytest.raises(ValueError):
            merge_sketches([])

    def test_hash_partitioner_build_bit_identical(self):
        from repro.engine import HashPartitioner

        values = _stream()
        factory = lambda: TugOfWarSketch(s1=64, s2=5, seed=17)  # noqa: E731
        single = factory()
        single.update_from_stream(values)
        built = sharded_build(
            factory, values, partitioner=HashPartitioner(4, seed=2)
        )
        assert np.array_equal(built.counters, single.counters)
        assert built.n == single.n


class TestTreeMerge:
    """merge_sketches is a balanced tree; the fold result is preserved."""

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 9])
    def test_bit_identical_to_left_fold(self, count):
        from functools import reduce

        values = _stream(6_000)
        parts = []
        for i in range(count):
            sketch = TugOfWarSketch(s1=32, s2=3, seed=5)
            sketch.update_from_stream(values[i::count])
            parts.append(sketch)
        folded = reduce(lambda a, b: a.merge(b), parts)
        tree = merge_sketches(parts)
        assert np.array_equal(tree.counters, folded.counters)
        assert tree.n == folded.n
        assert tree.estimate() == folded.estimate()

    @pytest.mark.parametrize("count", [2, 5, 8])
    def test_frequency_vectors_merge_exactly(self, count):
        values = _stream(4_000)
        parts = [
            FrequencyVector.from_stream(values[i::count]) for i in range(count)
        ]
        assert merge_sketches(parts) == FrequencyVector.from_stream(values)

    def test_single_sketch_returned_as_is(self):
        sketch = TugOfWarSketch(s1=8, s2=3, seed=1)
        assert merge_sketches([sketch]) is sketch

    def test_logarithmic_merge_depth(self):
        # The satellite's point: 64 shard sketches must combine in
        # ceil(log2 64) = 6 rounds of pairwise merges, not a 63-deep
        # sequential chain.  Depth is observed through a counter.
        class Counting:
            def __init__(self, depth=0):
                self.depth = depth

            def merge(self, other):
                return Counting(max(self.depth, other.depth) + 1)

        merged = merge_sketches([Counting() for _ in range(64)])
        assert merged.depth == 6
        merged = merge_sketches([Counting() for _ in range(9)])
        assert merged.depth == 4  # ceil(log2 9), not 8
