"""Keyed fleets across spawned shard processes.

Cluster layer of ISSUE 8.  The routing invariant under test: events
route by hash of the (key, value) pair, so a keyed 2-shard cluster's
per-key answers are bit-identical to a monolithic
:class:`KeyedSketchStore` — deletions of ``(key, v)`` land on the
shard holding that pair's inserts, and one tenant's deletions never
perturb another's estimates.  Keyed/unkeyed mismatches are typed
errors at the front door, not wrong answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfigError,
    ClusterService,
    LocalCluster,
    store_config,
)
from repro.engine import dump_sketch
from repro.store import SketchSpec, WindowedSketchStore
from repro.store.keyed import KeyedSketchStore

MERGEABLE_KINDS = {
    "tugofwar": {"s1": 16, "s2": 3, "seed": 7},
    "frequency": {},
    "fk_moments": {"k": 3, "s1": 16, "s2": 3, "seed": 7},
    "f0": {"s1": 16, "s2": 3, "seed": 7},
}


def keyed_template(kind: str = "tugofwar") -> KeyedSketchStore:
    return KeyedSketchStore(
        SketchSpec(kind, MERGEABLE_KINDS[kind]), bucket_width=10
    )


def tenant_batches(seed: int, keys=("tenant-a", "tenant-b", "tenant-c")):
    """Per-key (timestamps, values) batches from one seeded stream."""
    rng = np.random.default_rng(seed)
    batches = {}
    for i, key in enumerate(keys):
        n = 300 + 50 * i
        batches[key] = (
            rng.integers(0, 120, size=n).astype(np.int64),
            (rng.zipf(1.4, size=n) % 80).astype(np.int64),
        )
    return batches


@pytest.fixture(scope="module")
def keyed_cluster():
    """One spawned 2-shard keyed fleet shared by this module's tests."""
    with LocalCluster(store_config(keyed_template()), num_shards=2) as cluster:
        yield cluster


@pytest.fixture()
def keyed_service(keyed_cluster):
    service = ClusterService(keyed_cluster.clients())
    yield service
    # Reset worker state between tests (keys linger as empty stores,
    # so tests use their own key names and scoped assertions).
    service.evict(10**12)
    service.close()


class TestKeyedBitIdentity:
    @pytest.mark.parametrize("kind", sorted(MERGEABLE_KINDS))
    def test_two_shards_equal_monolithic_fleet(self, kind):
        """Every mergeable kind: sharded keyed answers == monolithic."""
        template = keyed_template(kind)
        mono = keyed_template(kind)
        batches = tenant_batches(seed=3)
        with LocalCluster(store_config(template), num_shards=2) as cluster:
            service = ClusterService(cluster.clients())
            try:
                for key, (ts, vals) in batches.items():
                    service.ingest(ts, vals, key=key)
                    mono.ingest(key, ts, vals)
                for key in batches:
                    for t0, t1 in ((0, 120), (20, 70)):
                        got = service.query(t0, t1, key=key)
                        want = mono.query(key, t0, t1)
                        assert dump_sketch(got) == dump_sketch(want)
                        assert service.estimate(t0, t1, key=key) == mono.estimate(
                            key, t0, t1
                        )
            finally:
                service.close()

    def test_cross_key_deletion_isolation(self, keyed_service):
        """Deleting all of one tenant's events leaves the others'
        estimates bit-identical — across shard processes."""
        mono = keyed_template()
        batches = tenant_batches(seed=5, keys=("del-a", "del-b"))
        for key, (ts, vals) in batches.items():
            keyed_service.ingest(ts, vals, key=key)
            mono.ingest(key, ts, vals)
        before_b = keyed_service.query(0, 120, key="del-b")
        ts, vals = batches["del-a"]
        deletions = np.full(len(ts), -1, dtype=np.int64)
        keyed_service.ingest(ts, vals, counts=deletions, key="del-a")
        mono.ingest("del-a", ts, vals, counts=deletions)
        assert keyed_service.estimate(0, 120, key="del-a") == 0.0
        after_b = keyed_service.query(0, 120, key="del-b")
        assert dump_sketch(after_b) == dump_sketch(before_b)
        assert dump_sketch(after_b) == dump_sketch(mono.query("del-b", 0, 120))

    def test_unseen_key_answers_empty(self, keyed_service):
        keyed_service.ingest([1], [5], key="seen")
        assert keyed_service.estimate(0, 10, key="never-ingested") == 0.0


class TestKeyedObservability:
    def test_stats_per_key_and_per_shard(self, keyed_service):
        keyed_service.ingest([1, 2, 3], [5, 6, 7], key="obs-a")
        keyed_service.ingest([1], [5], key="obs-b")
        keyed_service.ingest([2], [5], key="obs-b", counts=[-1])
        stats = keyed_service.stats()
        assert stats["keyed"] is True
        assert stats["shards"] == 2
        assert stats["items_by_key"]["obs-a"] == 3
        assert stats["items_by_key"]["obs-b"] == 0
        assert stats["items"] == sum(stats["items_per_shard"])
        assert len(stats["items_per_shard"]) == 2
        only_a = keyed_service.stats(key="obs-a")
        assert only_a["items_by_key"] == {"obs-a": 3}

    def test_info_reports_keys(self, keyed_service):
        keyed_service.ingest([1], [5], key="info-a")
        info = keyed_service.info()
        assert info["keyed"] is True
        assert "info-a" in info["keys"]
        assert info["key_count"] == len(info["keys"])
        assert keyed_service.keyed is True


class TestKeyedUnkeyedMismatch:
    def test_keyed_cluster_refuses_keyless_data_ops(self, keyed_service):
        with pytest.raises(TypeError, match="keyed fleet.*key="):
            keyed_service.estimate(0, 10)
        with pytest.raises(TypeError, match="keyed fleet.*key="):
            keyed_service.ingest([1], [5])

    def test_plain_cluster_refuses_keyed_ops(self):
        plain = WindowedSketchStore(
            SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 7}),
            bucket_width=10,
        )
        with LocalCluster(store_config(plain), num_shards=1) as cluster:
            service = ClusterService(cluster.clients())
            try:
                with pytest.raises(TypeError, match="unkeyed store"):
                    service.estimate(0, 10, key="a")
                with pytest.raises(TypeError, match="unkeyed store"):
                    service.ingest([1], [5], key="a")
                with pytest.raises(TypeError, match="unkeyed store"):
                    service.stats(key="a")
            finally:
                service.close()

    def test_mixed_keyed_and_plain_workers_rejected(self, keyed_cluster):
        plain = WindowedSketchStore(
            SketchSpec("tugofwar", {"s1": 16, "s2": 3, "seed": 7}),
            bucket_width=10,
        )
        with LocalCluster(store_config(plain), num_shards=1) as other:
            with pytest.raises(ClusterConfigError, match="keyed"):
                ClusterService([keyed_cluster.clients()[0], other.clients()[0]])
