"""Tests for the fast-query sample-count variant.

The key property: with the same seed, the fast-query variant makes the
same random choices as the base tracker, so the two must produce
*identical* estimates after any operation sequence — the maintained
Ysum/Num/k state is just a different representation of the same sample.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.samplecount import SampleCountFastQuery, SampleCountSketch


def pair(s1=32, s2=3, seed=5, initial_range=1000):
    base = SampleCountSketch(s1=s1, s2=s2, seed=seed, initial_range=initial_range)
    fast = SampleCountFastQuery(s1=s1, s2=s2, seed=seed, initial_range=initial_range)
    return base, fast


class TestEquivalenceWithBase:
    def test_identical_after_inserts(self, small_stream):
        base, fast = pair(initial_range=small_stream.size)
        for v in small_stream.tolist():
            base.insert(int(v))
            fast.insert(int(v))
        assert fast.estimate() == pytest.approx(base.estimate())
        fast.check_invariants()

    def test_identical_after_mixed_workload(self, rng):
        base, fast = pair(seed=9, initial_range=200)
        live: list[int] = []
        for step in range(4000):
            if live and rng.random() < 0.2:
                idx = int(rng.integers(0, len(live)))
                v = live.pop(idx)
                base.delete(v)
                fast.delete(v)
            else:
                v = int(rng.integers(0, 25))
                live.append(v)
                base.insert(v)
                fast.insert(v)
            if step % 1000 == 0:
                assert fast.estimate() == pytest.approx(base.estimate())
                fast.check_invariants()
        assert fast.estimate() == pytest.approx(base.estimate())

    def test_identical_sample_contents(self, small_stream):
        base, fast = pair(seed=2, initial_range=small_stream.size)
        for v in small_stream.tolist():
            base.insert(int(v))
            fast.insert(int(v))
        assert sorted(base.sample_values()) == sorted(fast.sample_values())


class TestFastQueryState:
    def test_empty_estimate_zero(self):
        assert SampleCountFastQuery(s1=4, seed=0).estimate() == 0.0

    def test_estimate_before_sample_is_n(self):
        sk = SampleCountFastQuery(s1=4, s2=1, seed=0, initial_range=10_000)
        sk.insert(1)
        if sk.sample_size == 0:
            assert sk.estimate() == 1.0

    def test_all_distinct_exact(self):
        sk = SampleCountFastQuery(s1=16, s2=2, seed=1, initial_range=300)
        for v in range(300):
            sk.insert(v)
        assert sk.estimate() == pytest.approx(300.0)
        sk.check_invariants()

    def test_insert_delete_roundtrip_clears_state(self):
        sk = SampleCountFastQuery(s1=8, s2=2, seed=0, initial_range=6)
        values = [1, 2, 2, 3, 3, 3]
        for v in values:
            sk.insert(v)
        for v in reversed(values):
            sk.delete(v)
        assert sk.n == 0
        assert sk.sample_size == 0
        assert np.all(sk._ysum == 0)
        assert np.all(sk._num == 0)
        assert sk._k == {}

    def test_invariant_checker_catches_corruption(self, small_stream):
        sk = SampleCountFastQuery(s1=16, s2=2, seed=3, initial_range=small_stream.size)
        sk.update_from_stream(small_stream)
        sk._ysum[0] += 1  # corrupt
        with pytest.raises(AssertionError, match="Ysum"):
            sk.check_invariants()

    def test_long_reservoir_run_consistent(self):
        sk = SampleCountFastQuery(s1=8, s2=2, seed=4, initial_range=16)
        gen = np.random.default_rng(1)
        for v in gen.integers(0, 12, size=6000).tolist():
            sk.insert(int(v))
        sk.check_invariants()
        assert sk.sample_size == 16
