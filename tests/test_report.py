"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.experiments.report import generate_report


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(
            scale=0.03, max_log2_s=8, seed=0, datasets=["poisson", "path"]
        )

    def test_has_all_sections(self, report):
        assert "## Table 1" in report
        assert "## Figures 2–14" in report
        assert "## Figure 15" in report
        assert "## Section 4.4" in report

    def test_markdown_tables_well_formed(self, report):
        lines = [l for l in report.splitlines() if l.startswith("|")]
        # Every table line has a consistent pipe structure.
        assert lines
        for line in lines:
            assert line.count("|") >= 3

    def test_requested_datasets_present(self, report):
        assert "poisson" in report
        assert "path" in report
        assert "zipf1.0" not in report

    def test_figure_numbers_mapped(self, report):
        assert "Fig 8" in report and "Fig 14" in report

    def test_scale_recorded(self, report):
        assert "scale=0.03" in report
