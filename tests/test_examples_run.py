"""Execute the fast example scripts end to end.

Compiling (test_documentation) catches syntax errors; these run the
quick examples as subprocesses to catch API drift.  The heavier
examples (three_way_join, figure_gallery) are exercised indirectly by
the benchmarks that use the same code paths.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("name", ["quickstart.py", "skew_monitoring.py"])
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_figure_gallery_runs_small():
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "figure_gallery.py"),
            "8",
            "--scale",
            "0.02",
            "--max-log2-s",
            "6",
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "poisson" in result.stdout
