"""Edge-case tests for the sample-count tracker's internal machinery.

These exercise the corners of the Figure 1 data structures that the
mainline tests don't reach deterministically: duplicate position
selections (|P_m| > 1), warm-up boundaries, re-sampling of the same
value, eviction cascades, and the skip-law scheduling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.samplecount import SampleCountSketch, _default_initial_range


class TestInitialRange:
    def test_default_formula(self):
        # s * ceil(log2 s) with a floor of s for tiny s.
        assert _default_initial_range(1) == 1
        assert _default_initial_range(2) == 2
        assert _default_initial_range(8) == 24
        assert _default_initial_range(100) == 700

    def test_initial_range_one_samples_first_insert(self):
        # Every slot selects position 1: all enter at the first insert.
        sk = SampleCountSketch(s1=8, s2=2, seed=0, initial_range=1)
        sk.insert(42)
        assert sk.sample_size == 16
        assert set(sk.sample_values()) == {42}
        sk.check_invariants()

    def test_duplicate_positions_share_entry_snapshot(self):
        # With initial_range=1, all 16 slots enter at insert #1 and get
        # the same EntryN_v; one delete of that insert evicts them all.
        sk = SampleCountSketch(s1=8, s2=2, seed=1, initial_range=1)
        sk.insert(7)
        sk.insert(7)
        assert sk.sample_size == 16
        sk.delete(7)  # reverses insert #2 (not sampled by the initial slots)
        # Slots sampled insert #1, which is still live.
        sk.check_invariants()
        sk.delete(7)  # reverses insert #1 -> evicts every slot that sampled it
        assert sk.n == 0
        assert sk.sample_size == 0

    def test_estimate_with_single_slot(self):
        sk = SampleCountSketch(s1=1, s2=1, seed=3, initial_range=1)
        for _ in range(10):
            sk.insert(5)
        # The slot sampled *some* occurrence (possibly re-sampled by the
        # reservoir); the estimate must be n(2r-1) for an integer
        # r in 1..10.
        est = sk.estimate()
        valid = {10.0 * (2 * r - 1) for r in range(1, 11)}
        assert est in valid


class TestResampling:
    def test_resample_same_value_resets_entry(self):
        # A slot discarded and re-entered on the same value must count
        # from its new position, not its old one.
        sk = SampleCountSketch(s1=4, s2=1, seed=5, initial_range=1)
        sk.insert(9)  # all slots sample insert #1
        first_entries = sk._entry.copy()
        # Push many more 9s; reservoir replacement will re-sample some
        # slots at later positions, giving them larger entry snapshots.
        for _ in range(5000):
            sk.insert(9)
        sk.check_invariants()
        assert (sk._entry > first_entries).any()

    def test_values_zero_and_negative_domain(self):
        # Value 0 must be handled like any other (dict keys, not truthiness).
        sk = SampleCountSketch(s1=8, s2=1, seed=0, initial_range=4)
        for v in [0, 0, 0, 0]:
            sk.insert(v)
        sk.check_invariants()
        assert set(sk.sample_values()) <= {0}
        sk.delete(0)
        sk.check_invariants()

    def test_large_values(self):
        sk = SampleCountSketch(s1=4, s2=1, seed=0, initial_range=2)
        big = 2**40
        sk.insert(big)
        sk.insert(big + 1)
        sk.check_invariants()
        assert set(sk.sample_values()) <= {big, big + 1}


class TestEvictionCascade:
    def test_interleaved_same_value_deletes(self):
        # Build N_v history: slots entering at different occurrences of
        # the same value; deletes must evict in LIFO order of entry.
        sk = SampleCountSketch(s1=2, s2=1, seed=7, initial_range=6)
        # positions drawn from {1..6}; insert value 3 six times.
        for _ in range(6):
            sk.insert(3)
        entries_before = sorted(
            int(sk._entry[i]) for i in range(2) if sk._in_sample[i]
        )
        # Delete down to empty; sample must drain without underflow.
        for expected_n in range(5, -1, -1):
            sk.delete(3)
            assert sk.n == expected_n
            sk.check_invariants()
        assert sk.sample_size == 0
        assert entries_before == sorted(entries_before)

    def test_delete_nonhead_insert_keeps_sample(self):
        # Deleting reverses the most recent insert; a slot that sampled
        # an *earlier* insert must survive.  Seed 4's draw at position 1
        # schedules the replacement beyond position 2, so insert #2 is
        # not sampled.
        sk = SampleCountSketch(s1=1, s2=1, seed=4, initial_range=1)
        sk.insert(4)  # sampled (position 1)
        sk.insert(4)  # not sampled
        sk.delete(4)  # reverses insert #2
        assert sk.sample_size == 1
        assert sk.n == 1
        # r = N_v - entry = 1 - 0 = 1 -> X = n(2r-1) = 1.
        assert sk.estimate() == pytest.approx(1.0)


class TestSchedulingLaw:
    def test_pending_positions_beyond_warmup(self):
        # After a slot fires, its next position must exceed the warm-up
        # window (the paper's "considers only positions greater than
        # s log s").
        sk = SampleCountSketch(s1=4, s2=1, seed=11, initial_range=10)
        for v in range(10):
            sk.insert(v)
        # All initial positions have fired; every pending position is
        # strictly beyond the warm-up window.
        assert sk._pending
        assert all(m > 10 for m in sk._pending)

    def test_pending_gap_distribution(self):
        # The replacement gap from base m has P(next > x) = m/x; with
        # m = initial_range = 1000, the median next position is ~2000.
        nexts = []
        for seed in range(500):
            sk = SampleCountSketch(s1=1, s2=1, seed=seed, initial_range=1000)
            pos0 = next(iter(sk._pending))
            for v in range(pos0):
                sk.insert(v)
            nexts.append(next(iter(sk._pending)))
        med = np.median(nexts)
        assert 1_500 < med < 2_700  # theoretical median 2000

    def test_long_run_amortised_updates(self):
        # Smoke-check the O(1) amortised claim: 50k inserts with s=512
        # touch far fewer than one reservoir replacement per insert.
        sk = SampleCountSketch(s1=256, s2=2, seed=13, initial_range=512 * 9)
        gen = np.random.default_rng(0)
        for v in gen.integers(0, 100, size=50_000).tolist():
            sk.insert(int(v))
        sk.check_invariants()
        assert sk.sample_size == 512
