"""Empirical (eps, delta) validation of the tug-of-war guarantee.

Theorem 2.2: for *any* fixed input, the median of s2 means of s1
squared counters is within relative error ``eps = 4 / sqrt(s1)`` of
SJ(R) with probability at least ``1 - delta``, ``delta = 2^(-s2/2)``,
over the sketch's own randomness.  This harness fixes the inputs — a
Zipf stream, the paper's adversarial `path` set, and a deletion-heavy
workload — and measures the failure frequency across 200 independent
sketch seeds per input.  Everything is seeded and deterministic.

The check is one-sided on purpose: the theorem promises failures are
*rarer* than delta (in practice far rarer, since the Chebyshev +
Chernoff analysis is loose), so the empirical rate must not exceed
delta.  A companion test confirms the median stage earns its keep:
widening s2 must not hurt the failure rate on the worst input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import (
    theoretical_confidence,
    theoretical_relative_error,
)
from repro.core.frequency import self_join_size
from repro.core.tugofwar import TugOfWarSketch
from repro.data.adversarial import path_dataset
from repro.engine.ingest import ingest_operations
from repro.streams.canonical import remaining_multiset
from repro.streams.operations import mixed_workload

S1, S2 = 64, 5
EPS = theoretical_relative_error(S1)  # 4 / sqrt(64) = 0.5
DELTA = 1.0 - theoretical_confidence(S2)  # 2^(-5/2) ~ 0.177
N_SEEDS = 200


def _zipf_stream() -> np.ndarray:
    rng = np.random.default_rng(123)
    return (rng.zipf(1.3, size=6000) % 2000).astype(np.int64)


def _adversarial_stream() -> np.ndarray:
    # The paper's `path` set scaled down: worst case for sampling-based
    # estimators, and maximally skewed between singletons and one heavy
    # value — a stress input for the variance bound.
    return path_dataset(singletons=4000, heavy_count=80, rng=9)


def _failure_rate(values: np.ndarray, s1: int = S1, s2: int = S2) -> float:
    """Fraction of sketch seeds whose estimate misses the eps band."""
    truth = float(self_join_size(values))
    eps = theoretical_relative_error(s1)
    failures = 0
    for seed in range(N_SEEDS):
        sketch = TugOfWarSketch(s1=s1, s2=s2, seed=seed)
        sketch.update_from_stream(values)
        if abs(sketch.estimate() - truth) > eps * truth:
            failures += 1
    return failures / N_SEEDS


class TestTheorem22Empirically:
    def test_zipf_stream_within_eps_delta(self):
        assert _failure_rate(_zipf_stream()) <= DELTA

    def test_adversarial_stream_within_eps_delta(self):
        assert _failure_rate(_adversarial_stream()) <= DELTA

    def test_deletion_workload_within_eps_delta(self):
        """The tracking guarantee: deletions do not degrade accuracy.

        The sketch state after an insert/delete program equals the
        state over the canonical surviving multiset exactly
        (linearity), so the (eps, delta) bound applies to the
        *remaining* multiset.
        """
        base = _zipf_stream()[:4000]
        ops = list(mixed_workload(base, delete_fraction=0.2, rng=77))
        truth = float(
            sum(c * c for c in remaining_multiset(ops).values())
        )
        failures = 0
        for seed in range(N_SEEDS):
            sketch = TugOfWarSketch(s1=S1, s2=S2, seed=seed)
            ingest_operations(sketch, ops)
            if abs(sketch.estimate() - truth) > EPS * truth:
                failures += 1
        assert failures / N_SEEDS <= DELTA

    def test_more_confidence_groups_never_hurt_much(self):
        """delta shrinks with s2: at equal s1, failures with s2=5
        must not exceed failures with s2=1 beyond seed noise."""
        values = _adversarial_stream()
        wide = _failure_rate(values, s1=S1, s2=5)
        single = _failure_rate(values, s1=S1, s2=1)
        assert wide <= single + 0.05

    def test_relative_error_shrinks_with_s1(self):
        """The eps = 4/sqrt(s1) trend: quadrupling s1 should at least
        halve the median relative error on the Zipf input."""
        values = _zipf_stream()
        truth = float(self_join_size(values))

        def median_rel_error(s1: int) -> float:
            errors = []
            for seed in range(60):
                sketch = TugOfWarSketch(s1=s1, s2=S2, seed=seed)
                sketch.update_from_stream(values)
                errors.append(abs(sketch.estimate() - truth) / truth)
            return float(np.median(errors))

        assert median_rel_error(64) <= 0.75 * median_rel_error(4)

    def test_bound_constants_match_theorem(self):
        assert EPS == pytest.approx(0.5)
        assert DELTA == pytest.approx(2.0 ** -2.5)
        assert N_SEEDS >= 200


class TestFkMomentsEmpirically:
    """The same 200-seed harness for the general F_k kind at k=3.

    The roots-of-unity estimator is unbiased for F_k with the same
    median-of-means amplification as tug-of-war, so the harness holds
    the (eps, delta) band to the same one-sided budget: measured
    failures across 200 sketch seeds must not exceed delta.
    """

    K = 3

    def _f3(self, values: np.ndarray) -> float:
        return float(np.sum(np.bincount(values).astype(np.float64) ** self.K))

    def test_zipf_stream_within_eps_delta(self):
        from repro.core.fkmoments import FkMomentSketch

        values = _zipf_stream()
        truth = self._f3(values)
        failures = 0
        for seed in range(N_SEEDS):
            sketch = FkMomentSketch(k=self.K, s1=S1, s2=S2, seed=seed)
            sketch.update_from_stream(values)
            if abs(sketch.moment_estimate(self.K) - truth) > EPS * truth:
                failures += 1
        assert failures / N_SEEDS <= DELTA

    def test_deletion_workload_within_eps_delta(self):
        """Deletions are exact for the linear counter state, so the
        (eps, delta) band applies to the surviving multiset's F_3."""
        from repro.core.fkmoments import FkMomentSketch

        base = _zipf_stream()[:4000]
        ops = list(mixed_workload(base, delete_fraction=0.2, rng=77))
        truth = float(
            sum(c ** self.K for c in remaining_multiset(ops).values())
        )
        failures = 0
        for seed in range(N_SEEDS):
            sketch = FkMomentSketch(k=self.K, s1=S1, s2=S2, seed=seed)
            ingest_operations(sketch, ops)
            if abs(sketch.moment_estimate(self.K) - truth) > EPS * truth:
                failures += 1
        assert failures / N_SEEDS <= DELTA
