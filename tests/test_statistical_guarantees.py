"""Empirical (eps, delta) validation of the tug-of-war guarantee.

Theorem 2.2: for *any* fixed input, the median of s2 means of s1
squared counters is within relative error ``eps = 4 / sqrt(s1)`` of
SJ(R) with probability at least ``1 - delta``, ``delta = 2^(-s2/2)``,
over the sketch's own randomness.  This harness fixes the inputs — a
Zipf stream, the paper's adversarial `path` set, and a deletion-heavy
workload — and measures the failure frequency across 200 independent
sketch seeds per input.  Everything is seeded and deterministic.

The check is one-sided on purpose: the theorem promises failures are
*rarer* than delta (in practice far rarer, since the Chebyshev +
Chernoff analysis is loose), so the empirical rate must not exceed
delta.  A companion test confirms the median stage earns its keep:
widening s2 must not hurt the failure rate on the worst input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import (
    theoretical_confidence,
    theoretical_relative_error,
)
from repro.core.frequency import self_join_size
from repro.core.tugofwar import TugOfWarSketch
from repro.data.adversarial import path_dataset
from repro.engine.ingest import ingest_operations
from repro.streams.canonical import remaining_multiset
from repro.streams.operations import mixed_workload

S1, S2 = 64, 5
EPS = theoretical_relative_error(S1)  # 4 / sqrt(64) = 0.5
DELTA = 1.0 - theoretical_confidence(S2)  # 2^(-5/2) ~ 0.177
N_SEEDS = 200


def _zipf_stream() -> np.ndarray:
    rng = np.random.default_rng(123)
    return (rng.zipf(1.3, size=6000) % 2000).astype(np.int64)


def _adversarial_stream() -> np.ndarray:
    # The paper's `path` set scaled down: worst case for sampling-based
    # estimators, and maximally skewed between singletons and one heavy
    # value — a stress input for the variance bound.
    return path_dataset(singletons=4000, heavy_count=80, rng=9)


def _failure_rate(values: np.ndarray, s1: int = S1, s2: int = S2) -> float:
    """Fraction of sketch seeds whose estimate misses the eps band."""
    truth = float(self_join_size(values))
    eps = theoretical_relative_error(s1)
    failures = 0
    for seed in range(N_SEEDS):
        sketch = TugOfWarSketch(s1=s1, s2=s2, seed=seed)
        sketch.update_from_stream(values)
        if abs(sketch.estimate() - truth) > eps * truth:
            failures += 1
    return failures / N_SEEDS


class TestTheorem22Empirically:
    def test_zipf_stream_within_eps_delta(self):
        assert _failure_rate(_zipf_stream()) <= DELTA

    def test_adversarial_stream_within_eps_delta(self):
        assert _failure_rate(_adversarial_stream()) <= DELTA

    def test_deletion_workload_within_eps_delta(self):
        """The tracking guarantee: deletions do not degrade accuracy.

        The sketch state after an insert/delete program equals the
        state over the canonical surviving multiset exactly
        (linearity), so the (eps, delta) bound applies to the
        *remaining* multiset.
        """
        base = _zipf_stream()[:4000]
        ops = list(mixed_workload(base, delete_fraction=0.2, rng=77))
        truth = float(
            sum(c * c for c in remaining_multiset(ops).values())
        )
        failures = 0
        for seed in range(N_SEEDS):
            sketch = TugOfWarSketch(s1=S1, s2=S2, seed=seed)
            ingest_operations(sketch, ops)
            if abs(sketch.estimate() - truth) > EPS * truth:
                failures += 1
        assert failures / N_SEEDS <= DELTA

    def test_more_confidence_groups_never_hurt_much(self):
        """delta shrinks with s2: at equal s1, failures with s2=5
        must not exceed failures with s2=1 beyond seed noise."""
        values = _adversarial_stream()
        wide = _failure_rate(values, s1=S1, s2=5)
        single = _failure_rate(values, s1=S1, s2=1)
        assert wide <= single + 0.05

    def test_relative_error_shrinks_with_s1(self):
        """The eps = 4/sqrt(s1) trend: quadrupling s1 should at least
        halve the median relative error on the Zipf input."""
        values = _zipf_stream()
        truth = float(self_join_size(values))

        def median_rel_error(s1: int) -> float:
            errors = []
            for seed in range(60):
                sketch = TugOfWarSketch(s1=s1, s2=S2, seed=seed)
                sketch.update_from_stream(values)
                errors.append(abs(sketch.estimate() - truth) / truth)
            return float(np.median(errors))

        assert median_rel_error(64) <= 0.75 * median_rel_error(4)

    def test_bound_constants_match_theorem(self):
        assert EPS == pytest.approx(0.5)
        assert DELTA == pytest.approx(2.0 ** -2.5)
        assert N_SEEDS >= 200


class TestFkMomentsEmpirically:
    """The same 200-seed harness for the general F_k kind at k=3.

    The roots-of-unity estimator is unbiased for F_k with the same
    median-of-means amplification as tug-of-war, so the harness holds
    the (eps, delta) band to the same one-sided budget: measured
    failures across 200 sketch seeds must not exceed delta.
    """

    K = 3

    def _f3(self, values: np.ndarray) -> float:
        return float(np.sum(np.bincount(values).astype(np.float64) ** self.K))

    def test_zipf_stream_within_eps_delta(self):
        from repro.core.fkmoments import FkMomentSketch

        values = _zipf_stream()
        truth = self._f3(values)
        failures = 0
        for seed in range(N_SEEDS):
            sketch = FkMomentSketch(k=self.K, s1=S1, s2=S2, seed=seed)
            sketch.update_from_stream(values)
            if abs(sketch.moment_estimate(self.K) - truth) > EPS * truth:
                failures += 1
        assert failures / N_SEEDS <= DELTA

    def test_deletion_workload_within_eps_delta(self):
        """Deletions are exact for the linear counter state, so the
        (eps, delta) band applies to the surviving multiset's F_3."""
        from repro.core.fkmoments import FkMomentSketch

        base = _zipf_stream()[:4000]
        ops = list(mixed_workload(base, delete_fraction=0.2, rng=77))
        truth = float(
            sum(c ** self.K for c in remaining_multiset(ops).values())
        )
        failures = 0
        for seed in range(N_SEEDS):
            sketch = FkMomentSketch(k=self.K, s1=S1, s2=S2, seed=seed)
            ingest_operations(sketch, ops)
            if abs(sketch.moment_estimate(self.K) - truth) > EPS * truth:
                failures += 1
        assert failures / N_SEEDS <= DELTA


class TestTheorem21SampleCountEmpirically:
    """The 200-seed harness for sample-count under the counter RNG.

    Theorem 2.1: with slot positions uniform over a known length n,
    the median of s2 means of s1 per-slot estimates is within relative
    error ``eps = 4 t^{1/4} / sqrt(s1)`` of SJ(A) with probability at
    least ``1 - 2^(-s2/2)`` (t = domain size).  The Zipf input is
    folded into a small domain (t = 81) so the band is non-vacuous at
    a tractable s1, and ``initial_range=n`` reproduces the theorem's
    known-n position draw.  The sketches draw from the counter RNG
    scheme (the default), so this re-validates the (eps, delta)
    guarantee for the position-keyed draws the compiled kernels use.
    """

    SC_S1 = 144

    @staticmethod
    def _small_domain_stream() -> np.ndarray:
        rng = np.random.default_rng(123)
        return (rng.zipf(1.3, size=6000) % 81).astype(np.int64)

    def _failure_rate(self, cls, values: np.ndarray) -> float:
        from repro.core.bounds import sample_count_error_bound

        truth = float(self_join_size(values))
        t = int(np.unique(values).size)
        eps = sample_count_error_bound(self.SC_S1, t)
        failures = 0
        for seed in range(N_SEEDS):
            sketch = cls(
                s1=self.SC_S1, s2=S2, seed=seed, initial_range=values.size
            )
            assert sketch.rng_scheme == "counter"
            sketch.update_from_stream(values)
            if abs(sketch.estimate() - truth) > eps * truth:
                failures += 1
        return failures / N_SEEDS

    def test_zipf_stream_within_eps_delta(self):
        from repro.core.samplecount import SampleCountSketch

        values = self._small_domain_stream()
        assert self._failure_rate(SampleCountSketch, values) <= DELTA

    def test_fast_query_variant_within_eps_delta(self):
        """The O(s2)-query variant computes the identical estimator, so
        the Theorem 2.1 band applies unchanged."""
        from repro.core.samplecount import SampleCountFastQuery

        values = self._small_domain_stream()
        assert self._failure_rate(SampleCountFastQuery, values) <= DELTA

    def test_adversarial_stream_within_eps_delta(self):
        """The `path` set is sampling's worst case; the theorem band
        (much looser here — eps grows with t^{1/4}) must still hold."""
        from repro.core.samplecount import SampleCountSketch

        values = _adversarial_stream()
        assert self._failure_rate(SampleCountSketch, values) <= DELTA

    def test_band_is_the_paper_bound(self):
        from repro.core.bounds import sample_count_error_bound

        assert sample_count_error_bound(
            self.SC_S1, 81
        ) == pytest.approx(4.0 * 81 ** 0.25 / 12.0)


class TestNaiveSamplingEmpirically:
    """Naive sampling has no (eps, delta) theorem — Lemma 2.3 proves a
    sub-sqrt(n) sample *cannot* have one.  The harness therefore pins
    both sides of that story under the counter RNG: at equal storage
    (s = s1 * s2 words, what the AMS sketches use) the measured
    failure rate against the tug-of-war band stays inside the same
    one-sided delta budget on the benign Zipf input (an empirical
    band, not a theorem), while on the Lemma 2.3 path data a
    sqrt(n)-starved sample misses the band on essentially every seed —
    the separation the paper proves.
    """

    def _failure_rate(self, values: np.ndarray, s: int, eps: float) -> float:
        from repro.core.naivesampling import NaiveSamplingEstimator

        truth = float(self_join_size(values))
        failures = 0
        for seed in range(N_SEEDS):
            estimator = NaiveSamplingEstimator(s=s, seed=seed)
            assert estimator.rng_scheme == "counter"
            estimator.update_from_stream(values)
            if abs(estimator.estimate() - truth) > eps * truth:
                failures += 1
        return failures / N_SEEDS

    def test_zipf_stream_within_empirical_band_at_equal_storage(self):
        rate = self._failure_rate(_zipf_stream(), s=S1 * S2, eps=EPS)
        assert rate <= DELTA

    def test_lemma23_separation_on_path_data(self):
        """A sample far below sqrt(n) almost never catches a duplicate
        of the heavy value, so the estimate collapses to ~n and misses
        the band on nearly every seed (birthday bound)."""
        values = _adversarial_stream()  # n = 4080, sqrt(n) ~ 64
        rate = self._failure_rate(values, s=40, eps=EPS)
        assert rate >= 0.9
