"""Tests for the scale-out cluster layer (repro.cluster).

Three rings, from algebra to processes:

1. **Socket-free algebra** — value-hash partition → per-shard build →
   gather-merge is bit-identical to the monolithic sketch for every
   mergeable kind (hypothesis sweeps signed streams and shard counts
   1–8), and the sampler kinds raise the typed
   :class:`ShardMergeUnsupportedError`.
2. **Facade semantics** — :class:`ClusterService` routing, window
   fixpoint resolution under divergent per-shard compaction, config
   validation, and the generalized dispatch table serving a cluster.
3. **Real processes** — a :class:`LocalCluster` of spawned workers:
   over-the-wire ingest and scatter–gather estimates bit-identical to
   a monolithic :class:`WindowedSketchStore`, deletion routing, clean
   shutdown.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfigError,
    ClusterService,
    LocalCluster,
    ShardClient,
    ShardMergeUnsupportedError,
    ShardRequestError,
    ShardUnreachableError,
    build_store,
    gather_merge,
    partitioned_build,
    scatter_build,
    store_config,
)
from repro.engine import HashPartitioner, dump_sketch
from repro.service import handle_request
from repro.store import SketchSpec, WindowedSketchStore

MERGEABLE_KINDS = {
    "tugofwar": {"s1": 16, "s2": 3, "seed": 7},
    "frequency": {},
    "fk_moments": {"k": 3, "s1": 16, "s2": 3, "seed": 7},
    "f0": {"s1": 16, "s2": 3, "seed": 7},
}
SAMPLER_KINDS = {
    "samplecount": {"s1": 8, "s2": 2, "seed": 7},
    "samplecount-fast": {"s1": 8, "s2": 2, "seed": 7},
    "moments": {"s1": 8, "s2": 2, "seed": 7},
    "naivesampling": {"s": 16, "seed": 7},
}


def signed_streams():
    """(values, counts) pairs whose per-value running balance stays >= 0.

    Validity must survive any value partition: because all occurrences
    of a value stay on one shard in stream order, per-value prefix
    validity is exactly the invariant that transfers.
    """

    @st.composite
    def build(draw):
        raw = draw(
            st.lists(
                st.tuples(
                    st.booleans(),
                    st.integers(min_value=0, max_value=12),
                    st.integers(min_value=1, max_value=3),
                ),
                max_size=80,
            )
        )
        live: dict[int, int] = {}
        values, counts = [], []
        for is_delete, v, c in raw:
            if is_delete and live.get(v, 0) >= c:
                live[v] -= c
                values.append(v)
                counts.append(-c)
            else:
                live[v] = live.get(v, 0) + c
                values.append(v)
                counts.append(c)
        return values, counts

    return build()


class TestPartitionedAlgebra:
    @pytest.mark.parametrize("kind,params", sorted(MERGEABLE_KINDS.items()))
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 8])
    def test_insert_only_bit_identical(self, kind, params, num_shards, rng):
        spec = SketchSpec(kind, params)
        stream = rng.integers(0, 200, size=4000)
        mono = spec.build()
        mono.update_from_stream(stream)
        built = partitioned_build(spec, stream, num_shards, seed=5)
        assert dump_sketch(built) == dump_sketch(mono)

    @pytest.mark.parametrize("kind,params", sorted(SAMPLER_KINDS.items()))
    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_sampler_kinds_raise_typed_error(self, kind, params, num_shards):
        spec = SketchSpec(kind, params)
        with pytest.raises(ShardMergeUnsupportedError, match="scatter"):
            partitioned_build(spec, [1, 2, 3], num_shards)

    def test_typed_error_is_a_merge_unsupported_error(self):
        from repro.engine import MergeUnsupportedError

        assert issubclass(ShardMergeUnsupportedError, MergeUnsupportedError)

    def test_scatter_build_routes_deletes_with_their_inserts(self):
        spec = SketchSpec("frequency", {})
        partitioner = HashPartitioner(4, seed=1)
        values = [5, 9, 5, 9, 5]
        counts = [2, 3, -1, -3, -1]
        parts = scatter_build(spec, values, partitioner, counts=counts)
        merged = gather_merge(parts)
        assert merged.estimate() == 0.0  # everything retracted exactly

    @given(stream=signed_streams(), k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_signed_streams_bit_identical_any_shard_count(self, stream, k):
        values, counts = stream
        for kind, params in MERGEABLE_KINDS.items():
            spec = SketchSpec(kind, params)
            mono = spec.build()
            if values:
                mono.update_from_frequencies(values, counts)
            built = partitioned_build(spec, values, k, seed=3, counts=counts)
            assert dump_sketch(built) == dump_sketch(mono)

    @given(k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_sampler_kinds_typed_error_any_shard_count(self, k):
        for kind, params in SAMPLER_KINDS.items():
            with pytest.raises(ShardMergeUnsupportedError):
                partitioned_build(SketchSpec(kind, params), [1, 2], k)


def make_template(**kwargs) -> WindowedSketchStore:
    spec = SketchSpec("tugofwar", {"s1": 32, "s2": 3, "seed": 7})
    return WindowedSketchStore(spec, bucket_width=10, **kwargs)


@pytest.fixture(scope="module")
def two_shard_cluster():
    """One spawned 2-shard fleet shared by the process-level tests."""
    with LocalCluster(store_config(make_template()), num_shards=2) as cluster:
        yield cluster


@pytest.fixture()
def cluster_service(two_shard_cluster):
    service = ClusterService(two_shard_cluster.clients())
    yield service
    # Reset worker state between tests: evict everything ever stored
    # (the horizon must lie on a bucket boundary).  Closing the shared
    # clients is safe — they re-dial lazily for the next test.
    service.evict(10**12)
    service.close()


class TestClusterServiceEndToEnd:
    def test_bit_identical_to_monolithic_store(self, cluster_service, rng):
        mono = make_template()
        for _ in range(3):  # several batches, out-of-order timestamps
            ts = rng.integers(0, 200, size=1500)
            vals = rng.integers(0, 300, size=1500)
            cluster_service.ingest(ts, vals)
            mono.ingest(ts, vals)
        for window in [(0, 200), (50, 100), (0, 10), (190, 200)]:
            assert cluster_service.estimate(*window) == mono.estimate(*window)
            assert np.array_equal(
                cluster_service.query(*window).counters,
                mono.query(*window).counters,
            )

    def test_deletions_route_to_the_right_shard(self, cluster_service, rng):
        mono = make_template()
        ts = rng.integers(0, 100, size=800)
        vals = rng.integers(0, 60, size=800)
        cluster_service.ingest(ts, vals)
        mono.ingest(ts, vals)
        # Retract half the batch: same timestamps, negative counts.
        half = slice(0, 400)
        cluster_service.ingest(ts[half], vals[half], counts=-np.ones(400, np.int64))
        mono.ingest(ts[half], vals[half], counts=-np.ones(400, np.int64))
        assert cluster_service.estimate(0, 100) == mono.estimate(0, 100)

    def test_estimate_window_reports_resolved_bounds(self, cluster_service):
        cluster_service.ingest([5, 25], [1, 2])
        result = cluster_service.estimate_window(5, 25, align="outer")
        assert (result.t0, result.t1) == (0, 30)
        assert result.estimate == cluster_service.estimate(0, 30)

    def test_info_surface(self, cluster_service):
        cluster_service.ingest([1, 15], [3, 4])
        assert cluster_service.bucket_width == 10
        assert cluster_service.origin == 0
        assert cluster_service.spec.kind == "tugofwar"
        assert cluster_service.coverage == (0, 20)
        assert cluster_service.spans == [(0, 20)]
        assert cluster_service.memory_words > 0
        assert cluster_service.num_shards == 2

    def test_stats_aggregates_shards(self, cluster_service):
        cluster_service.ingest([1], [5])
        cluster_service.estimate(0, 10)
        stats = cluster_service.stats()
        assert stats["shards"] == 2
        assert stats["misses"] >= 1

    def test_alignment_errors_surface_as_value_errors(self, cluster_service):
        cluster_service.ingest([5], [1])
        with pytest.raises(ShardRequestError, match="aligned"):
            cluster_service.estimate(3, 10)

    def test_dispatch_table_serves_a_cluster(self, cluster_service, rng):
        ts = rng.integers(0, 50, size=300)
        vals = rng.integers(0, 40, size=300)
        ingest = handle_request(
            cluster_service,
            json.dumps({
                "op": "ingest",
                "timestamps": ts.tolist(),
                "values": vals.tolist(),
            }),
        )
        assert ingest["ok"] and ingest["ingested"] == 300
        mono = make_template()
        mono.ingest(ts, vals)
        estimate = handle_request(
            cluster_service, json.dumps({"op": "estimate", "from": 0, "until": 50})
        )
        assert estimate["ok"] and estimate["estimate"] == mono.estimate(0, 50)
        info = handle_request(cluster_service, json.dumps({"op": "info"}))
        assert info["ok"] and info["kind"] == "tugofwar"
        stats = handle_request(cluster_service, json.dumps({"op": "stats"}))
        assert stats["ok"] and stats["cache"]["shards"] == 2

    def test_snapshot_carries_partition_map_and_restores(self, cluster_service, rng):
        ts = rng.integers(0, 100, size=500)
        vals = rng.integers(0, 80, size=500)
        cluster_service.ingest(ts, vals)
        snapshot = cluster_service.snapshot()
        assert snapshot["kind"] == "cluster-snapshot"
        assert snapshot["partitioner"]["policy"] == "hash"
        assert snapshot["partitioner"]["num_shards"] == 2
        restored = [
            WindowedSketchStore.from_dict(payload)
            for payload in snapshot["shards"]
        ]
        merged = gather_merge([s.query(0, 100) for s in restored])
        assert merged.estimate() == cluster_service.estimate(0, 100)

    def test_compact_and_outer_fixpoint_across_divergent_shards(
        self, cluster_service
    ):
        # Find values that hash to each shard under the service's own
        # partition seed, then craft divergent compaction: shard A
        # holds buckets {0, 1} (compacts to one [0, 20) span), shard B
        # holds bucket 0 only.  An outer query of [0, 10) must converge
        # on the hull [0, 20) and stay bit-identical to a monolithic
        # store of the same events.
        partitioner = cluster_service._partitioner
        assignment = partitioner.assign(np.arange(100, dtype=np.int64))
        value_a = int(np.flatnonzero(assignment == 0)[0])
        value_b = int(np.flatnonzero(assignment == 1)[0])
        ts = np.array([5, 15, 5], dtype=np.int64)
        vals = np.array([value_a, value_a, value_b], dtype=np.int64)
        cluster_service.ingest(ts, vals)
        assert cluster_service.compact() >= 1
        mono = make_template()
        mono.ingest(ts, vals)
        result = cluster_service.estimate_window(0, 10, align="outer")
        assert (result.t0, result.t1) == (0, 20)
        assert result.estimate == mono.estimate(0, 20)


class TestClusterValidation:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ClusterConfigError, match="at least one"):
            ClusterService([])

    def test_unreachable_shard_is_typed(self):
        client = ShardClient("127.0.0.1", 1)  # nothing listens on port 1
        with pytest.raises(ShardUnreachableError, match="unreachable"):
            ClusterService([client])

    def test_mismatched_workers_rejected(self):
        template_a = make_template()
        spec_b = SketchSpec("tugofwar", {"s1": 32, "s2": 3, "seed": 8})
        template_b = WindowedSketchStore(spec_b, bucket_width=10)
        with LocalCluster(store_config(template_a), 1) as a, \
                LocalCluster(store_config(template_b), 1) as b:
            with pytest.raises(ClusterConfigError, match="disagrees on spec"):
                ClusterService([a.clients()[0], b.clients()[0]])

    def test_sampler_cluster_refused_with_typed_error(self):
        spec = SketchSpec("samplecount", {"s1": 8, "s2": 2, "seed": 1})
        store = WindowedSketchStore(
            spec, bucket_width=10, retention_policy="evict"
        )
        with LocalCluster(store_config(store), 1) as cluster:
            with pytest.raises(ShardMergeUnsupportedError, match="samplecount"):
                ClusterService(cluster.clients())

    def test_partition_seed_defaults_to_spec_seed(self, two_shard_cluster):
        service = ClusterService(two_shard_cluster.clients())
        try:
            assert service._partitioner.seed == 7  # the spec's seed
        finally:
            service.close()

    def test_worker_config_round_trip(self):
        template = make_template(retention_buckets=5, retention_policy="evict")
        rebuilt = build_store(store_config(template))
        assert rebuilt.spec == template.spec
        assert rebuilt.bucket_width == template.bucket_width
        assert rebuilt.retention_buckets == 5
        assert rebuilt.retention_policy == "evict"

    def test_corrupt_worker_config_rejected(self):
        with pytest.raises(ClusterConfigError, match="spec"):
            build_store({"bucket_width": 10})
        with pytest.raises(ClusterConfigError, match="invalid worker config"):
            build_store({"spec": {"kind": "tugofwar"}, "bucket_width": 0})


class TestLocalClusterLifecycle:
    def test_spawn_failure_reports_worker_stderr(self):
        with pytest.raises(ShardUnreachableError, match="stderr"):
            LocalCluster({"spec": {"kind": "no-such-kind"}}, 1, spawn_timeout=30)

    def test_shutdown_is_idempotent_and_kills_workers(self):
        cluster = LocalCluster(store_config(make_template()), 1)
        process = cluster.workers[0].process
        cluster.shutdown()
        assert process.poll() == 0  # clean exit via the wire shutdown op
        cluster.shutdown()  # second call is a no-op
        assert cluster.num_shards == 0
