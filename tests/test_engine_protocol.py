"""The Sketch protocol: conformance of every tracker, default methods.

The tentpole contract of ISSUE 1: one ABC captures the shared surface
(insert / delete / update / update_from_frequencies / estimate / merge
/ memory_words / to_dict / from_dict) and every tracker implements it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distinct import DistinctCountSketch
from repro.core.fkmoments import FkMomentSketch
from repro.core.frequency import FrequencyVector
from repro.core.moments import FrequencyMomentTracker
from repro.core.naivesampling import NaiveSamplingEstimator
from repro.core.samplecount import SampleCountFastQuery, SampleCountSketch
from repro.core.tugofwar import TugOfWarSketch
from repro.engine import (
    MergeUnsupportedError,
    Sketch,
    dump_sketch,
    load_sketch,
    sketch_kinds,
)

ALL_SKETCHES = [
    TugOfWarSketch(16, 3, seed=1),
    SampleCountSketch(16, 3, seed=1),
    SampleCountFastQuery(16, 3, seed=1),
    FrequencyMomentTracker(16, 3, seed=1),
    NaiveSamplingEstimator(s=48, seed=1),
    FrequencyVector(),
    FkMomentSketch(k=3, s1=16, s2=3, seed=1),
    DistinctCountSketch(16, 3, seed=1),
]

#: One fresh-sketch factory per registered kind; the round-trip tests
#: parametrize over `sketch_kinds()` so a newly registered kind that
#: is missing here fails loudly instead of silently escaping coverage.
KIND_FACTORIES = {
    "tugofwar": lambda: TugOfWarSketch(16, 3, seed=11),
    "samplecount": lambda: SampleCountSketch(8, 3, seed=11, initial_range=64),
    "samplecount-fast": lambda: SampleCountFastQuery(
        8, 3, seed=11, initial_range=64
    ),
    "moments": lambda: FrequencyMomentTracker(8, 3, seed=11, initial_range=64),
    "naivesampling": lambda: NaiveSamplingEstimator(s=24, seed=11),
    "frequency": FrequencyVector,
    "fk_moments": lambda: FkMomentSketch(k=3, s1=16, s2=3, seed=11),
    "f0": lambda: DistinctCountSketch(16, 3, seed=11),
}


@pytest.mark.parametrize("sketch", ALL_SKETCHES, ids=lambda s: type(s).__name__)
class TestConformance:
    def test_is_a_sketch(self, sketch):
        assert isinstance(sketch, Sketch)
        assert isinstance(sketch.kind, str) and sketch.kind

    def test_full_surface_present(self, sketch):
        for name in (
            "insert",
            "delete",
            "update",
            "update_from_frequencies",
            "update_from_stream",
            "estimate",
            "merge",
            "to_dict",
            "from_dict",
        ):
            assert callable(getattr(sketch, name)), name
        assert isinstance(sketch.memory_words, int)

    def test_insert_estimate_cycle(self, sketch):
        sketch = type(sketch).from_dict(sketch.to_dict())  # work on a copy
        for v in (1, 2, 2):
            sketch.insert(v)
        assert isinstance(sketch.estimate(), float)


class TestDefaults:
    def test_update_default_loops_inserts_and_deletes(self):
        sketch = FrequencyVector()
        # exercise the ABC defaults through a minimal concrete subclass
        Sketch.update(sketch, 9, 3)
        assert sketch.frequency(9) == 3
        Sketch.update(sketch, 9, -2)
        assert sketch.frequency(9) == 1

    def test_update_from_frequencies_default_is_pairwise(self):
        sketch = FrequencyVector()
        Sketch.update_from_frequencies(
            sketch, np.array([1, 2], dtype=np.int64), np.array([2, 5], dtype=np.int64)
        )
        assert sketch.frequency(1) == 2 and sketch.frequency(2) == 5

    def test_update_from_frequencies_shape_mismatch(self):
        with pytest.raises(ValueError):
            FrequencyVector().update_from_frequencies([1, 2], [1])

    def test_merge_default_raises_with_clear_message(self):
        tracker = SampleCountSketch(8, 2, seed=0)
        with pytest.raises(MergeUnsupportedError, match="SampleCountSketch"):
            tracker.merge(SampleCountSketch(8, 2, seed=0))

    def test_naivesampling_merge_unsupported(self):
        estimator = NaiveSamplingEstimator(s=8, seed=0)
        with pytest.raises(MergeUnsupportedError):
            estimator.merge(NaiveSamplingEstimator(s=8, seed=0))

    def test_linearity_flags(self):
        assert TugOfWarSketch.is_linear and FrequencyVector.is_linear
        assert not SampleCountSketch.is_linear
        assert not NaiveSamplingEstimator.is_linear

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Sketch()


@pytest.mark.parametrize("kind", sketch_kinds())
class TestRoundTripContinuedIngestion:
    """ISSUE 2 satellite: serialising must never fork a sketch's future.

    For every registered kind, `load_sketch(dump_sketch(s))` followed
    by more ingestion must be bit-identical — full state, RNG state
    included — to the sketch that was never serialised.
    """

    def _streams(self):
        rng = np.random.default_rng(42)
        return (
            rng.integers(0, 60, size=500).astype(np.int64),
            rng.integers(0, 60, size=300).astype(np.int64),
        )

    def test_registered_kind_has_factory(self, kind):
        assert kind in KIND_FACTORIES, (
            f"kind {kind!r} registered but not covered by the round-trip "
            "tests; add a factory to KIND_FACTORIES"
        )

    def test_round_trip_then_ingest_bit_identical(self, kind):
        prefix, suffix = self._streams()
        original = KIND_FACTORIES[kind]()
        original.update_from_stream(prefix)
        restored = load_sketch(dump_sketch(original))
        assert type(restored) is type(original)
        assert dump_sketch(restored) == dump_sketch(original)
        original.update_from_stream(suffix)
        restored.update_from_stream(suffix)
        assert dump_sketch(restored) == dump_sketch(original)
        assert restored.estimate() == original.estimate()

    def test_round_trip_through_json_text(self, kind):
        from repro.engine import dumps_sketch, loads_sketch

        prefix, suffix = self._streams()
        original = KIND_FACTORIES[kind]()
        original.update_from_stream(prefix)
        restored = loads_sketch(dumps_sketch(original))
        original.update_from_stream(suffix)
        restored.update_from_stream(suffix)
        assert dump_sketch(restored) == dump_sketch(original)

    def test_double_round_trip_is_stable(self, kind):
        prefix, _ = self._streams()
        sketch = KIND_FACTORIES[kind]()
        sketch.update_from_stream(prefix)
        once = dump_sketch(load_sketch(dump_sketch(sketch)))
        twice = dump_sketch(load_sketch(once))
        assert once == twice


class TestRelationalBulkPaths:
    def test_relation_insert_many_equals_per_tuple(self):
        from repro.relational.relation import Relation

        values = np.array([3, 1, 3, 7, 3], dtype=np.int64)
        bulk = Relation("r")
        bulk.insert_many(values)
        loop = Relation("r")
        for v in values.tolist():
            loop.insert(v)
        assert bulk.self_join_size() == loop.self_join_size()
        assert bulk.size == loop.size and bulk.distinct == loop.distinct

    def test_relation_update_from_frequencies(self):
        from repro.relational.relation import Relation

        relation = Relation("r")
        relation.update_from_frequencies([1, 2], [4, 2])
        relation.update_from_frequencies([1], [-3])
        assert relation.size == 3
        assert relation.self_join_size() == 1 + 4

    def test_signature_catalog_bulk_load_matches_per_tuple(self):
        from repro.relational.catalog import SignatureCatalog

        values = (np.random.default_rng(0).integers(0, 50, size=400)).astype(np.int64)
        bulk = SignatureCatalog(k=64, seed=5)
        bulk.register("r")
        bulk.insert_many("r", values)
        loop = SignatureCatalog(k=64, seed=5)
        loop.register("r")
        for v in values.tolist():
            loop.insert("r", v)
        assert bulk.self_join_estimate("r") == loop.self_join_estimate("r")

    def test_signature_catalog_signed_histogram(self):
        from repro.relational.catalog import SignatureCatalog

        catalog = SignatureCatalog(k=32, seed=5)
        catalog.register("r", values=np.array([1, 1, 2], dtype=np.int64))
        catalog.update_from_frequencies("r", [1], [-1])
        reference = SignatureCatalog(k=32, seed=5)
        reference.register("r", values=np.array([1, 2], dtype=np.int64))
        assert catalog.self_join_estimate("r") == reference.self_join_estimate("r")

    def test_sample_catalog_insert_many(self):
        from repro.relational.catalog import SampleCatalog

        catalog = SampleCatalog(p=0.5, seed=5)
        catalog.register("r")
        catalog.insert_many("r", np.arange(100, dtype=np.int64))
        assert catalog.memory_words > 0
